//! The reactor runtime: a single-threaded event loop driving every
//! site of a cluster over the same sans-IO engines as the threaded
//! actors.
//!
//! The threaded backend ([`crate::cluster::Cluster`]) spends one OS
//! thread per site and one mailbox hop per message; fine for a handful
//! of concurrent transactions, but thousands of in-flight commits turn
//! into context-switch churn and per-turn fsyncs. The reactor instead
//! owns *all* sites on one thread and runs a readiness loop:
//!
//! 1. advance a hashed [`TimerWheel`] and fire due engine timers,
//! 2. drain the injector (client envelopes) and the local ready queue
//!    (site-to-site messages — same-process, so a "send" is a
//!    `VecDeque::push_back`),
//! 3. per dirty site, force the open group-commit batch — **one fsync
//!    per site per tick** no matter how many transactions progressed —
//!    emit its trace event, then externalize the withheld sends,
//! 4. deliver decisions to waiting clients and snapshot live metrics.
//!
//! Everything protocol-visible is shared with the threaded backend:
//! the engines, the [`NetDelays`] backoff schedule, and the
//! observability emission points in [`crate::actor`], so a trace line
//! is formatted identically whichever backend produced it.
//!
//! Because the engines cannot see which host drives them, the engine
//! state spaces — and with them the model checker's fingerprints and
//! the committed golden traces — are untouched. The reactor is the only
//! host that switches the engines' opt-in timer-cancellation tracking
//! on, draining retired tokens into wheel cancels instead of letting
//! dead timers fire.

use crate::actor::{
    apply_enforcements, decide_vote, deliver_decisions, observe_acta, observe_crash, observe_gc,
    observe_recover, observe_recv, observe_retry, observe_send, protocol_outcomes, NetDelays,
    NetLog, NetObs, SharedHistory,
};
use crate::admission::{AdmissionConfig, AdmissionController};
use crate::cluster::{ClusterConfig, ClusterReport, SiteSummary};
use crate::envelope::Envelope;
use crate::timer::{TimerId, TimerWheel};
use acp_acta::{ActaEvent, History};
use acp_core::{Action, Coordinator, GatewayParticipant, LegacyStore, Participant, TimerPurpose};
use acp_engine::SiteEngine;
use acp_obs::{
    HistogramSnapshot, LatencyHistogram, MetricsRegistry, MetricsTimeline, ProtoLabel,
    ProtocolEvent, TraceSink,
};
use acp_types::{Message, Outcome, Payload, SiteId, TxnId, Vote};
use acp_wal::tempdir::TempDir;
use acp_wal::{DomainStats, FileLog, FsyncDomain, GroupCommitLog, GroupCommitStats};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reactor parameters: the shared cluster shape plus the knobs that
/// only make sense for a tick loop.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Cluster shape (coordinator kind, participant protocols,
    /// gateways, delays, group commit) — identical meaning to the
    /// threaded backend.
    pub cluster: ClusterConfig,
    /// How long a group-commit batch may stay open across ticks waiting
    /// for more records (`ZERO` = force at the end of every tick).
    /// Only meaningful with `cluster.group_commit` on.
    pub commit_window: Duration,
    /// Adaptive window: a batch holding a *single* forced record with
    /// no other work pending forces immediately instead of waiting out
    /// `commit_window` — single-transaction latency stays flat and the
    /// trace stays byte-identical to the unwindowed run.
    pub adaptive_window: bool,
    /// Snapshot the metrics registry into the timeline every this many
    /// working ticks (0 = off). Needs [`ReactorCluster::spawn_observed`].
    pub snapshot_every_ticks: u64,
    /// Also snapshot after this many delivered decisions (0 = off).
    pub snapshot_every_commits: u64,
    /// Admission bounds (`None` = admit everything, the historical
    /// behavior). A refused commit is a counted, observable shed — see
    /// [`crate::admission`]. Clean single-transaction runs are
    /// admission-invariant: an idle cluster admits under any bound, so
    /// enabling this does not perturb committed traces.
    pub admission: Option<AdmissionConfig>,
}

impl ReactorConfig {
    /// Defaults mirroring [`ClusterConfig::new`]: no batching window,
    /// adaptive on, snapshots off.
    #[must_use]
    pub fn new(
        kind: acp_types::CoordinatorKind,
        participant_protocols: &[acp_types::ProtocolKind],
    ) -> Self {
        ReactorConfig {
            cluster: ClusterConfig::new(kind, participant_protocols),
            commit_window: Duration::ZERO,
            adaptive_window: true,
            snapshot_every_ticks: 0,
            snapshot_every_commits: 0,
            admission: None,
        }
    }
}

/// Counters the reactor keeps about its own loop (not protocol costs —
/// those flow through the shared metrics registry).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReactorStats {
    /// Loop iterations that did any work.
    pub ticks: u64,
    /// Envelopes dispatched (client + site-to-site).
    pub envelopes: u64,
    /// Wheel timers fired into engines.
    pub timers_fired: u64,
    /// Wheel timers cancelled before firing (engine retirements plus
    /// crash sweeps).
    pub timers_cancelled: u64,
    /// Batches forced by the adaptive single-record fast path.
    pub adaptive_forces: u64,
    /// Batches forced because their window expired or the tick ended.
    pub window_forces: u64,
    /// Most client commits simultaneously awaiting a decision *on this
    /// reactor*. The aggregate across a multi-reactor cluster is the
    /// shared [`InflightGauge`]'s peak, not the sum of these (shard
    /// peaks need not coincide in time).
    pub max_inflight: usize,
    /// Decisions delivered to waiting clients.
    pub decisions_delivered: u64,
    /// Envelopes handed to another reactor's mailbox (cross-shard
    /// routing; always 0 on a single-reactor cluster).
    pub mailbox_sends: u64,
    /// Client commits refused at the door by the admission controller
    /// (always 0 with `admission: None`).
    pub admission_sheds: u64,
}

impl ReactorStats {
    /// Fold another reactor's loop counters into this aggregate: sums
    /// everywhere except `max_inflight`, which is a per-shard peak and
    /// maxes (see the field docs for the true cluster-wide aggregate).
    pub fn merge(&mut self, other: &ReactorStats) {
        self.ticks += other.ticks;
        self.envelopes += other.envelopes;
        self.timers_fired += other.timers_fired;
        self.timers_cancelled += other.timers_cancelled;
        self.adaptive_forces += other.adaptive_forces;
        self.window_forces += other.window_forces;
        self.max_inflight = self.max_inflight.max(other.max_inflight);
        self.decisions_delivered += other.decisions_delivered;
        self.mailbox_sends += other.mailbox_sends;
        self.admission_sheds += other.admission_sheds;
    }
}

/// Deterministic composition of the two snapshot triggers.
///
/// The reactor can snapshot its metrics registry every
/// `snapshot_every_ticks` working ticks, every
/// `snapshot_every_commits` delivered decisions, or both. The two
/// triggers compose with a pinned tie-break so merged multi-reactor
/// timelines have a stable per-reactor snapshot sequence:
///
/// 1. Both triggers are evaluated once per working tick, tick trigger
///    first (the tick count is the loop's own clock; commits are
///    events within it).
/// 2. When both fire on the same tick, exactly **one** snapshot is
///    taken — the triggers coalesce, they never double-snapshot.
/// 3. The pending-commit counter resets **only when the commit trigger
///    itself fired**. A tick-triggered snapshot does not absorb
///    pending commits, so the commit cadence is independent of the
///    tick cadence: M delivered commits always produce
///    `⌊M / snapshot_every_commits⌋` commit-trigger firings no matter
///    how the tick trigger interleaves.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotCadence {
    every_ticks: u64,
    every_commits: u64,
    commits_pending: u64,
}

impl SnapshotCadence {
    /// A cadence from the two trigger periods (0 disables a trigger).
    #[must_use]
    pub fn new(every_ticks: u64, every_commits: u64) -> Self {
        SnapshotCadence {
            every_ticks,
            every_commits,
            commits_pending: 0,
        }
    }

    /// Record `n` delivered decisions toward the commit trigger.
    pub fn on_commits(&mut self, n: u64) {
        self.commits_pending += n;
    }

    /// Evaluate both triggers at the end of working tick number
    /// `ticks`. Returns whether to take (one) snapshot now.
    pub fn on_tick(&mut self, ticks: u64) -> bool {
        let by_ticks = self.every_ticks > 0 && ticks % self.every_ticks == 0;
        let by_commits = self.every_commits > 0 && self.commits_pending >= self.every_commits;
        if by_commits {
            self.commits_pending = 0;
        }
        by_ticks || by_commits
    }
}

/// Client commits currently awaiting a decision, shared by every
/// reactor of a cluster: the `in_flight` aggregate the multi-reactor
/// report exposes. Lock-free — one relaxed `fetch_add`/`fetch_sub` per
/// commit plus a `fetch_max` to keep the high-water mark.
#[derive(Debug, Default)]
pub struct InflightGauge {
    cur: AtomicU64,
    peak: AtomicU64,
}

impl InflightGauge {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// One more commit in flight.
    pub fn inc(&self) {
        let now = self.cur.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// `n` decisions delivered.
    pub fn dec_by(&self, n: u64) {
        self.cur.fetch_sub(n, Ordering::Relaxed);
    }

    /// Commits in flight right now.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.cur.load(Ordering::Relaxed)
    }

    /// Most commits ever simultaneously in flight across the whole
    /// cluster.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// What [`ReactorCluster::shutdown`] hands back: the same report shape
/// as the threaded backend plus the reactor's own loop counters.
pub struct ReactorReport {
    /// The backend-independent cluster report.
    pub cluster: ClusterReport,
    /// Reactor loop counters.
    pub stats: ReactorStats,
    /// This reactor's fsync-domain coalescing counters (all zero when
    /// group commit is off — passthrough logs never stage a batch).
    pub fsync: DomainStats,
    /// Commit latency of every decision this reactor delivered,
    /// admission-to-delivery in microseconds. Merge per-shard
    /// snapshots bucket-wise for the cluster-wide tail.
    pub latency: HistogramSnapshot,
}

// ---------------------------------------------------------------------------
// Site state

/// Per-site engine(s); mirrors the three thread bodies in `actor.rs`.
enum SiteTask {
    Coord {
        engine: Coordinator<NetLog>,
    },
    Part {
        engine: Participant<NetLog>,
        storage: SiteEngine<FileLog>,
        forced_intents: BTreeMap<TxnId, Vote>,
        poisoned: BTreeMap<TxnId, bool>,
    },
    Gateway {
        engine: GatewayParticipant<FileLog>,
    },
}

/// Host-side per-site bookkeeping (everything that is not the engine).
struct SiteHost {
    site: SiteId,
    obs: Option<NetObs>,
    down_until: Option<Instant>,
    last_decision_us: Option<u64>,
    /// Withhold sends until the batch forces (group commit on).
    defer_sends: bool,
    deferred_sends: Vec<Message>,
    /// Engine timer token → wheel entry, for cancellation.
    timer_ids: BTreeMap<u64, TimerId>,
    /// When the currently-open batch was first observed non-empty.
    batch_opened: Option<Instant>,
    /// Suppress crash/recover *observability* (ACTA events + trace
    /// lines) for this engine. Set on every coordinator slice except
    /// shard 0's: the N slices are one logical site 0, and a broadcast
    /// crash must read as ONE site crash in the history, not N. The
    /// engines themselves still crash and recover normally.
    quiet: bool,
}

impl SiteHost {
    fn is_down(&self, now: Instant) -> bool {
        self.down_until.is_some_and(|t| now < t)
    }
}

struct SiteState {
    host: SiteHost,
    task: SiteTask,
}

/// Loop-wide mutable context threaded through dispatch.
struct Ctx {
    wheel: TimerWheel<(SiteId, u64, TimerPurpose)>,
    /// Site-to-site messages ready for delivery this tick (owned by
    /// this shard).
    local: VecDeque<(SiteId, Envelope)>,
    history: SharedHistory,
    delays: NetDelays,
    replies: BTreeMap<TxnId, Sender<Outcome>>,
    stats: ReactorStats,
    now: Instant,
    /// This reactor's shard index in an `n_shards`-way partition.
    shard: usize,
    n_shards: usize,
    /// Every reactor's injector (index = shard). `peers[shard]` is this
    /// reactor's own injector and is never used — self-sends go through
    /// `local`, which is what keeps the single-reactor hot path free of
    /// channel traffic.
    peers: Vec<Sender<(SiteId, Envelope)>>,
    /// Per-shard fsync domain: one coalesced force round per turn.
    domain: FsyncDomain,
    /// Cluster-wide in-flight commit gauge (shared across shards).
    inflight: Arc<InflightGauge>,
    /// When each in-flight commit was admitted, for the latency
    /// histogram (keys mirror `replies`).
    admitted_at: BTreeMap<TxnId, Instant>,
    /// Admission-to-delivery latency of this shard's commits.
    latency: LatencyHistogram,
}

impl Ctx {
    /// Hand an envelope to whichever reactor owns it: our own ready
    /// queue, or a peer's lock-free mailbox.
    fn route(&mut self, to: SiteId, envelope: Envelope) {
        let owner = envelope.owner_shard(to, self.n_shards).unwrap_or(self.shard);
        if owner == self.shard {
            self.local.push_back((to, envelope));
        } else {
            self.stats.mailbox_sends += 1;
            let _ = self.peers[owner].send((to, envelope));
        }
    }
}

/// Execute engine actions for one site; returns storage enforcements.
fn run_site_actions(host: &mut SiteHost, ctx: &mut Ctx, actions: Vec<Action>) -> Vec<(TxnId, Outcome)> {
    let mut enforcements = Vec::new();
    for a in actions {
        match a {
            Action::Send { to, payload } => {
                let msg = Message::new(host.site, to, payload);
                if host.defer_sends {
                    host.deferred_sends.push(msg);
                } else {
                    if let Some(obs) = &host.obs {
                        observe_send(obs, host.site, &msg);
                    }
                    ctx.route(to, Envelope::Protocol(msg));
                }
            }
            Action::SetTimer {
                token,
                purpose,
                attempt,
            } => {
                if let Some(obs) = &host.obs {
                    observe_retry(obs, host.site, purpose, attempt);
                }
                let fire_at = ctx.now + ctx.delays.delay(purpose, attempt);
                let id = ctx.wheel.arm(fire_at, (host.site, token, purpose));
                host.timer_ids.insert(token, id);
            }
            Action::Acta(e) => {
                if let Some(obs) = &host.obs {
                    observe_acta(obs, host.site, &e, &mut host.last_decision_us);
                }
                ctx.history.lock().push(e);
            }
            Action::Enforce { txn, outcome } => enforcements.push((txn, outcome)),
            Action::Gc {
                released_up_to,
                records_released,
            } => {
                if let Some(obs) = &host.obs {
                    observe_gc(
                        obs,
                        host.site,
                        released_up_to,
                        records_released,
                        host.last_decision_us,
                    );
                }
            }
        }
    }
    enforcements
}

/// Cancel wheel entries for engine timers retired since the last call.
fn drain_cancellations(host: &mut SiteHost, ctx: &mut Ctx, retired: Vec<u64>) {
    for token in retired {
        if let Some(id) = host.timer_ids.remove(&token) {
            if ctx.wheel.cancel(id) {
                ctx.stats.timers_cancelled += 1;
            }
        }
    }
}

/// Externalize a site's withheld sends (after its batch forced): emit
/// their events, coalescing same-destination messages into one
/// [`Envelope::ProtocolBatch`] exactly like the threaded backend.
///
/// Batches are keyed by *(owner shard, destination)*, not destination
/// alone: messages to the coordinator route by transaction id, so two
/// acks to site 0 may belong to different reactor slices and must not
/// share an envelope. With one shard the key degenerates to the
/// destination and the grouping (and therefore the trace) is identical
/// to the single-reactor behavior.
fn flush_sends(host: &mut SiteHost, ctx: &mut Ctx) {
    if host.deferred_sends.is_empty() {
        return;
    }
    let msgs = std::mem::take(&mut host.deferred_sends);
    let mut by_dest: BTreeMap<(usize, SiteId), Vec<Message>> = BTreeMap::new();
    for msg in msgs {
        if let Some(obs) = &host.obs {
            observe_send(obs, host.site, &msg);
        }
        let owner = if ctx.n_shards <= 1 {
            0
        } else if msg.to.raw() == 0 {
            acp_core::shard_of(msg.payload.txn(), ctx.n_shards)
        } else {
            (msg.to.raw() as usize - 1) % ctx.n_shards
        };
        by_dest.entry((owner, msg.to)).or_default().push(msg);
    }
    for ((_, to), mut msgs) in by_dest {
        let envelope = if msgs.len() == 1 {
            Envelope::Protocol(msgs.pop().expect("one message"))
        } else {
            Envelope::ProtocolBatch(msgs)
        };
        ctx.route(to, envelope);
    }
}

/// Force a site's open batch — as a member of the shard's fsync
/// domain, so the turn's forces across all member sites count as one
/// coalesced force round — and externalize its sends. `adaptive` marks
/// the fast path for the stats split.
fn force_site_batch(host: &mut SiteHost, log: &mut NetLog, ctx: &mut Ctx, adaptive: bool) {
    match ctx.domain.force_member(log) {
        Ok(_) => {
            for b in log.take_closed() {
                if b.occupancy >= 2 {
                    if let Some(obs) = &host.obs {
                        obs.sink.record(&ProtocolEvent::BatchCommit {
                            at_us: obs.now_us(),
                            site: host.site.raw(),
                            proto: obs.proto,
                            occupancy: b.occupancy,
                        });
                    }
                }
            }
            host.batch_opened = None;
            if adaptive {
                ctx.stats.adaptive_forces += 1;
            } else {
                ctx.stats.window_forces += 1;
            }
            flush_sends(host, ctx);
        }
        // Force failed: the sends' records never became durable, so
        // externalizing them would be unsound. Omission failure.
        Err(_) => host.deferred_sends.clear(),
    }
}

fn crash_volatile(host: &mut SiteHost, ctx: &mut Ctx) {
    ctx.stats.timers_cancelled += ctx.wheel.cancel_where(|(s, _, _)| *s == host.site) as u64;
    host.timer_ids.clear();
    host.deferred_sends.clear();
    host.batch_opened = None;
}

// ---------------------------------------------------------------------------
// The reactor loop

struct Reactor {
    /// Sites owned by this shard. Index 0 is always this shard's
    /// coordinator slice.
    sites: Vec<SiteState>,
    /// Site id → index into `sites` (identity on a single reactor,
    /// sparse on a shard that owns a subset).
    owned: BTreeMap<SiteId, usize>,
    ctx: Ctx,
    config: ReactorConfig,
    admission: Option<AdmissionController>,
    rx: Receiver<(SiteId, Envelope)>,
    t0: Instant,
    registry: Option<Arc<MetricsRegistry>>,
    timeline: Option<Arc<MetricsTimeline>>,
    cadence: SnapshotCadence,
    running: bool,
}

impl Reactor {
    fn site_index(&self, site: SiteId) -> Option<usize> {
        self.owned.get(&site).copied()
    }

    fn run(mut self) -> ReactorReport {
        while self.running {
            self.ctx.now = Instant::now();
            let mut worked = false;
            worked |= self.process_recoveries();
            worked |= self.fire_timers();
            worked |= self.drain_envelopes();
            self.finish_turns();
            self.gc_turns();
            self.deliver();
            if worked {
                self.ctx.stats.ticks += 1;
                self.maybe_snapshot();
            }
            if !self.ctx.local.is_empty() {
                continue; // flushed sends are ready: next tick immediately
            }
            match self.rx.recv_timeout(self.next_timeout()) {
                Ok((site, env)) => self.ctx.local.push_back((site, env)),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.finish_turns();
        self.gc_turns();
        self.deliver();
        self.report()
    }

    /// Sites whose outage ended come back up and run recovery.
    fn process_recoveries(&mut self) -> bool {
        let now = self.ctx.now;
        let mut worked = false;
        for st in &mut self.sites {
            let SiteState { host, task } = st;
            let Some(t) = host.down_until else { continue };
            if now < t {
                continue;
            }
            host.down_until = None;
            worked = true;
            if !host.quiet {
                self.ctx.history.lock().push(ActaEvent::Recover { site: host.site });
                if let Some(obs) = &host.obs {
                    observe_recover(obs, host.site);
                }
            }
            match task {
                SiteTask::Coord { engine } => {
                    let actions = engine.recover();
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                SiteTask::Part {
                    engine, storage, ..
                } => {
                    let actions = engine.recover();
                    let outcomes = protocol_outcomes(engine);
                    storage.recover(&outcomes).expect("storage recovery");
                    let enf = run_site_actions(host, &mut self.ctx, actions);
                    apply_enforcements(storage, enf);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                SiteTask::Gateway { engine } => {
                    let actions = engine.recover();
                    run_site_actions(host, &mut self.ctx, actions);
                }
            }
        }
        worked
    }

    /// Advance the wheel; feed due tokens to their engines.
    fn fire_timers(&mut self) -> bool {
        let due = self.ctx.wheel.advance(self.ctx.now);
        if due.is_empty() {
            return false;
        }
        for (id, (site, token, _purpose)) in due {
            let Some(i) = self.site_index(site) else { continue };
            let SiteState { host, task } = &mut self.sites[i];
            host.timer_ids.retain(|_, v| *v != id);
            if host.is_down(self.ctx.now) {
                continue; // crash swept its timers; belt and braces
            }
            self.ctx.stats.timers_fired += 1;
            match task {
                SiteTask::Coord { engine } => {
                    let actions = engine.on_timer(token);
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                SiteTask::Part {
                    engine, storage, ..
                } => {
                    let actions = engine.on_timer(token);
                    let enf = run_site_actions(host, &mut self.ctx, actions);
                    apply_enforcements(storage, enf);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                SiteTask::Gateway { engine } => {
                    let actions = engine.on_timer(token);
                    run_site_actions(host, &mut self.ctx, actions);
                }
            }
        }
        true
    }

    /// Drain the local ready queue and the client injector until both
    /// are (momentarily) empty.
    fn drain_envelopes(&mut self) -> bool {
        let mut worked = false;
        loop {
            let next = match self.ctx.local.pop_front() {
                Some(x) => Some(x),
                None => self.rx.try_recv().ok(),
            };
            let Some((site, env)) = next else { break };
            worked = true;
            self.dispatch(site, env);
            if !self.running {
                break;
            }
        }
        worked
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self, site: SiteId, envelope: Envelope) {
        let now = self.ctx.now;
        self.ctx.stats.envelopes += 1;
        let Some(i) = self.site_index(site) else { return };
        let SiteState { host, task } = &mut self.sites[i];
        match envelope {
            Envelope::Shutdown => self.running = false,
            Envelope::Crash { down_for } => {
                if host.down_until.is_none() {
                    if !host.quiet {
                        self.ctx.history.lock().push(ActaEvent::Crash { site });
                        if let Some(obs) = &host.obs {
                            observe_crash(obs, host.site);
                        }
                    }
                    match task {
                        SiteTask::Coord { engine } => engine.crash(),
                        SiteTask::Part {
                            engine, storage, ..
                        } => {
                            engine.crash();
                            storage.crash();
                        }
                        SiteTask::Gateway { engine } => engine.crash(),
                    }
                    crash_volatile(host, &mut self.ctx);
                    host.down_until = Some(now + down_for);
                }
            }
            _ if host.is_down(now) => {} // omission: dropped
            Envelope::Apply { txn, key, value } => match task {
                SiteTask::Part {
                    storage, poisoned, ..
                } => {
                    storage.begin(txn);
                    if storage.put(txn, &key, &value).is_err() {
                        poisoned.insert(txn, true);
                    }
                }
                SiteTask::Gateway { engine } => engine.stage_write(txn, &key, &value),
                SiteTask::Coord { .. } => {}
            },
            Envelope::SetIntent { txn, vote } => {
                if let SiteTask::Part { forced_intents, .. } = task {
                    forced_intents.insert(txn, vote);
                }
            }
            Envelope::Commit {
                txn,
                participants,
                reply,
            } => {
                let SiteTask::Coord { engine } = task else {
                    return;
                };
                // Same misuse guards as the threaded coordinator: decided
                // duplicates answer from the memo; in-flight duplicates and
                // empty participant lists drop the reply channel.
                if let Some(outcome) = engine.decided(txn) {
                    let _ = reply.send(outcome);
                } else if participants.is_empty() || engine.in_flight(txn) {
                    drop(reply);
                } else if let Some(over) = self.admission.as_ref().and_then(|adm| {
                    let inflight = self.ctx.inflight.current();
                    let queue = self.ctx.local.len() + self.rx.len();
                    (!adm.admit(inflight, queue))
                        .then_some((inflight, adm.config().max_inflight))
                }) {
                    // Refused at the door: count it, narrate it, and
                    // fail the client fast — the dropped reply channel
                    // reads as a shed on the generator side (its recv
                    // disconnects immediately), never a silent stall.
                    self.ctx.stats.admission_sheds += 1;
                    if let Some(obs) = &host.obs {
                        obs.sink.record(&ProtocolEvent::AdmissionShed {
                            at_us: obs.now_us(),
                            site: host.site.raw(),
                            proto: obs.proto,
                            txn: Some(txn.raw()),
                            inflight: over.0,
                            limit: over.1,
                        });
                    }
                    drop(reply);
                } else {
                    self.ctx.replies.insert(txn, reply);
                    self.ctx.admitted_at.insert(txn, now);
                    self.ctx.inflight.inc();
                    self.ctx.stats.max_inflight =
                        self.ctx.stats.max_inflight.max(self.ctx.replies.len());
                    let actions = engine.begin_commit(txn, &participants);
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
            }
            Envelope::Protocol(msg) => {
                Self::protocol_message(host, task, &mut self.ctx, msg);
            }
            Envelope::ProtocolBatch(msgs) => {
                for msg in msgs {
                    Self::protocol_message(host, task, &mut self.ctx, msg);
                }
            }
        }
    }

    fn protocol_message(host: &mut SiteHost, task: &mut SiteTask, ctx: &mut Ctx, msg: Message) {
        if let Some(obs) = &host.obs {
            observe_recv(obs, host.site, &msg);
        }
        match task {
            SiteTask::Coord { engine } => {
                let actions = engine.on_message(msg.from, &msg.payload);
                run_site_actions(host, ctx, actions);
                drain_cancellations(host, ctx, engine.take_cancelled_timers());
            }
            SiteTask::Part {
                engine,
                storage,
                forced_intents,
                poisoned,
            } => {
                if let Payload::Prepare { txn } = msg.payload {
                    // With deferred sends the data-log force rides the
                    // tick's flush (`finish_turns`), which runs before
                    // the Yes vote can leave this site.
                    let vote = decide_vote(
                        storage,
                        txn,
                        forced_intents.get(&txn).copied(),
                        poisoned.get(&txn).copied().unwrap_or(false),
                        host.defer_sends,
                    );
                    engine.set_intent(txn, vote);
                }
                let actions = engine.on_message(msg.from, &msg.payload);
                let enf = run_site_actions(host, ctx, actions);
                apply_enforcements(storage, enf);
                drain_cancellations(host, ctx, engine.take_cancelled_timers());
            }
            SiteTask::Gateway { engine } => {
                let actions = engine.on_message(msg.from, &msg.payload);
                run_site_actions(host, ctx, actions);
            }
        }
    }

    /// End-of-tick group-commit step: decide, per site with an open
    /// batch (or withheld sends), whether to force now or hold the
    /// window open for more records.
    fn finish_turns(&mut self) {
        let now = self.ctx.now;
        let window = self.config.commit_window;
        let shutting_down = !self.running;
        let idle = self.ctx.local.is_empty() && self.rx.is_empty();
        for st in &mut self.sites {
            let SiteState { host, task } = st;
            // Lazily-staged write sets (`prepare_lazy`) become durable
            // here, before any Yes vote can leave with the tick's send
            // flush below — one data-log fsync per site per tick
            // instead of one per prepared transaction.
            if host.defer_sends {
                if let SiteTask::Part { storage, .. } = task {
                    storage.flush_log().expect("data log flush");
                }
            }
            let log = match task {
                SiteTask::Coord { engine } => engine.log_mut(),
                SiteTask::Part { engine, .. } => engine.log_mut(),
                SiteTask::Gateway { .. } => continue, // no group layer
            };
            if !log.batching() {
                continue;
            }
            let occupancy = log.open_occupancy();
            if occupancy == 0 {
                // Nothing staged: any withheld sends have no durability
                // dependency left — externalize them now.
                host.batch_opened = None;
                flush_sends(host, &mut self.ctx);
                continue;
            }
            let opened = *host.batch_opened.get_or_insert(now);
            let window_over = window.is_zero() || now >= opened + window || shutting_down;
            let adaptive = !window_over && self.config.adaptive_window && occupancy == 1 && idle;
            if window_over || adaptive {
                force_site_batch(host, log, &mut self.ctx, adaptive);
            }
        }
        // Turn boundary: the forces above were one coalesced round of
        // this shard's fsync domain.
        self.ctx.domain.end_round();
    }

    /// End-of-tick log GC. The threaded host lets the coordinator
    /// engine truncate after every finished transaction (`auto_gc`),
    /// which is fine when each site owns a thread — but a truncation
    /// rewrites the whole retained suffix, so a per-decision cadence is
    /// O(n²) I/O once thousands of transactions share this one thread.
    /// The reactor runs one collection per tick, after the batch
    /// forced, covering every transaction the tick finished.
    fn gc_turns(&mut self) {
        let SiteState { host, task } = &mut self.sites[0];
        let SiteTask::Coord { engine } = task else {
            return;
        };
        let released = engine.collect_garbage();
        if released > 0 {
            if let Some(obs) = &host.obs {
                observe_gc(
                    obs,
                    host.site,
                    acp_wal::StableLog::low_water_mark(engine.log()).0,
                    released as u64,
                    host.last_decision_us,
                );
            }
        }
    }

    /// Send decisions to waiting clients (only after the coordinator's
    /// batch forced — `finish_turns` runs first).
    fn deliver(&mut self) {
        let SiteState { host, task } = &mut self.sites[0];
        let SiteTask::Coord { engine } = task else {
            return;
        };
        // Decisions may not be externalized while their commit record is
        // still in an open batch.
        if host.defer_sends && engine.log().open_occupancy() > 0 {
            return;
        }
        let done = deliver_decisions(engine, &mut self.ctx.replies);
        let delivered = done.len() as u64;
        for txn in done {
            if let Some(admitted) = self.ctx.admitted_at.remove(&txn) {
                let us = u64::try_from(
                    self.ctx.now.saturating_duration_since(admitted).as_micros(),
                )
                .unwrap_or(u64::MAX);
                self.ctx.latency.record(us);
            }
        }
        self.ctx.stats.decisions_delivered += delivered;
        self.ctx.inflight.dec_by(delivered);
        self.cadence.on_commits(delivered);
    }

    fn maybe_snapshot(&mut self) {
        let take = self.cadence.on_tick(self.ctx.stats.ticks);
        let (Some(registry), Some(timeline)) = (&self.registry, &self.timeline) else {
            return;
        };
        if take {
            // Sample the coordinator slice's protocol-table balance into
            // the registry's high-water mark before copying the grid.
            if let SiteTask::Coord { engine } = &self.sites[0].task {
                registry.set_max(
                    ProtoLabel::of_coordinator(self.config.cluster.kind),
                    acp_obs::Counter::TablePeakShardOccupancy,
                    engine.table_peak_shard_occupancy() as u64,
                );
            }
            let at_us = u64::try_from(self.t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            timeline.push(registry.snapshot(at_us));
        }
    }

    /// How long the loop may sleep: bounded by the next timer deadline,
    /// the earliest recovery point, and any open batch's window expiry.
    fn next_timeout(&self) -> Duration {
        let now = self.ctx.now;
        let mut deadline: Option<Instant> = self.ctx.wheel.next_deadline();
        let mut fold = |t: Instant| {
            deadline = Some(deadline.map_or(t, |d| d.min(t)));
        };
        for st in &self.sites {
            if let Some(t) = st.host.down_until {
                fold(t);
            }
            if let Some(opened) = st.host.batch_opened {
                fold(opened + self.config.commit_window);
            }
        }
        deadline
            .map_or(Duration::from_millis(50), |d| d.saturating_duration_since(now))
            .max(Duration::from_micros(100))
    }

    /// Collect final state into the backend-independent report shape.
    fn report(self) -> ReactorReport {
        let mut sites = Vec::new();
        let mut coordinator_table_size = 0;
        let mut group_commit = GroupCommitStats::default();
        let mut logical_forces = 0;
        let mut physical_syncs = 0;
        let mut absorb = |log: &NetLog| {
            group_commit.merge(&log.group_stats());
            logical_forces += acp_wal::StableLog::stats(log).forces;
            let inner = acp_wal::StableLog::stats(log.inner());
            physical_syncs += inner.forces + inner.flushes;
        };
        for st in self.sites {
            let site = st.host.site;
            match st.task {
                SiteTask::Coord { engine } => {
                    coordinator_table_size = engine.protocol_table_size();
                    absorb(engine.log());
                    sites.push(SiteSummary {
                        site,
                        enforced: BTreeMap::new(),
                        log_pinned: engine.log_pinned(),
                        committed: BTreeMap::new(),
                    });
                }
                SiteTask::Part {
                    engine, storage, ..
                } => {
                    absorb(engine.log());
                    sites.push(SiteSummary {
                        site,
                        enforced: engine.enforced_all().clone(),
                        log_pinned: engine.log_pinned(),
                        committed: storage
                            .store()
                            .iter()
                            .map(|(k, v)| (k.to_vec(), v.to_vec()))
                            .collect(),
                    });
                }
                SiteTask::Gateway { engine } => {
                    let committed: BTreeMap<Vec<u8>, Vec<u8>> =
                        engine.legacy().entries().into_iter().collect();
                    sites.push(SiteSummary {
                        site,
                        enforced: BTreeMap::new(),
                        log_pinned: Vec::new(),
                        committed,
                    });
                }
            }
        }
        let history = self.ctx.history.lock().clone();
        ReactorReport {
            cluster: ClusterReport {
                history,
                coordinator_table_size,
                sites,
                group_commit,
                logical_forces,
                physical_syncs,
            },
            stats: self.ctx.stats,
            fsync: self.ctx.domain.stats(),
            latency: self.ctx.latency.snapshot(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard spawning

/// Everything needed to build and run one reactor shard. The
/// single-reactor [`ReactorCluster`] is the 1-shard special case;
/// [`crate::multi_reactor::MultiReactorCluster`] builds N of these over
/// one shared history, in-flight gauge and WAL directory.
pub(crate) struct ShardSpec {
    /// This shard's index.
    pub shard: usize,
    /// Total reactor count.
    pub n_shards: usize,
    /// Shared reactor configuration.
    pub config: ReactorConfig,
    /// This shard's injector: client envelopes and peer mail.
    pub rx: Receiver<(SiteId, Envelope)>,
    /// Every shard's injector, by shard index.
    pub peers: Vec<Sender<(SiteId, Envelope)>>,
    /// Cluster-wide ACTA history.
    pub history: SharedHistory,
    /// Cluster-wide in-flight commit gauge.
    pub inflight: Arc<InflightGauge>,
    /// Trace sink for this shard's sites (may differ per shard so each
    /// shard can feed its own metrics registry).
    pub sink: Option<Arc<dyn TraceSink>>,
    /// Registry snapshotted into `timeline` on the snapshot cadence.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// This shard's snapshot timeline.
    pub timeline: Option<Arc<MetricsTimeline>>,
    /// Shared epoch for trace timestamps.
    pub t0: Instant,
    /// Override the coordinator slice's protocol-table shard count
    /// (None keeps [`acp_core::TABLE_SHARDS`]).
    pub table_shards: Option<usize>,
}

/// Build one shard's sites and start its event loop. The shard owns
/// its coordinator slice (always at local index 0) plus the
/// participants and gateways with `(site − 1) mod n_shards == shard`.
/// `dir` is the WAL directory, shared across shards: participant files
/// are disambiguated by site, coordinator slices by shard.
pub(crate) fn spawn_shard(spec: ShardSpec, dir: &Path) -> JoinHandle<ReactorReport> {
    let ShardSpec {
        shard,
        n_shards,
        config,
        rx,
        peers,
        history,
        inflight,
        sink,
        registry,
        timeline,
        t0,
        table_shards,
    } = spec;
    let obs_for = |proto: ProtoLabel| {
        sink.as_ref().map(|s| NetObs {
            sink: Arc::clone(s),
            t0,
            proto,
        })
    };
    let cc = &config.cluster;
    let wrap = |log: FileLog| {
        if cc.group_commit {
            GroupCommitLog::deferred(log)
        } else {
            GroupCommitLog::passthrough(log)
        }
    };
    let host_for = |site: SiteId, obs: Option<NetObs>, defer: bool, quiet: bool| SiteHost {
        site,
        obs,
        down_until: None,
        last_decision_us: None,
        defer_sends: defer,
        deferred_sends: Vec::new(),
        timer_ids: BTreeMap::new(),
        batch_opened: None,
        quiet,
    };

    let mut sites = Vec::new();
    let mut owned = BTreeMap::new();
    {
        let mut engine = Coordinator::new(
            ReactorCluster::COORDINATOR,
            cc.kind,
            wrap(FileLog::create(dir.join(format!("coord-{shard}.wal"))).expect("wal")),
        );
        if let Some(n) = table_shards {
            engine.set_table_shards(n);
        }
        for (i, &p) in cc.participant_protocols.iter().enumerate() {
            engine.register_site(SiteId::new(i as u32 + 1), p);
        }
        engine.set_track_cancellations(true);
        // Per-decision auto-GC rewrites the retained log suffix on
        // every finish — O(n²) I/O once thousands of transactions
        // are in flight on this one thread. The reactor defers GC
        // like it defers fsyncs: once per tick (`gc_turns`).
        engine.auto_gc = false;
        let defer = cc.group_commit;
        owned.insert(ReactorCluster::COORDINATOR, sites.len());
        sites.push(SiteState {
            host: host_for(
                ReactorCluster::COORDINATOR,
                obs_for(ProtoLabel::of_coordinator(cc.kind)),
                defer,
                // N slices are one logical site 0; only shard 0's slice
                // narrates crash/recover.
                shard != 0,
            ),
            task: SiteTask::Coord { engine },
        });
    }
    for (i, &proto) in cc.participant_protocols.iter().enumerate() {
        if i % n_shards != shard {
            continue; // another reactor owns this site
        }
        let site = SiteId::new(i as u32 + 1);
        if cc.gateways.contains(&i) {
            let engine = GatewayParticipant::new(
                site,
                proto,
                FileLog::create(dir.join(format!("gw-{}.wal", site.raw()))).expect("wal"),
                LegacyStore::new(),
            );
            owned.insert(site, sites.len());
            sites.push(SiteState {
                host: host_for(site, obs_for(ProtoLabel::Gateway), false, false),
                task: SiteTask::Gateway { engine },
            });
        } else {
            let mut engine = Participant::new(
                site,
                proto,
                wrap(FileLog::create(dir.join(format!("part-{}.wal", site.raw()))).expect("wal")),
            );
            engine.set_track_cancellations(true);
            let storage = SiteEngine::new(
                FileLog::create(dir.join(format!("data-{}.wal", site.raw()))).expect("wal"),
            );
            owned.insert(site, sites.len());
            sites.push(SiteState {
                host: host_for(
                    site,
                    obs_for(ProtoLabel::of_participant(proto)),
                    cc.group_commit,
                    false,
                ),
                task: SiteTask::Part {
                    engine,
                    storage,
                    forced_intents: BTreeMap::new(),
                    poisoned: BTreeMap::new(),
                },
            });
        }
    }

    let delays = cc.delays;
    let cadence = SnapshotCadence::new(config.snapshot_every_ticks, config.snapshot_every_commits);
    let reactor = Reactor {
        sites,
        owned,
        ctx: Ctx {
            wheel: TimerWheel::new(t0),
            local: VecDeque::new(),
            history,
            delays,
            replies: BTreeMap::new(),
            stats: ReactorStats::default(),
            now: t0,
            shard,
            n_shards,
            peers,
            domain: FsyncDomain::new(),
            inflight,
            admitted_at: BTreeMap::new(),
            latency: LatencyHistogram::new(),
        },
        admission: config.admission.map(AdmissionController::new),
        config,
        rx,
        t0,
        registry,
        timeline,
        cadence,
        running: true,
    };
    std::thread::spawn(move || reactor.run())
}

// ---------------------------------------------------------------------------
// Public handle

/// A running reactor: same client API as [`crate::cluster::Cluster`],
/// one background thread for the whole cluster.
pub struct ReactorCluster {
    tx: Sender<(SiteId, Envelope)>,
    handle: JoinHandle<ReactorReport>,
    next_txn: u64,
    n_sites: usize,
    _dir: TempDir,
}

impl ReactorCluster {
    /// The coordinator's site id.
    pub const COORDINATOR: SiteId = SiteId(0);

    /// Spawn a reactor cluster with tracing off.
    #[must_use]
    pub fn spawn(config: &ReactorConfig) -> ReactorCluster {
        Self::spawn_inner(config, None, None, None)
    }

    /// Spawn with a trace sink (same event vocabulary and formatting as
    /// the threaded backend).
    #[must_use]
    pub fn spawn_with_sink(config: &ReactorConfig, sink: Arc<dyn TraceSink>) -> ReactorCluster {
        Self::spawn_inner(config, Some(sink), None, None)
    }

    /// Spawn with a sink *and* a live metrics surface: the reactor
    /// snapshots `registry` into `timeline` per the config's snapshot
    /// cadence (the caller is responsible for feeding the registry,
    /// typically by including a `CountingSink` in `sink`).
    #[must_use]
    pub fn spawn_observed(
        config: &ReactorConfig,
        sink: Arc<dyn TraceSink>,
        registry: Arc<MetricsRegistry>,
        timeline: Arc<MetricsTimeline>,
    ) -> ReactorCluster {
        Self::spawn_inner(config, Some(sink), Some(registry), Some(timeline))
    }

    fn spawn_inner(
        config: &ReactorConfig,
        sink: Option<Arc<dyn TraceSink>>,
        registry: Option<Arc<MetricsRegistry>>,
        timeline: Option<Arc<MetricsTimeline>>,
    ) -> ReactorCluster {
        assert!(
            config.cluster.paxos_f.is_none(),
            "the reactor backends host no paxos acceptors; use the socket backend"
        );
        let t0 = Instant::now();
        let dir = TempDir::new("reactor").expect("tempdir");
        let (tx, rx) = unbounded();
        let handle = spawn_shard(
            ShardSpec {
                shard: 0,
                n_shards: 1,
                config: config.clone(),
                rx,
                peers: vec![tx.clone()],
                history: Arc::new(Mutex::new(History::new())),
                inflight: Arc::new(InflightGauge::new()),
                sink,
                registry,
                timeline,
                t0,
                table_shards: None,
            },
            dir.path(),
        );
        ReactorCluster {
            tx,
            handle,
            next_txn: 1,
            n_sites: config.cluster.participant_protocols.len() + 1,
            _dir: dir,
        }
    }
    /// Allocate a fresh transaction id.
    pub fn next_txn(&mut self) -> TxnId {
        let t = TxnId::new(self.next_txn);
        self.next_txn += 1;
        t
    }

    /// All participant site ids.
    #[must_use]
    pub fn participants(&self) -> Vec<SiteId> {
        (1..self.n_sites as u32).map(SiteId::new).collect()
    }

    fn send(&self, site: SiteId, envelope: Envelope) {
        let _ = self.tx.send((site, envelope));
    }

    /// Write `key := value` under `txn` at `site`.
    pub fn apply(&self, site: SiteId, txn: TxnId, key: &[u8], value: &[u8]) {
        self.send(
            site,
            Envelope::Apply {
                txn,
                key: key.to_vec(),
                value: value.to_vec(),
            },
        );
    }

    /// Override the vote `site` will cast for `txn`.
    pub fn set_intent(&self, site: SiteId, txn: TxnId, vote: Vote) {
        self.send(site, Envelope::SetIntent { txn, vote });
    }

    /// Crash a site for `down_for`.
    pub fn crash(&self, site: SiteId, down_for: Duration) {
        self.send(site, Envelope::Crash { down_for });
    }

    /// Commit `txn` across `participants`; wait for the decision.
    pub fn commit(&self, txn: TxnId, participants: &[SiteId]) -> Option<Outcome> {
        self.commit_async(txn, participants)
            .recv_timeout(Duration::from_secs(20))
            .ok()
    }

    /// Start commit processing; the returned channel yields the
    /// decision when it is durable. This is how a driver keeps
    /// thousands of transactions in flight on one reactor.
    #[must_use]
    pub fn commit_async(&self, txn: TxnId, participants: &[SiteId]) -> Receiver<Outcome> {
        let (tx, rx) = bounded(1);
        self.send(
            Self::COORDINATOR,
            Envelope::Commit {
                txn,
                participants: participants.to_vec(),
                reply: tx,
            },
        );
        rx
    }

    /// Let in-flight work settle for `d`.
    pub fn settle(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Stop the reactor and collect the final state.
    #[must_use]
    pub fn shutdown(self) -> ReactorReport {
        self.send(Self::COORDINATOR, Envelope::Shutdown);
        self.handle.join().expect("reactor thread")
    }
}
