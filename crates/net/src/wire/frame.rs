//! The wire frame codec: length-prefixed, CRC-framed messages over a
//! byte stream.
//!
//! Layout (all integers little-endian, like the WAL):
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬──────────────┬─────────┐
//! │ magic   │ len     │ seq     │ body         │ crc32   │
//! │ "ACPW"  │ u32     │ u64     │ len bytes    │ u32     │
//! └─────────┴─────────┴─────────┴──────────────┴─────────┘
//! ```
//!
//! The CRC covers `len ‖ seq ‖ body` — the same discipline as the WAL's
//! record frames ([`acp_wal::encode`]), whose primitive writers and
//! [`Reader`] this codec reuses. `seq` is a per-connection counter
//! assigned when the frame is *built* (logical send time), so a frame
//! that fault injection delays arrives carrying an older number than
//! its successors — the receiver counts these regressions as direct
//! evidence of frame-level reordering, without ever enforcing order.
//!
//! A frame that fails validation (bad magic, oversized length, CRC
//! mismatch, trailing body bytes) poisons the whole connection: unlike
//! the WAL's torn *tail* (which recovery truncates), a mid-stream
//! corruption means framing is lost for good, so the receiver drops the
//! connection and lets the sender's retry machinery re-establish it.

use acp_types::{Message, Outcome, Payload, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::crc::crc32;
use acp_wal::encode::{put_bytes, put_u32, put_u64, put_u8, Reader};
use acp_wal::WalError;

/// Frame magic: `"ACPW"` as a little-endian `u32` (distinct from the
/// WAL's `"WALR"`, so a socket fed a WAL file — or vice versa — fails
/// fast).
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"ACPW");

/// Upper bound on a frame body. Protocol messages are tens of bytes;
/// anything near this limit is corruption, not load.
pub const MAX_FRAME_BODY: u32 = 16 * 1024 * 1024;

/// magic + len + seq.
const HEADER_LEN: usize = 4 + 4 + 8;
const CRC_LEN: usize = 4;

// Body tags.
const TAG_PROTOCOL: u8 = 0x01;
const TAG_PROTOCOL_BATCH: u8 = 0x02;
const TAG_APPLY: u8 = 0x03;
const TAG_SET_INTENT: u8 = 0x04;

/// What travels between nodes. Protocol traffic is the engines' own
/// [`Message`]s; `Apply`/`SetIntent` carry the client-driver envelopes
/// a coordinator-side driver aims at remote participants. `Commit`,
/// `Crash` and `Shutdown` never cross the wire — they are control
/// envelopes between a driver and the node it owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// One protocol message.
    Protocol(Message),
    /// Several protocol messages externalized together after one
    /// group-commit force (ack piggybacking), all to the same site.
    ProtocolBatch(Vec<Message>),
    /// Client data operation for a remote participant.
    Apply {
        /// Destination participant.
        to: SiteId,
        /// The transaction.
        txn: TxnId,
        /// Key to write.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Client vote override for a remote participant.
    SetIntent {
        /// Destination participant.
        to: SiteId,
        /// The transaction.
        txn: TxnId,
        /// The vote to cast.
        vote: Vote,
    },
}

impl WireMsg {
    /// The destination site this frame should be dispatched to.
    #[must_use]
    pub fn to(&self) -> Option<SiteId> {
        match self {
            WireMsg::Protocol(m) => Some(m.to),
            WireMsg::ProtocolBatch(ms) => ms.first().map(|m| m.to),
            WireMsg::Apply { to, .. } | WireMsg::SetIntent { to, .. } => Some(*to),
        }
    }

    /// Stable label for fault-rule matching: a protocol message's
    /// payload kind (`"prepare"`, `"vote"`, …), or the envelope kind.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            WireMsg::Protocol(m) => m.payload.kind_name(),
            WireMsg::ProtocolBatch(_) => "batch",
            WireMsg::Apply { .. } => "apply",
            WireMsg::SetIntent { .. } => "set-intent",
        }
    }
}

fn put_vote(out: &mut Vec<u8>, v: Vote) {
    put_u8(
        out,
        match v {
            Vote::Yes => 0,
            Vote::No => 1,
            Vote::ReadOnly => 2,
        },
    );
}

fn put_outcome(out: &mut Vec<u8>, o: Outcome) {
    put_u8(out, match o {
        Outcome::Commit => 0,
        Outcome::Abort => 1,
    });
}

fn put_protocol(out: &mut Vec<u8>, p: ProtocolKind) {
    put_u8(out, match p {
        ProtocolKind::PrN => 0,
        ProtocolKind::PrA => 1,
        ProtocolKind::PrC => 2,
    });
}

fn bad(what: &str, value: u8) -> WalError {
    WalError::Corrupt {
        offset: 0,
        detail: format!("wire frame: bad {what} {value:#x}"),
    }
}

fn read_vote(r: &mut Reader<'_>) -> Result<Vote, WalError> {
    match r.u8("vote")? {
        0 => Ok(Vote::Yes),
        1 => Ok(Vote::No),
        2 => Ok(Vote::ReadOnly),
        v => Err(bad("vote", v)),
    }
}

fn read_outcome(r: &mut Reader<'_>) -> Result<Outcome, WalError> {
    match r.u8("outcome")? {
        0 => Ok(Outcome::Commit),
        1 => Ok(Outcome::Abort),
        v => Err(bad("outcome", v)),
    }
}

fn read_protocol(r: &mut Reader<'_>) -> Result<ProtocolKind, WalError> {
    match r.u8("protocol")? {
        0 => Ok(ProtocolKind::PrN),
        1 => Ok(ProtocolKind::PrA),
        2 => Ok(ProtocolKind::PrC),
        v => Err(bad("protocol", v)),
    }
}

// Payload tags (wire-local; the WAL has its own record vocabulary).
const PAY_PREPARE: u8 = 1;
const PAY_VOTE: u8 = 2;
const PAY_DECISION: u8 = 3;
const PAY_ACK: u8 = 4;
const PAY_INQUIRY: u8 = 5;
const PAY_INQUIRY_RESPONSE: u8 = 6;
const PAY_PAXOS_BEGIN: u8 = 7;
const PAY_PHASE1A: u8 = 8;
const PAY_PHASE1B: u8 = 9;
const PAY_PHASE2A: u8 = 10;
const PAY_PHASE2B: u8 = 11;
const PAY_PAXOS_FORGET: u8 = 12;

fn put_instances(out: &mut Vec<u8>, instances: &[(SiteId, bool)]) {
    put_u32(out, u32::try_from(instances.len()).expect("instance count"));
    for (site, prepared) in instances {
        put_u32(out, site.raw());
        put_u8(out, u8::from(*prepared));
    }
}

fn read_instances(r: &mut Reader<'_>) -> Result<Vec<(SiteId, bool)>, WalError> {
    let n = r.u32("instance count")? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let site = SiteId::new(r.u32("instance site")?);
        let prepared = match r.u8("instance value")? {
            0 => false,
            1 => true,
            v => return Err(bad("instance value", v)),
        };
        out.push((site, prepared));
    }
    Ok(out)
}

fn put_sites(out: &mut Vec<u8>, sites: &[SiteId]) {
    put_u32(out, u32::try_from(sites.len()).expect("site count"));
    for s in sites {
        put_u32(out, s.raw());
    }
}

fn read_sites(r: &mut Reader<'_>) -> Result<Vec<SiteId>, WalError> {
    let n = r.u32("site count")? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(SiteId::new(r.u32("site")?));
    }
    Ok(out)
}

fn put_message(out: &mut Vec<u8>, m: &Message) {
    put_u32(out, m.from.raw());
    put_u32(out, m.to.raw());
    match &m.payload {
        Payload::Prepare { txn } => {
            put_u8(out, PAY_PREPARE);
            put_u64(out, txn.raw());
        }
        Payload::Vote { txn, vote } => {
            put_u8(out, PAY_VOTE);
            put_u64(out, txn.raw());
            put_vote(out, *vote);
        }
        Payload::Decision { txn, outcome } => {
            put_u8(out, PAY_DECISION);
            put_u64(out, txn.raw());
            put_outcome(out, *outcome);
        }
        Payload::Ack { txn } => {
            put_u8(out, PAY_ACK);
            put_u64(out, txn.raw());
        }
        Payload::Inquiry { txn, protocol } => {
            put_u8(out, PAY_INQUIRY);
            put_u64(out, txn.raw());
            put_protocol(out, *protocol);
        }
        Payload::InquiryResponse { txn, outcome } => {
            put_u8(out, PAY_INQUIRY_RESPONSE);
            put_u64(out, txn.raw());
            put_outcome(out, *outcome);
        }
        Payload::PaxosBegin { txn, participants } => {
            put_u8(out, PAY_PAXOS_BEGIN);
            put_u64(out, txn.raw());
            put_sites(out, participants);
        }
        Payload::Phase1a { txn, ballot } => {
            put_u8(out, PAY_PHASE1A);
            put_u64(out, txn.raw());
            put_u64(out, *ballot);
        }
        Payload::Phase1b {
            txn,
            ballot,
            forgotten,
            participants,
            accepted,
        } => {
            put_u8(out, PAY_PHASE1B);
            put_u64(out, txn.raw());
            put_u64(out, *ballot);
            put_u8(out, u8::from(*forgotten));
            put_sites(out, participants);
            put_u32(out, u32::try_from(accepted.len()).expect("accepted count"));
            for (site, bal, prepared) in accepted {
                put_u32(out, site.raw());
                put_u64(out, *bal);
                put_u8(out, u8::from(*prepared));
            }
        }
        Payload::Phase2a {
            txn,
            ballot,
            instances,
        } => {
            put_u8(out, PAY_PHASE2A);
            put_u64(out, txn.raw());
            put_u64(out, *ballot);
            put_instances(out, instances);
        }
        Payload::Phase2b {
            txn,
            ballot,
            instances,
        } => {
            put_u8(out, PAY_PHASE2B);
            put_u64(out, txn.raw());
            put_u64(out, *ballot);
            put_instances(out, instances);
        }
        Payload::PaxosForget { txn } => {
            put_u8(out, PAY_PAXOS_FORGET);
            put_u64(out, txn.raw());
        }
    }
}

fn read_message(r: &mut Reader<'_>) -> Result<Message, WalError> {
    let from = SiteId::new(r.u32("from")?);
    let to = SiteId::new(r.u32("to")?);
    let tag = r.u8("payload tag")?;
    let txn = TxnId::new(r.u64("txn")?);
    let payload = match tag {
        PAY_PREPARE => Payload::Prepare { txn },
        PAY_VOTE => Payload::Vote {
            txn,
            vote: read_vote(r)?,
        },
        PAY_DECISION => Payload::Decision {
            txn,
            outcome: read_outcome(r)?,
        },
        PAY_ACK => Payload::Ack { txn },
        PAY_INQUIRY => Payload::Inquiry {
            txn,
            protocol: read_protocol(r)?,
        },
        PAY_INQUIRY_RESPONSE => Payload::InquiryResponse {
            txn,
            outcome: read_outcome(r)?,
        },
        PAY_PAXOS_BEGIN => Payload::PaxosBegin {
            txn,
            participants: read_sites(r)?,
        },
        PAY_PHASE1A => Payload::Phase1a {
            txn,
            ballot: r.u64("ballot")?,
        },
        PAY_PHASE1B => {
            let ballot = r.u64("ballot")?;
            let forgotten = match r.u8("forgotten")? {
                0 => false,
                1 => true,
                v => return Err(bad("forgotten flag", v)),
            };
            let participants = read_sites(r)?;
            let n = r.u32("accepted count")? as usize;
            let mut accepted = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let site = SiteId::new(r.u32("accepted site")?);
                let bal = r.u64("accepted ballot")?;
                let prepared = match r.u8("accepted value")? {
                    0 => false,
                    1 => true,
                    v => return Err(bad("accepted value", v)),
                };
                accepted.push((site, bal, prepared));
            }
            Payload::Phase1b {
                txn,
                ballot,
                forgotten,
                participants,
                accepted,
            }
        }
        PAY_PHASE2A => Payload::Phase2a {
            txn,
            ballot: r.u64("ballot")?,
            instances: read_instances(r)?,
        },
        PAY_PHASE2B => Payload::Phase2b {
            txn,
            ballot: r.u64("ballot")?,
            instances: read_instances(r)?,
        },
        PAY_PAXOS_FORGET => Payload::PaxosForget { txn },
        t => return Err(bad("payload tag", t)),
    };
    Ok(Message::new(from, to, payload))
}

/// Encode one message body (no frame header).
fn encode_body(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        WireMsg::Protocol(m) => {
            put_u8(&mut out, TAG_PROTOCOL);
            put_message(&mut out, m);
        }
        WireMsg::ProtocolBatch(ms) => {
            put_u8(&mut out, TAG_PROTOCOL_BATCH);
            put_u32(&mut out, u32::try_from(ms.len()).expect("batch size"));
            for m in ms {
                put_message(&mut out, m);
            }
        }
        WireMsg::Apply {
            to,
            txn,
            key,
            value,
        } => {
            put_u8(&mut out, TAG_APPLY);
            put_u32(&mut out, to.raw());
            put_u64(&mut out, txn.raw());
            put_bytes(&mut out, key);
            put_bytes(&mut out, value);
        }
        WireMsg::SetIntent { to, txn, vote } => {
            put_u8(&mut out, TAG_SET_INTENT);
            put_u32(&mut out, to.raw());
            put_u64(&mut out, txn.raw());
            put_vote(&mut out, *vote);
        }
    }
    out
}

fn decode_body(buf: &[u8]) -> Result<WireMsg, WalError> {
    let mut r = Reader::new(buf);
    let msg = match r.u8("wire tag")? {
        TAG_PROTOCOL => WireMsg::Protocol(read_message(&mut r)?),
        TAG_PROTOCOL_BATCH => {
            let n = r.u32("batch count")? as usize;
            // A batch can never outnumber the bytes that encode it.
            if n > buf.len() {
                return Err(WalError::Corrupt {
                    offset: 0,
                    detail: format!("wire frame: absurd batch count {n}"),
                });
            }
            let mut ms = Vec::with_capacity(n);
            for _ in 0..n {
                ms.push(read_message(&mut r)?);
            }
            WireMsg::ProtocolBatch(ms)
        }
        TAG_APPLY => WireMsg::Apply {
            to: SiteId::new(r.u32("to")?),
            txn: TxnId::new(r.u64("txn")?),
            key: r.bytes("key")?,
            value: r.bytes("value")?,
        },
        TAG_SET_INTENT => WireMsg::SetIntent {
            to: SiteId::new(r.u32("to")?),
            txn: TxnId::new(r.u64("txn")?),
            vote: read_vote(&mut r)?,
        },
        t => return Err(bad("wire tag", t)),
    };
    if !r.done() {
        return Err(WalError::Corrupt {
            offset: 0,
            detail: "wire frame: trailing bytes after body".to_string(),
        });
    }
    Ok(msg)
}

/// Encode one complete frame, ready to write to a socket.
#[must_use]
pub fn encode_wire_frame(seq: u64, msg: &WireMsg) -> Vec<u8> {
    let body = encode_body(msg);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + CRC_LEN);
    put_u32(&mut out, WIRE_MAGIC);
    put_u32(&mut out, u32::try_from(body.len()).expect("body size"));
    put_u64(&mut out, seq);
    out.extend_from_slice(&body);
    let crc = crc32(&out[4..]);
    put_u32(&mut out, crc);
    out
}

/// Streaming frame decoder: feed it arbitrary byte chunks, pull whole
/// frames out. One instance per connection — `seq` interpretation and
/// framing state are connection-scoped.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next complete frame: `Ok(Some((seq, msg)))` when one is
    /// ready, `Ok(None)` when more bytes are needed, `Err` when the
    /// stream is corrupt (drop the connection — framing is lost).
    pub fn next_frame(&mut self) -> Result<Option<(u64, WireMsg)>, WalError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes"));
        if magic != WIRE_MAGIC {
            return Err(WalError::Corrupt {
                offset: 0,
                detail: format!("wire frame: bad magic {magic:#010x}"),
            });
        }
        let len = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BODY {
            return Err(WalError::Corrupt {
                offset: 4,
                detail: format!("wire frame: body length {len} exceeds cap"),
            });
        }
        let total = HEADER_LEN + len as usize + CRC_LEN;
        if self.buf.len() < total {
            return Ok(None);
        }
        let crc_stored = u32::from_le_bytes(
            self.buf[total - CRC_LEN..total].try_into().expect("4 bytes"),
        );
        let crc_actual = crc32(&self.buf[4..total - CRC_LEN]);
        if crc_stored != crc_actual {
            return Err(WalError::Corrupt {
                offset: 0,
                detail: format!(
                    "wire frame: crc mismatch (stored {crc_stored:#010x}, actual {crc_actual:#010x})"
                ),
            });
        }
        let seq = u64::from_le_bytes(self.buf[8..16].try_into().expect("8 bytes"));
        let msg = decode_body(&self.buf[HEADER_LEN..total - CRC_LEN])?;
        self.buf.drain(..total);
        Ok(Some((seq, msg)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<WireMsg> {
        let m = |p| Message::new(SiteId::new(1), SiteId::new(0), p);
        vec![
            WireMsg::Protocol(m(Payload::Prepare { txn: TxnId::new(7) })),
            WireMsg::Protocol(m(Payload::Vote {
                txn: TxnId::new(7),
                vote: Vote::Yes,
            })),
            WireMsg::Protocol(m(Payload::Decision {
                txn: TxnId::new(7),
                outcome: Outcome::Abort,
            })),
            WireMsg::Protocol(m(Payload::Ack { txn: TxnId::new(7) })),
            WireMsg::Protocol(m(Payload::Inquiry {
                txn: TxnId::new(8),
                protocol: ProtocolKind::PrC,
            })),
            WireMsg::Protocol(m(Payload::InquiryResponse {
                txn: TxnId::new(8),
                outcome: Outcome::Commit,
            })),
            WireMsg::ProtocolBatch(vec![
                m(Payload::Ack { txn: TxnId::new(1) }),
                m(Payload::Vote {
                    txn: TxnId::new(2),
                    vote: Vote::ReadOnly,
                }),
            ]),
            WireMsg::Apply {
                to: SiteId::new(2),
                txn: TxnId::new(9),
                key: b"k".to_vec(),
                value: b"value".to_vec(),
            },
            WireMsg::SetIntent {
                to: SiteId::new(3),
                txn: TxnId::new(9),
                vote: Vote::No,
            },
        ]
    }

    #[test]
    fn roundtrips_every_variant() {
        let mut dec = FrameDecoder::new();
        for (i, msg) in sample_msgs().into_iter().enumerate() {
            let frame = encode_wire_frame(i as u64, &msg);
            dec.feed(&frame);
            let (seq, got) = dec.next_frame().expect("valid").expect("complete");
            assert_eq!(seq, i as u64);
            assert_eq!(got, msg);
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn split_feeds_reassemble() {
        let msg = WireMsg::Apply {
            to: SiteId::new(1),
            txn: TxnId::new(42),
            key: b"key".to_vec(),
            value: b"value-bytes".to_vec(),
        };
        let frame = encode_wire_frame(3, &msg);
        let mut dec = FrameDecoder::new();
        for b in &frame[..frame.len() - 1] {
            dec.feed(std::slice::from_ref(b));
            assert!(dec.next_frame().expect("no error yet").is_none());
        }
        dec.feed(&frame[frame.len() - 1..]);
        let (seq, got) = dec.next_frame().expect("valid").expect("complete");
        assert_eq!((seq, got), (3, msg));
    }

    #[test]
    fn two_frames_in_one_feed() {
        let a = WireMsg::Protocol(Message::new(
            SiteId::new(1),
            SiteId::new(0),
            Payload::Ack { txn: TxnId::new(1) },
        ));
        let b = WireMsg::SetIntent {
            to: SiteId::new(1),
            txn: TxnId::new(2),
            vote: Vote::Yes,
        };
        let mut bytes = encode_wire_frame(0, &a);
        bytes.extend(encode_wire_frame(1, &b));
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame().unwrap().unwrap(), (0, a));
        assert_eq!(dec.next_frame().unwrap().unwrap(), (1, b));
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn corrupt_magic_and_crc_are_errors() {
        let msg = WireMsg::Protocol(Message::new(
            SiteId::new(1),
            SiteId::new(0),
            Payload::Ack { txn: TxnId::new(1) },
        ));
        let mut frame = encode_wire_frame(0, &msg);
        frame[0] ^= 0xff; // magic
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert!(dec.next_frame().is_err());

        let mut frame = encode_wire_frame(0, &msg);
        let n = frame.len();
        frame[n - 7] ^= 0x01; // body bit flip → CRC mismatch
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn oversized_length_rejected_before_buffering_gigabytes() {
        let mut dec = FrameDecoder::new();
        let mut junk = Vec::new();
        put_u32(&mut junk, WIRE_MAGIC);
        put_u32(&mut junk, MAX_FRAME_BODY + 1);
        put_u64(&mut junk, 0);
        dec.feed(&junk);
        assert!(dec.next_frame().is_err());
    }
}
