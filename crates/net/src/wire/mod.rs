//! Real-socket wire backend: length-prefixed TCP frames under the
//! sans-IO engines.
//!
//! The other three backends in this crate move [`crate::envelope::Envelope`]s
//! between sites through process memory (threads and channels, or a
//! reactor's ready queue). This module gives the same envelopes a
//! physical representation — a CRC-framed byte stream over nonblocking
//! TCP — so a cluster can span real OS processes whose only shared
//! state is the network and their own WAL files. That is the paper's
//! actual deployment model: sites fail by *losing their process*, keep
//! only what they forced to the log, and recover by the restart
//! procedure, with commit protocol messages crossing a wire that can
//! drop or reorder them (the latter only via injected faults — TCP is
//! FIFO, which is exactly why footnote 5's hazard needs a fault layer
//! to reproduce here).
//!
//! Layout:
//!
//! * [`frame`] — the codec: `ACPW | len | seq | body | crc32` frames
//!   around a [`WireMsg`] body, plus the incremental [`FrameDecoder`].
//! * [`faults`] — sender-side frame drop/delay rules ([`WireFaults`]),
//!   the socket analogue of the WAL's fault layer.
//! * `conn` — unidirectional connection state: dialing with capped
//!   exponential backoff, bounded byte write queues, accept-only reads.
//! * [`node`] — the event loop: the reactor's turn discipline driven
//!   by a vendored epoll shim, hosting a subset of sites per process;
//!   [`SocketNode`] is the public handle, mirroring
//!   [`crate::reactor::ReactorCluster`]'s client API.
//!
//! Everything observable is shared with the in-process backends — same
//! engines, same trace emission points, same ACTA history — so a
//! socket run is checked by the same replay tooling, and a quiet
//! single-transaction run is trace-identical to the reactor.

pub mod faults;
pub mod frame;
pub mod node;

pub(crate) mod conn;

pub use faults::{FaultAction, FaultRule, Partition, WireFaults};
pub use frame::{encode_wire_frame, FrameDecoder, WireMsg, MAX_FRAME_BODY, WIRE_MAGIC};
pub use node::{shared_history, AddressBook, NodeConfig, NodeReport, SharedHistory, SocketNode};
