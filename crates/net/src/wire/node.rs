//! The socket node: one OS process hosting a subset of a cluster's
//! sites, exchanging frames with its peers over real TCP.
//!
//! This is the reactor loop ([`crate::reactor`]) with the in-process
//! ready queue split in two: envelopes addressed to a **hosted** site
//! still ride the local `VecDeque`, envelopes addressed to a remote
//! site are encoded into length-prefixed CRC frames
//! ([`super::frame`]) and queued on a per-destination outbound
//! connection ([`super::conn::OutConn`]). A vendored epoll shim drives
//! socket readiness; the same hashed [`TimerWheel`] drives engine
//! timers; both deadlines fold into one `epoll_wait` timeout, so the
//! loop sleeps until *either* a frame arrives or a protocol timer is
//! due.
//!
//! The engines cannot tell the difference. They see the same
//! [`Envelope`] dispatch, the same [`crate::actor`] emission points,
//! the same group-commit force-then-externalize turn discipline — so
//! a single-transaction run over loopback sockets produces a trace
//! byte-identical (after timestamp masking) to the in-process reactor,
//! which is exactly what the golden test in `tests/socket_wire.rs`
//! pins.
//!
//! What is genuinely new is the failure domain. A process hosts sites;
//! `kill -9` takes down every hosted site, its volatile queues, and
//! every TCP connection at once, while the WAL files persist. On
//! restart the node reopens its WALs (`FileLog::open`), replays them,
//! and runs the paper's restart procedure (`engine.recover()`) before
//! accepting new work — the multi-process demo (`exp_socket`) kills
//! and restarts real processes mid-commit and checks the merged traces
//! with the ACTA predicates.

use super::conn::{InConn, OutConn};
use super::faults::{FaultAction, WireFaults};
use super::frame::{encode_wire_frame, WireMsg};
use crate::actor::{
    apply_enforcements, decide_vote, deliver_decisions, observe_acta, observe_crash, observe_gc,
    observe_recover, observe_recv, observe_retry, observe_send, protocol_outcomes, NetDelays,
    NetLog, NetObs,
};
use crate::cluster::{ClusterConfig, ClusterReport, SiteSummary};
use crate::envelope::Envelope;
use crate::reactor::ReactorStats;
use crate::timer::{TimerId, TimerWheel};
use acp_acta::{ActaEvent, History};
use acp_core::{Action, Coordinator, Participant, PaxosConfig, PaxosNode, TimerPurpose};
use acp_engine::SiteEngine;
use acp_obs::{ProtoLabel, ProtocolEvent, TraceSink, WireMetrics, WireSnapshot};
use acp_types::{Message, Outcome, Payload, SiteId, TxnId, Vote};
use acp_wal::{DomainStats, FileLog, FsyncDomain, GroupCommitLog, GroupCommitStats};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use epoll::{Epoll, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Shared ACTA history handle (one per process; the demo merges
/// per-process trace files instead).
pub type SharedHistory = Arc<Mutex<History>>;

/// A fresh, empty shared history. Multi-node tests in one process pass
/// the same handle to several [`SocketNode::spawn_with`] calls so the
/// cluster-wide ACTA predicates can run on the merged event stream.
#[must_use]
pub fn shared_history() -> SharedHistory {
    Arc::new(Mutex::new(History::new()))
}

/// epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// epoll token of the in-process waker pipe.
const TOKEN_WAKER: u64 = 1;
/// First token handed to a connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// How long a blocking loopback dial may take before it counts as a
/// failed attempt (loopback connects resolve ~instantly; a longer wait
/// would stall the event loop).
const DIAL_TIMEOUT: Duration = Duration::from_millis(100);

/// Where a node finds its peers.
///
/// `Static` is for tests that know every address up front. `File` is
/// for the multi-process demo, where children bind port 0 and the
/// parent writes the rendezvous file once all of them have reported
/// their kernel-assigned addresses: the file is re-read at **every**
/// dial, so a node spawned before the file exists simply backs off and
/// finds the address on a later attempt.
#[derive(Clone, Debug)]
pub enum AddressBook {
    /// Fixed site → address map.
    Static(BTreeMap<SiteId, SocketAddr>),
    /// Rendezvous file of `<site> <addr>` lines, re-read per dial.
    File(PathBuf),
}

impl AddressBook {
    /// Resolve a site's current address, if known.
    #[must_use]
    pub fn lookup(&self, site: SiteId) -> Option<SocketAddr> {
        match self {
            AddressBook::Static(map) => map.get(&site).copied(),
            AddressBook::File(path) => {
                let text = std::fs::read_to_string(path).ok()?;
                for line in text.lines() {
                    let mut parts = line.split_whitespace();
                    let (Some(id), Some(addr)) = (parts.next(), parts.next()) else {
                        continue;
                    };
                    if id.parse::<u32>().ok() == Some(site.raw()) {
                        if let Ok(a) = addr.parse() {
                            return Some(a);
                        }
                    }
                }
                None
            }
        }
    }
}

/// Everything needed to spawn one socket node.
pub struct NodeConfig {
    /// Cluster shape — must be identical across every node of the
    /// cluster (each node builds only its hosted engines from it, but
    /// the coordinator registers *all* participants).
    pub cluster: ClusterConfig,
    /// Sites this process hosts (site 0 = the coordinator).
    pub hosted: Vec<SiteId>,
    /// Listen address (`127.0.0.1:0` by default — read the kernel's
    /// choice back via [`SocketNode::local_addr`]).
    pub listen: SocketAddr,
    /// How to find the other nodes.
    pub peers: AddressBook,
    /// Directory for this node's WAL files. If a WAL already exists it
    /// is **reopened and replayed** (restart semantics); otherwise it
    /// is created fresh.
    pub wal_dir: PathBuf,
    /// Outbound frame fault injection (drop/delay at frame boundary).
    pub faults: WireFaults,
    /// Per-connection write-queue bound in bytes; frames past it are
    /// shed ([`WireMetrics::backpressure_drops`]).
    pub max_conn_queue_bytes: usize,
    /// Shared unix-microsecond epoch for trace timestamps, so events
    /// from different processes merge onto one time axis. `None` uses
    /// process start (single-process tests).
    pub epoch_unix_us: Option<u64>,
}

impl NodeConfig {
    /// A config with the defaults described on each field.
    #[must_use]
    pub fn new(
        cluster: ClusterConfig,
        hosted: Vec<SiteId>,
        peers: AddressBook,
        wal_dir: impl Into<PathBuf>,
    ) -> Self {
        NodeConfig {
            cluster,
            hosted,
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
            peers,
            wal_dir: wal_dir.into(),
            faults: WireFaults::none(),
            max_conn_queue_bytes: 4 * 1024 * 1024,
            epoch_unix_us: None,
        }
    }
}

/// What [`SocketNode::shutdown`] returns: the shared report shape over
/// this node's hosted sites, plus loop and transport counters.
pub struct NodeReport {
    /// Backend-independent cluster report (hosted sites only — the
    /// demo merges reports across processes).
    pub cluster: ClusterReport,
    /// Event-loop counters (same shape as the reactor's).
    pub stats: ReactorStats,
    /// Fsync-domain coalescing counters.
    pub fsync: DomainStats,
    /// Transport counters.
    pub wire: WireSnapshot,
}

// ---------------------------------------------------------------------------
// Outbound transport

/// All outbound socket state: per-destination connections, the fault
/// plan, and frames held back by a delay fault.
struct Wire {
    epoll: Epoll,
    out: BTreeMap<SiteId, OutConn>,
    /// epoll token → destination site, for event dispatch.
    out_tokens: BTreeMap<u64, SiteId>,
    next_token: u64,
    peers: AddressBook,
    faults: WireFaults,
    /// Node spawn instant: partition windows are measured from here.
    t0: Instant,
    /// Frames under an active delay fault: released (re-enqueued) once
    /// their instant passes — by then later frames have overtaken them.
    delayed: Vec<(Instant, SiteId, Vec<u8>)>,
    metrics: Arc<WireMetrics>,
    max_queue: usize,
}

impl Wire {
    /// Frame and queue one message; faults are consulted *after* the
    /// sequence number is assigned, so a dropped frame leaves a gap and
    /// a delayed frame regresses the receiver's sequence watermark.
    fn send(&mut self, now: Instant, to: SiteId, msg: WireMsg) {
        let conn = self.out.entry(to).or_insert_with(|| OutConn::new());
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let frame = encode_wire_frame(seq, &msg);
        if !self.faults.is_empty() {
            // Partition windows first: a severed link drops everything,
            // regardless of what the per-kind rules would say.
            if self
                .faults
                .partitioned(now.saturating_duration_since(self.t0), to)
            {
                self.metrics.inc(&self.metrics.fault_drops);
                return;
            }
            match self.faults.decide(to, &msg) {
                Some(FaultAction::Drop) => {
                    self.metrics.inc(&self.metrics.fault_drops);
                    return;
                }
                Some(FaultAction::Delay(d)) => {
                    self.metrics.inc(&self.metrics.fault_delays);
                    self.delayed.push((now + d, to, frame));
                    return;
                }
                None => {}
            }
        }
        self.enqueue(now, to, frame);
    }

    fn enqueue(&mut self, now: Instant, to: SiteId, frame: Vec<u8>) {
        let max = self.max_queue;
        let conn = self.out.entry(to).or_insert_with(|| OutConn::new());
        if conn.queued_bytes + frame.len() > max {
            self.metrics.inc(&self.metrics.backpressure_drops);
            return;
        }
        conn.queued_bytes += frame.len();
        conn.queue.push_back(frame);
        self.metrics.inc(&self.metrics.frames_sent);
        if conn.stream.is_none() && conn.retry_at.is_none() {
            self.dial(now, to);
        }
    }

    /// One dial attempt. Success registers the socket with epoll;
    /// failure (or an unknown address) schedules a backed-off retry.
    fn dial(&mut self, now: Instant, to: SiteId) {
        self.metrics.inc(&self.metrics.dials);
        let addr = self.peers.lookup(to);
        let conn = self.out.get_mut(&to).expect("dialing a known conn");
        let Some(addr) = addr else {
            conn.to_backoff(now);
            return;
        };
        match TcpStream::connect_timeout(&addr, DIAL_TIMEOUT) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    conn.to_backoff(now);
                    return;
                }
                let token = self.next_token;
                self.next_token += 1;
                if self
                    .epoll
                    .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                    .is_err()
                {
                    conn.to_backoff(now);
                    return;
                }
                conn.stream = Some(stream);
                conn.token = Some(token);
                conn.attempt = 0;
                conn.retry_at = None;
                conn.want_writable = false;
                self.out_tokens.insert(token, to);
                self.metrics.inc(&self.metrics.connects);
            }
            Err(_) => conn.to_backoff(now),
        }
    }

    /// Write a connection's queue; toggle `EPOLLOUT` interest to match
    /// whether bytes remain; disconnect on error.
    fn flush_conn(&mut self, now: Instant, to: SiteId) {
        let Some(conn) = self.out.get_mut(&to) else {
            return;
        };
        if conn.stream.is_none() {
            return;
        }
        match conn.try_flush(&self.metrics) {
            Ok(pending) => {
                if pending != conn.want_writable {
                    if let (Some(stream), Some(token)) = (&conn.stream, conn.token) {
                        let interest =
                            EPOLLIN | EPOLLRDHUP | if pending { EPOLLOUT } else { 0 };
                        let _ = self.epoll.modify(stream.as_raw_fd(), interest, token);
                        conn.want_writable = pending;
                    }
                }
            }
            Err(_) => self.drop_out(now, to),
        }
    }

    /// Lose an established connection: deregister, keep the queue,
    /// schedule a redial. Frames already queued retransmit on the next
    /// connection (possible duplicate delivery is safe — the protocol
    /// messages are idempotent at the engines).
    fn drop_out(&mut self, now: Instant, to: SiteId) {
        let Some(conn) = self.out.get_mut(&to) else {
            return;
        };
        if let Some(stream) = conn.stream.take() {
            let _ = self.epoll.delete(stream.as_raw_fd());
            self.metrics.inc(&self.metrics.disconnects);
        }
        if let Some(token) = conn.token.take() {
            self.out_tokens.remove(&token);
        }
        conn.to_backoff(now);
    }

    /// Re-enqueue delay-faulted frames whose hold expired.
    fn release_delayed(&mut self, now: Instant) -> bool {
        if self.delayed.is_empty() {
            return false;
        }
        let mut worked = false;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, to, frame) = self.delayed.remove(i);
                self.enqueue(now, to, frame);
                worked = true;
            } else {
                i += 1;
            }
        }
        worked
    }

    /// Redial connections whose backoff elapsed and whose queue is
    /// non-empty (an empty queue has nothing to say; the next send
    /// dials).
    fn pump_dials(&mut self, now: Instant) {
        let due: Vec<SiteId> = self
            .out
            .iter()
            .filter(|(_, c)| {
                c.stream.is_none()
                    && !c.queue.is_empty()
                    && c.retry_at.map_or(false, |t| t <= now)
            })
            .map(|(s, _)| *s)
            .collect();
        for to in due {
            if let Some(c) = self.out.get_mut(&to) {
                c.retry_at = None;
            }
            self.dial(now, to);
        }
    }

    /// Flush every established connection with queued frames.
    fn flush_all(&mut self, now: Instant) {
        let targets: Vec<SiteId> = self
            .out
            .iter()
            .filter(|(_, c)| c.stream.is_some() && !c.queue.is_empty())
            .map(|(s, _)| *s)
            .collect();
        for to in targets {
            self.flush_conn(now, to);
        }
    }

    /// Process-crash semantics: drop every connection *and* its queued
    /// frames and delayed holds — volatile state dies with the process.
    fn sever(&mut self, now: Instant) {
        let sites: Vec<SiteId> = self.out.keys().copied().collect();
        for to in sites {
            let Some(conn) = self.out.get_mut(&to) else {
                continue;
            };
            if let Some(stream) = conn.stream.take() {
                let _ = self.epoll.delete(stream.as_raw_fd());
                self.metrics.inc(&self.metrics.disconnects);
            }
            if let Some(token) = conn.token.take() {
                self.out_tokens.remove(&token);
            }
            conn.queue.clear();
            conn.queued_bytes = 0;
            conn.write_pos = 0;
            conn.want_writable = false;
            conn.attempt = 0;
            conn.retry_at = Some(now + super::conn::BACKOFF_BASE);
        }
        self.delayed.clear();
    }

    /// Any frames still owed to the network?
    fn has_pending(&self) -> bool {
        !self.delayed.is_empty() || self.out.values().any(|c| !c.queue.is_empty())
    }

    /// Earliest transport deadline: a due redial or a delayed-frame
    /// release.
    fn next_deadline(&self) -> Option<Instant> {
        let mut deadline: Option<Instant> = None;
        let mut fold = |t: Instant| {
            deadline = Some(deadline.map_or(t, |d| d.min(t)));
        };
        for c in self.out.values() {
            if c.stream.is_none() && !c.queue.is_empty() {
                if let Some(t) = c.retry_at {
                    fold(t);
                }
            }
        }
        for (t, _, _) in &self.delayed {
            fold(*t);
        }
        deadline
    }
}

// ---------------------------------------------------------------------------
// Site state (mirrors crate::reactor, minus gateways)

enum Task {
    Coord {
        engine: Coordinator<NetLog>,
    },
    /// One member of a replicated Paxos Commit coordinator: the leader
    /// at site 0 (takes client commits) or a remote acceptor.
    Paxos {
        engine: PaxosNode<NetLog>,
    },
    Part {
        engine: Participant<NetLog>,
        storage: SiteEngine<FileLog>,
        forced_intents: BTreeMap<TxnId, Vote>,
        poisoned: BTreeMap<TxnId, bool>,
    },
}

struct Host {
    site: SiteId,
    obs: Option<NetObs>,
    down_until: Option<Instant>,
    last_decision_us: Option<u64>,
    defer_sends: bool,
    deferred_sends: Vec<Message>,
    timer_ids: BTreeMap<u64, TimerId>,
    /// This site's WAL existed at spawn: run the restart procedure
    /// before the loop accepts work.
    needs_recovery: bool,
}

impl Host {
    fn is_down(&self, now: Instant) -> bool {
        self.down_until.is_some_and(|t| now < t)
    }
}

struct NodeSite {
    host: Host,
    task: Task,
}

/// Loop-wide mutable context threaded through dispatch.
struct Ctx {
    wheel: TimerWheel<(SiteId, u64, TimerPurpose)>,
    /// Envelopes for hosted sites ready this tick.
    local: VecDeque<(SiteId, Envelope)>,
    history: SharedHistory,
    delays: NetDelays,
    replies: BTreeMap<TxnId, Sender<Outcome>>,
    stats: ReactorStats,
    now: Instant,
    domain: FsyncDomain,
    /// Sites this process hosts.
    hosted: BTreeSet<SiteId>,
    wire: Wire,
}

impl Ctx {
    /// Hand an envelope to its site: the local queue when hosted, the
    /// wire otherwise.
    fn route(&mut self, to: SiteId, envelope: Envelope) {
        if self.hosted.contains(&to) {
            self.local.push_back((to, envelope));
        } else {
            self.wire_route(to, envelope);
        }
    }

    /// Encode and send an envelope to a remote site. Commit, Crash and
    /// Shutdown never cross the wire: a commit's reply channel is
    /// process-local, and crash/shutdown are *process* events in this
    /// backend (you kill a node, not a site).
    fn wire_route(&mut self, to: SiteId, envelope: Envelope) {
        let msg = match envelope {
            Envelope::Protocol(m) => WireMsg::Protocol(m),
            Envelope::ProtocolBatch(ms) => WireMsg::ProtocolBatch(ms),
            Envelope::Apply { txn, key, value } => WireMsg::Apply { to, txn, key, value },
            Envelope::SetIntent { txn, vote } => WireMsg::SetIntent { to, txn, vote },
            Envelope::Commit { .. } | Envelope::Crash { .. } | Envelope::Shutdown => return,
        };
        self.wire.send(self.now, to, msg);
    }
}

/// Execute engine actions for one site; returns storage enforcements.
fn run_site_actions(host: &mut Host, ctx: &mut Ctx, actions: Vec<Action>) -> Vec<(TxnId, Outcome)> {
    let mut enforcements = Vec::new();
    for a in actions {
        match a {
            Action::Send { to, payload } => {
                let msg = Message::new(host.site, to, payload);
                if host.defer_sends {
                    host.deferred_sends.push(msg);
                } else {
                    if let Some(obs) = &host.obs {
                        observe_send(obs, host.site, &msg);
                    }
                    ctx.route(to, Envelope::Protocol(msg));
                }
            }
            Action::SetTimer {
                token,
                purpose,
                attempt,
            } => {
                if let Some(obs) = &host.obs {
                    observe_retry(obs, host.site, purpose, attempt);
                }
                // Jittered backoff: retries from different sites (or
                // different timers on one site) spread out instead of
                // thundering in lockstep after a partition heals. The
                // salt is deterministic, so a run is reproducible.
                let salt = (u64::from(host.site.raw()) << 32) ^ token;
                let fire_at = ctx.now + ctx.delays.delay_jittered(purpose, attempt, salt);
                let id = ctx.wheel.arm(fire_at, (host.site, token, purpose));
                host.timer_ids.insert(token, id);
            }
            Action::Acta(e) => {
                if let Some(obs) = &host.obs {
                    observe_acta(obs, host.site, &e, &mut host.last_decision_us);
                }
                ctx.history.lock().push(e);
            }
            Action::Enforce { txn, outcome } => enforcements.push((txn, outcome)),
            Action::Gc {
                released_up_to,
                records_released,
            } => {
                if let Some(obs) = &host.obs {
                    observe_gc(
                        obs,
                        host.site,
                        released_up_to,
                        records_released,
                        host.last_decision_us,
                    );
                }
            }
        }
    }
    enforcements
}

/// Cancel wheel entries for engine timers retired since the last call.
fn drain_cancellations(host: &mut Host, ctx: &mut Ctx, retired: Vec<u64>) {
    for token in retired {
        if let Some(id) = host.timer_ids.remove(&token) {
            if ctx.wheel.cancel(id) {
                ctx.stats.timers_cancelled += 1;
            }
        }
    }
}

/// Externalize withheld sends after the batch forced, coalescing
/// same-destination messages into one [`Envelope::ProtocolBatch`] —
/// which on the wire becomes one `ProtocolBatch` frame, preserving the
/// reactor's envelope grouping (and therefore its trace) exactly.
fn flush_sends(host: &mut Host, ctx: &mut Ctx) {
    if host.deferred_sends.is_empty() {
        return;
    }
    let msgs = std::mem::take(&mut host.deferred_sends);
    let mut by_dest: BTreeMap<SiteId, Vec<Message>> = BTreeMap::new();
    for msg in msgs {
        if let Some(obs) = &host.obs {
            observe_send(obs, host.site, &msg);
        }
        by_dest.entry(msg.to).or_default().push(msg);
    }
    for (to, mut msgs) in by_dest {
        let envelope = if msgs.len() == 1 {
            Envelope::Protocol(msgs.pop().expect("one message"))
        } else {
            Envelope::ProtocolBatch(msgs)
        };
        ctx.route(to, envelope);
    }
}

/// Force a site's open batch as a member of the node's fsync domain,
/// then externalize its sends. The socket node always forces at the
/// end of the tick (the reactor's `commit_window = ZERO` behavior).
fn force_site_batch(host: &mut Host, log: &mut NetLog, ctx: &mut Ctx) {
    match ctx.domain.force_member(log) {
        Ok(_) => {
            for b in log.take_closed() {
                if b.occupancy >= 2 {
                    if let Some(obs) = &host.obs {
                        obs.sink.record(&ProtocolEvent::BatchCommit {
                            at_us: obs.now_us(),
                            site: host.site.raw(),
                            proto: obs.proto,
                            occupancy: b.occupancy,
                        });
                    }
                }
            }
            ctx.stats.window_forces += 1;
            flush_sends(host, ctx);
        }
        // Force failed: the sends' records never became durable, so
        // externalizing them would be unsound. Omission failure.
        Err(_) => host.deferred_sends.clear(),
    }
}

fn crash_volatile(host: &mut Host, ctx: &mut Ctx) {
    ctx.stats.timers_cancelled += ctx.wheel.cancel_where(|(s, _, _)| *s == host.site) as u64;
    host.timer_ids.clear();
    host.deferred_sends.clear();
}

// ---------------------------------------------------------------------------
// The node event loop

struct Node {
    sites: Vec<NodeSite>,
    owned: BTreeMap<SiteId, usize>,
    ctx: Ctx,
    rx: Receiver<(SiteId, Envelope)>,
    listener: TcpListener,
    /// Read side of the waker pair; the handle writes a byte to
    /// interrupt `epoll_wait` after injecting an envelope.
    waker: UnixStream,
    inbound: BTreeMap<u64, InConn>,
    events: Vec<epoll::Event>,
    running: bool,
}

impl Node {
    fn run(mut self) -> NodeReport {
        self.initial_recovery();
        while self.running {
            self.ctx.now = Instant::now();
            let mut worked = false;
            worked |= self.process_recoveries();
            worked |= self.fire_timers();
            worked |= self.ctx.wire.release_delayed(self.ctx.now);
            worked |= self.drain_envelopes();
            self.finish_turns();
            self.gc_turns();
            self.deliver();
            self.ctx.wire.pump_dials(self.ctx.now);
            self.ctx.wire.flush_all(self.ctx.now);
            if worked {
                self.ctx.stats.ticks += 1;
            }
            if !self.ctx.local.is_empty() {
                continue; // flushed sends are ready: next tick immediately
            }
            self.poll();
        }
        self.ctx.now = Instant::now();
        self.finish_turns();
        self.gc_turns();
        self.deliver();
        self.drain_outbound(Duration::from_millis(500));
        self.report()
    }

    /// Replay and restart every hosted site whose WAL predates this
    /// process (the paper's restart procedure, §4.3 of the repo's
    /// DESIGN notes): the protocol engine re-derives its state from the
    /// log, participants re-acquire outcomes for in-doubt transactions,
    /// and the data log replays committed writes.
    fn initial_recovery(&mut self) {
        self.ctx.now = Instant::now();
        for st in &mut self.sites {
            let NodeSite { host, task } = st;
            if !host.needs_recovery {
                continue;
            }
            host.needs_recovery = false;
            if let Some(obs) = &host.obs {
                observe_recover(obs, host.site);
            }
            match task {
                Task::Coord { engine } => {
                    let actions = engine.recover();
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                Task::Paxos { engine } => {
                    let actions = engine.recover();
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                Task::Part {
                    engine, storage, ..
                } => {
                    let actions = engine.recover();
                    let outcomes = protocol_outcomes(engine);
                    storage.recover(&outcomes).expect("storage recovery");
                    let enf = run_site_actions(host, &mut self.ctx, actions);
                    apply_enforcements(storage, enf);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
            }
        }
    }

    /// Sites whose injected (in-process) outage ended come back up.
    fn process_recoveries(&mut self) -> bool {
        let now = self.ctx.now;
        let mut worked = false;
        for st in &mut self.sites {
            let NodeSite { host, task } = st;
            let Some(t) = host.down_until else { continue };
            if now < t {
                continue;
            }
            host.down_until = None;
            worked = true;
            self.ctx
                .history
                .lock()
                .push(ActaEvent::Recover { site: host.site });
            if let Some(obs) = &host.obs {
                observe_recover(obs, host.site);
            }
            match task {
                Task::Coord { engine } => {
                    let actions = engine.recover();
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                Task::Paxos { engine } => {
                    let actions = engine.recover();
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                Task::Part {
                    engine, storage, ..
                } => {
                    let actions = engine.recover();
                    let outcomes = protocol_outcomes(engine);
                    storage.recover(&outcomes).expect("storage recovery");
                    let enf = run_site_actions(host, &mut self.ctx, actions);
                    apply_enforcements(storage, enf);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
            }
        }
        worked
    }

    /// Advance the wheel; feed due tokens to their engines.
    fn fire_timers(&mut self) -> bool {
        let due = self.ctx.wheel.advance(self.ctx.now);
        if due.is_empty() {
            return false;
        }
        for (id, (site, token, _purpose)) in due {
            let Some(&i) = self.owned.get(&site) else {
                continue;
            };
            let NodeSite { host, task } = &mut self.sites[i];
            host.timer_ids.retain(|_, v| *v != id);
            if host.is_down(self.ctx.now) {
                continue;
            }
            self.ctx.stats.timers_fired += 1;
            match task {
                Task::Coord { engine } => {
                    let actions = engine.on_timer(token);
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                Task::Paxos { engine } => {
                    let actions = engine.on_timer(token);
                    run_site_actions(host, &mut self.ctx, actions);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
                Task::Part {
                    engine, storage, ..
                } => {
                    let actions = engine.on_timer(token);
                    let enf = run_site_actions(host, &mut self.ctx, actions);
                    apply_enforcements(storage, enf);
                    drain_cancellations(host, &mut self.ctx, engine.take_cancelled_timers());
                }
            }
        }
        true
    }

    /// Drain the local ready queue and the client injector.
    fn drain_envelopes(&mut self) -> bool {
        let mut worked = false;
        loop {
            let next = match self.ctx.local.pop_front() {
                Some(x) => Some(x),
                None => self.rx.try_recv().ok(),
            };
            let Some((site, env)) = next else { break };
            worked = true;
            self.dispatch(site, env);
            if !self.running {
                break;
            }
        }
        worked
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self, site: SiteId, envelope: Envelope) {
        let now = self.ctx.now;
        self.ctx.stats.envelopes += 1;
        if matches!(envelope, Envelope::Shutdown) {
            self.running = false;
            return;
        }
        let Some(&i) = self.owned.get(&site) else {
            // Client command for a remote site: over the wire.
            self.ctx.wire_route(site, envelope);
            return;
        };
        let NodeSite { host, task } = &mut self.sites[i];
        let mut severed = false;
        match envelope {
            Envelope::Shutdown => unreachable!("handled above"),
            Envelope::Crash { down_for } => {
                if host.down_until.is_none() {
                    self.ctx.history.lock().push(ActaEvent::Crash { site });
                    if let Some(obs) = &host.obs {
                        observe_crash(obs, host.site);
                    }
                    match task {
                        Task::Coord { engine } => engine.crash(),
                        Task::Paxos { engine } => engine.crash(),
                        Task::Part {
                            engine, storage, ..
                        } => {
                            engine.crash();
                            storage.crash();
                        }
                    }
                    crash_volatile(host, &mut self.ctx);
                    host.down_until = Some(now + down_for);
                    // In this backend a crash is a *process* event: the
                    // kernel resets every TCP connection the process
                    // held, so sever them all (queues included) and let
                    // backed-off redials heal the topology on recovery.
                    severed = true;
                }
            }
            _ if host.is_down(now) => {} // omission: dropped
            Envelope::Apply { txn, key, value } => {
                if let Task::Part {
                    storage, poisoned, ..
                } = task
                {
                    storage.begin(txn);
                    if storage.put(txn, &key, &value).is_err() {
                        poisoned.insert(txn, true);
                    }
                }
            }
            Envelope::SetIntent { txn, vote } => {
                if let Task::Part { forced_intents, .. } = task {
                    forced_intents.insert(txn, vote);
                }
            }
            Envelope::Commit {
                txn,
                participants,
                reply,
            } => {
                // Same misuse guards as the other backends; a commit
                // lands on a classic coordinator or a Paxos leader.
                let (decided, rejected) = match task {
                    Task::Coord { engine } => (
                        engine.decided(txn),
                        participants.is_empty() || engine.in_flight(txn),
                    ),
                    Task::Paxos { engine } => (
                        engine.decided(txn),
                        participants.is_empty() || engine.in_flight(txn),
                    ),
                    Task::Part { .. } => return,
                };
                if let Some(outcome) = decided {
                    let _ = reply.send(outcome);
                } else if rejected {
                    drop(reply);
                } else {
                    self.ctx.replies.insert(txn, reply);
                    self.ctx.stats.max_inflight =
                        self.ctx.stats.max_inflight.max(self.ctx.replies.len());
                    let actions = match task {
                        Task::Coord { engine } => engine.begin_commit(txn, &participants),
                        Task::Paxos { engine } => engine.begin_commit(txn, &participants),
                        Task::Part { .. } => unreachable!("guarded above"),
                    };
                    run_site_actions(host, &mut self.ctx, actions);
                    let retired = match task {
                        Task::Coord { engine } => engine.take_cancelled_timers(),
                        Task::Paxos { engine } => engine.take_cancelled_timers(),
                        Task::Part { .. } => unreachable!("guarded above"),
                    };
                    drain_cancellations(host, &mut self.ctx, retired);
                }
            }
            Envelope::Protocol(msg) => Self::protocol_message(host, task, &mut self.ctx, msg),
            Envelope::ProtocolBatch(msgs) => {
                for msg in msgs {
                    Self::protocol_message(host, task, &mut self.ctx, msg);
                }
            }
        }
        if severed {
            self.ctx.wire.sever(now);
            self.close_all_inbound();
        }
    }

    fn protocol_message(host: &mut Host, task: &mut Task, ctx: &mut Ctx, msg: Message) {
        if let Some(obs) = &host.obs {
            observe_recv(obs, host.site, &msg);
        }
        match task {
            Task::Coord { engine } => {
                let actions = engine.on_message(msg.from, &msg.payload);
                run_site_actions(host, ctx, actions);
                drain_cancellations(host, ctx, engine.take_cancelled_timers());
            }
            Task::Paxos { engine } => {
                let actions = engine.on_message(msg.from, &msg.payload);
                run_site_actions(host, ctx, actions);
                drain_cancellations(host, ctx, engine.take_cancelled_timers());
            }
            Task::Part {
                engine,
                storage,
                forced_intents,
                poisoned,
            } => {
                if let Payload::Prepare { txn } = msg.payload {
                    let vote = decide_vote(
                        storage,
                        txn,
                        forced_intents.get(&txn).copied(),
                        poisoned.get(&txn).copied().unwrap_or(false),
                        host.defer_sends,
                    );
                    engine.set_intent(txn, vote);
                }
                let actions = engine.on_message(msg.from, &msg.payload);
                let enf = run_site_actions(host, ctx, actions);
                apply_enforcements(storage, enf);
                drain_cancellations(host, ctx, engine.take_cancelled_timers());
            }
        }
    }

    /// End-of-tick group-commit step: force every open batch, then
    /// externalize withheld sends (onto the local queue or the wire).
    fn finish_turns(&mut self) {
        for st in &mut self.sites {
            let NodeSite { host, task } = st;
            if host.defer_sends {
                if let Task::Part { storage, .. } = task {
                    storage.flush_log().expect("data log flush");
                }
            }
            let log = match task {
                Task::Coord { engine } => engine.log_mut(),
                Task::Paxos { engine } => engine.log_mut(),
                Task::Part { engine, .. } => engine.log_mut(),
            };
            if !log.batching() {
                continue;
            }
            if log.open_occupancy() == 0 {
                flush_sends(host, &mut self.ctx);
                continue;
            }
            force_site_batch(host, log, &mut self.ctx);
        }
        self.ctx.domain.end_round();
    }

    /// One log collection per tick on the hosted coordinator (if any).
    fn gc_turns(&mut self) {
        let Some(&i) = self.owned.get(&SocketNode::COORDINATOR) else {
            return;
        };
        let NodeSite { host, task } = &mut self.sites[i];
        let Task::Coord { engine } = task else { return };
        let released = engine.collect_garbage();
        if released > 0 {
            if let Some(obs) = &host.obs {
                observe_gc(
                    obs,
                    host.site,
                    acp_wal::StableLog::low_water_mark(engine.log()).0,
                    released as u64,
                    host.last_decision_us,
                );
            }
        }
    }

    /// Send decisions to waiting (process-local) clients.
    fn deliver(&mut self) {
        let Some(&i) = self.owned.get(&SocketNode::COORDINATOR) else {
            return;
        };
        let NodeSite { host, task } = &mut self.sites[i];
        let before = self.ctx.replies.len();
        match task {
            Task::Coord { engine } => {
                if host.defer_sends && engine.log().open_occupancy() > 0 {
                    return;
                }
                deliver_decisions(engine, &mut self.ctx.replies);
            }
            Task::Paxos { engine } => {
                if host.defer_sends && engine.log().open_occupancy() > 0 {
                    return;
                }
                let decided: Vec<(TxnId, Outcome)> = self
                    .ctx
                    .replies
                    .keys()
                    .filter_map(|&txn| engine.decided(txn).map(|o| (txn, o)))
                    .collect();
                for (txn, outcome) in decided {
                    if let Some(tx) = self.ctx.replies.remove(&txn) {
                        let _ = tx.send(outcome);
                    }
                }
            }
            Task::Part { .. } => return,
        }
        let delivered = (before - self.ctx.replies.len()) as u64;
        self.ctx.stats.decisions_delivered += delivered;
    }

    /// Sleep until a socket is ready or the next deadline. All loop
    /// deadlines — engine timers, injected-outage recoveries, redial
    /// backoffs, delayed-frame releases — fold into one epoll timeout.
    fn poll(&mut self) {
        let timeout = self.next_timeout();
        let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX).max(1);
        self.poll_events(ms);
    }

    fn next_timeout(&self) -> Duration {
        let now = self.ctx.now;
        let mut deadline: Option<Instant> = self.ctx.wheel.next_deadline();
        let mut fold = |t: Instant| {
            deadline = Some(deadline.map_or(t, |d| d.min(t)));
        };
        for st in &self.sites {
            if let Some(t) = st.host.down_until {
                fold(t);
            }
        }
        if let Some(t) = self.ctx.wire.next_deadline() {
            fold(t);
        }
        deadline
            .map_or(Duration::from_millis(50), |d| d.saturating_duration_since(now))
            .clamp(Duration::from_millis(1), Duration::from_millis(50))
    }

    /// One `epoll_wait` plus event dispatch.
    fn poll_events(&mut self, timeout_ms: i32) {
        if self.ctx.wire.epoll.wait(&mut self.events, timeout_ms).is_err() {
            return;
        }
        let events = std::mem::take(&mut self.events);
        self.ctx.now = Instant::now();
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => self.accept_all(),
                TOKEN_WAKER => self.drain_waker(),
                token if self.ctx.wire.out_tokens.contains_key(&token) => {
                    self.out_event(token, ev.events);
                }
                token => self.in_event(token, ev.events),
            }
        }
        self.events = events;
    }

    /// Accept every pending inbound connection.
    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.ctx.wire.next_token;
                    self.ctx.wire.next_token += 1;
                    if self
                        .ctx
                        .wire
                        .epoll
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                        .is_err()
                    {
                        continue;
                    }
                    self.inbound.insert(token, InConn::new(stream));
                    self.ctx.wire.metrics.inc(&self.ctx.wire.metrics.accepts);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Drain the waker pipe (its only job is interrupting `epoll_wait`).
    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.waker).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Readiness on an outbound connection: writable drains the queue;
    /// readable on a conn we never expect data from means EOF/reset.
    fn out_event(&mut self, token: u64, flags: u32) {
        let now = self.ctx.now;
        let Some(&to) = self.ctx.wire.out_tokens.get(&token) else {
            return;
        };
        if flags & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
            self.ctx.wire.drop_out(now, to);
            return;
        }
        if flags & EPOLLIN != 0 {
            let mut dead = false;
            if let Some(conn) = self.ctx.wire.out.get_mut(&to) {
                if let Some(stream) = conn.stream.as_mut() {
                    let mut buf = [0u8; 64];
                    match stream.read(&mut buf) {
                        Ok(0) => dead = true,
                        Ok(_) => {} // peers never write to us; ignore
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => dead = true,
                    }
                }
            }
            if dead {
                self.ctx.wire.drop_out(now, to);
                return;
            }
        }
        if flags & EPOLLOUT != 0 {
            self.ctx.wire.flush_conn(now, to);
        }
    }

    /// Readiness on an inbound connection: read bytes, reassemble
    /// frames, turn each into an envelope on the local queue. A decode
    /// error (bad magic, bad CRC) drops the whole connection — unlike
    /// the WAL's torn-tail truncation there is no "rest of the stream"
    /// worth salvaging once framing is lost; the peer's bounded queue
    /// redelivers over a fresh connection.
    fn in_event(&mut self, token: u64, _flags: u32) {
        let mut msgs: Vec<WireMsg> = Vec::new();
        let mut close = false;
        {
            let Some(conn) = self.inbound.get_mut(&token) else {
                return;
            };
            let metrics = &self.ctx.wire.metrics;
            let mut buf = [0u8; 16 * 1024];
            'read: loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        metrics.add(&metrics.bytes_recv, n as u64);
                        conn.decoder.feed(&buf[..n]);
                        loop {
                            match conn.decoder.next_frame() {
                                Ok(Some((seq, msg))) => {
                                    metrics.inc(&metrics.frames_recv);
                                    if conn.last_seq.map_or(false, |p| seq <= p) {
                                        metrics.inc(&metrics.seq_regressions);
                                    } else {
                                        conn.last_seq = Some(seq);
                                    }
                                    msgs.push(msg);
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    metrics.inc(&metrics.decode_errors);
                                    close = true;
                                    break 'read;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
        }
        for msg in msgs {
            self.handle_wire_msg(msg);
        }
        if close {
            self.close_inbound(token);
        }
    }

    /// Decode one wire message into a local envelope. Frames for sites
    /// this node does not host are dropped (stale routing — e.g. a
    /// frame that raced a topology change).
    fn handle_wire_msg(&mut self, msg: WireMsg) {
        let (to, env) = match msg {
            WireMsg::Protocol(m) => (m.to, Envelope::Protocol(m)),
            WireMsg::ProtocolBatch(ms) => {
                let Some(to) = ms.first().map(|m| m.to) else { return };
                (to, Envelope::ProtocolBatch(ms))
            }
            WireMsg::Apply {
                to,
                txn,
                key,
                value,
            } => (to, Envelope::Apply { txn, key, value }),
            WireMsg::SetIntent { to, txn, vote } => (to, Envelope::SetIntent { txn, vote }),
        };
        if self.ctx.hosted.contains(&to) {
            self.ctx.local.push_back((to, env));
        }
    }

    fn close_inbound(&mut self, token: u64) {
        if let Some(conn) = self.inbound.remove(&token) {
            let _ = self.ctx.wire.epoll.delete(conn.stream.as_raw_fd());
        }
    }

    fn close_all_inbound(&mut self) {
        let tokens: Vec<u64> = self.inbound.keys().copied().collect();
        for t in tokens {
            self.close_inbound(t);
        }
    }

    /// Best-effort flush of everything still owed to the network before
    /// shutdown (final acks and decisions), bounded by `deadline`.
    fn drain_outbound(&mut self, deadline: Duration) {
        let until = Instant::now() + deadline;
        loop {
            self.ctx.now = Instant::now();
            if self.ctx.now >= until {
                break;
            }
            self.ctx.wire.release_delayed(self.ctx.now);
            self.ctx.wire.pump_dials(self.ctx.now);
            self.ctx.wire.flush_all(self.ctx.now);
            if !self.ctx.wire.has_pending() {
                break;
            }
            self.poll_events(5);
        }
    }

    /// Collect final state into the backend-independent report shape.
    fn report(self) -> NodeReport {
        let mut sites = Vec::new();
        let mut coordinator_table_size = 0;
        let mut group_commit = GroupCommitStats::default();
        let mut logical_forces = 0;
        let mut physical_syncs = 0;
        let mut absorb = |log: &NetLog| {
            group_commit.merge(&log.group_stats());
            logical_forces += acp_wal::StableLog::stats(log).forces;
            let inner = acp_wal::StableLog::stats(log.inner());
            physical_syncs += inner.forces + inner.flushes;
        };
        for st in self.sites {
            let site = st.host.site;
            match st.task {
                Task::Coord { engine } => {
                    coordinator_table_size = engine.protocol_table_size();
                    absorb(engine.log());
                    sites.push(SiteSummary {
                        site,
                        enforced: BTreeMap::new(),
                        log_pinned: engine.log_pinned(),
                        committed: BTreeMap::new(),
                    });
                }
                Task::Paxos { engine } => {
                    if site == SocketNode::COORDINATOR {
                        coordinator_table_size = engine.protocol_table_size();
                    }
                    absorb(engine.log());
                    sites.push(SiteSummary {
                        site,
                        enforced: BTreeMap::new(),
                        log_pinned: engine.log_pinned(),
                        committed: BTreeMap::new(),
                    });
                }
                Task::Part {
                    engine, storage, ..
                } => {
                    absorb(engine.log());
                    sites.push(SiteSummary {
                        site,
                        enforced: engine.enforced_all().clone(),
                        log_pinned: engine.log_pinned(),
                        committed: storage
                            .store()
                            .iter()
                            .map(|(k, v)| (k.to_vec(), v.to_vec()))
                            .collect(),
                    });
                }
            }
        }
        let history = self.ctx.history.lock().clone();
        NodeReport {
            cluster: ClusterReport {
                history,
                coordinator_table_size,
                sites,
                group_commit,
                logical_forces,
                physical_syncs,
            },
            stats: self.ctx.stats,
            fsync: self.ctx.domain.stats(),
            wire: self.ctx.wire.metrics.snapshot(),
        }
    }
}

// ---------------------------------------------------------------------------
// Spawning and the public handle

/// Map a trace epoch in unix microseconds onto this process's
/// monotonic clock, so `at_us` timestamps from different processes
/// share one time axis (modulo clock skew — loopback-demo scale).
fn t0_from_epoch(epoch_unix_us: Option<u64>) -> Instant {
    let now = Instant::now();
    let Some(epoch) = epoch_unix_us else { return now };
    let unix_now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let since_epoch = unix_now.saturating_sub(Duration::from_micros(epoch));
    now.checked_sub(since_epoch).unwrap_or(now)
}

/// Open an existing WAL (restart) or create a fresh one (first boot).
/// Returns the log and whether it predated this process.
fn open_or_create(path: PathBuf) -> io::Result<(FileLog, bool)> {
    if path.exists() {
        Ok((FileLog::open(path).map_err(io::Error::other)?, true))
    } else {
        Ok((FileLog::create(path).map_err(io::Error::other)?, false))
    }
}

/// A running socket node: the same client API as
/// [`crate::reactor::ReactorCluster`], one background thread, real TCP
/// underneath.
pub struct SocketNode {
    tx: Sender<(SiteId, Envelope)>,
    /// Write side of the waker pair.
    waker: UnixStream,
    handle: JoinHandle<NodeReport>,
    local_addr: SocketAddr,
    next_txn: u64,
    n_sites: usize,
    metrics: Arc<WireMetrics>,
}

impl SocketNode {
    /// The coordinator's site id.
    pub const COORDINATOR: SiteId = SiteId(0);

    /// Spawn a node with tracing off and a private history.
    pub fn spawn(config: NodeConfig) -> io::Result<SocketNode> {
        Self::spawn_with(config, None, Arc::new(Mutex::new(History::new())))
    }

    /// Spawn with a trace sink (same event vocabulary and formatting as
    /// every other backend) and a caller-owned ACTA history.
    pub fn spawn_with(
        config: NodeConfig,
        sink: Option<Arc<dyn TraceSink>>,
        history: SharedHistory,
    ) -> io::Result<SocketNode> {
        assert!(
            config.cluster.gateways.is_empty(),
            "the socket backend hosts no gateways"
        );
        assert!(
            !config.hosted.is_empty(),
            "a node must host at least one site"
        );
        let NodeConfig {
            cluster: cc,
            hosted,
            listen,
            peers,
            wal_dir,
            faults,
            max_conn_queue_bytes,
            epoch_unix_us,
        } = config;
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (waker_node, waker_handle) = UnixStream::pair()?;
        waker_node.set_nonblocking(true)?;
        waker_handle.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(waker_node.as_raw_fd(), EPOLLIN, TOKEN_WAKER)?;
        let t0 = t0_from_epoch(epoch_unix_us);
        let metrics = Arc::new(WireMetrics::new());

        let obs_for = |proto: ProtoLabel| {
            sink.as_ref().map(|s| NetObs {
                sink: Arc::clone(s),
                t0,
                proto,
            })
        };
        let wrap = |log: FileLog| {
            if cc.group_commit {
                GroupCommitLog::deferred(log)
            } else {
                GroupCommitLog::passthrough(log)
            }
        };
        let host_for = |site: SiteId, obs: Option<NetObs>, recovering: bool| Host {
            site,
            obs,
            down_until: None,
            last_decision_us: None,
            defer_sends: cc.group_commit,
            deferred_sends: Vec::new(),
            timer_ids: BTreeMap::new(),
            needs_recovery: recovering,
        };

        let mut sites = Vec::new();
        let mut owned = BTreeMap::new();
        let paxos_sites = cc.paxos_acceptor_sites();
        for &site in &hosted {
            if paxos_sites.contains(&site) {
                // A member of the replicated coordinator: the leader at
                // site 0 or a dedicated remote acceptor. Each keeps its
                // own WAL, so a killed process recovers from its log.
                let (log, existed) =
                    open_or_create(wal_dir.join(format!("paxos-{}.wal", site.raw())))?;
                let mut engine =
                    PaxosNode::new(site, PaxosConfig::new(paxos_sites.clone()), wrap(log));
                engine.set_track_cancellations(true);
                owned.insert(site, sites.len());
                sites.push(NodeSite {
                    host: host_for(site, obs_for(ProtoLabel::Paxos), existed),
                    task: Task::Paxos { engine },
                });
            } else if site == Self::COORDINATOR {
                let (log, existed) = open_or_create(wal_dir.join("coord.wal"))?;
                let mut engine = Coordinator::new(Self::COORDINATOR, cc.kind, wrap(log));
                for (i, &p) in cc.participant_protocols.iter().enumerate() {
                    engine.register_site(SiteId::new(i as u32 + 1), p);
                }
                engine.set_track_cancellations(true);
                engine.auto_gc = false;
                owned.insert(site, sites.len());
                sites.push(NodeSite {
                    host: host_for(site, obs_for(ProtoLabel::of_coordinator(cc.kind)), existed),
                    task: Task::Coord { engine },
                });
            } else {
                let idx = site.raw() as usize - 1;
                let proto = *cc
                    .participant_protocols
                    .get(idx)
                    .unwrap_or_else(|| panic!("hosted site {} not in cluster", site.raw()));
                let (log, existed) =
                    open_or_create(wal_dir.join(format!("part-{}.wal", site.raw())))?;
                let mut engine = Participant::new(site, proto, wrap(log));
                engine.set_track_cancellations(true);
                let (data, _) = open_or_create(wal_dir.join(format!("data-{}.wal", site.raw())))?;
                let storage = SiteEngine::new(data);
                owned.insert(site, sites.len());
                sites.push(NodeSite {
                    host: host_for(site, obs_for(ProtoLabel::of_participant(proto)), existed),
                    task: Task::Part {
                        engine,
                        storage,
                        forced_intents: BTreeMap::new(),
                        poisoned: BTreeMap::new(),
                    },
                });
            }
        }

        let (tx, rx) = unbounded();
        let n_sites = cc.participant_protocols.len() + 1;
        let node = Node {
            sites,
            owned,
            ctx: Ctx {
                wheel: TimerWheel::new(t0),
                local: VecDeque::new(),
                history,
                delays: cc.delays,
                replies: BTreeMap::new(),
                stats: ReactorStats::default(),
                now: t0,
                domain: FsyncDomain::new(),
                hosted: hosted.iter().copied().collect(),
                wire: Wire {
                    epoll,
                    out: BTreeMap::new(),
                    out_tokens: BTreeMap::new(),
                    next_token: TOKEN_FIRST_CONN,
                    peers,
                    faults,
                    t0,
                    delayed: Vec::new(),
                    metrics: Arc::clone(&metrics),
                    max_queue: max_conn_queue_bytes,
                },
            },
            rx,
            listener,
            waker: waker_node,
            inbound: BTreeMap::new(),
            events: Vec::with_capacity(64),
            running: true,
        };
        let handle = std::thread::Builder::new()
            .name("acp-socket-node".into())
            .spawn(move || node.run())?;
        Ok(SocketNode {
            tx,
            waker: waker_handle,
            handle,
            local_addr,
            next_txn: 1,
            n_sites,
            metrics,
        })
    }

    /// The address the kernel bound the listener to (rendezvous info
    /// when the config asked for port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live snapshot of this node's transport counters.
    #[must_use]
    pub fn wire_metrics(&self) -> WireSnapshot {
        self.metrics.snapshot()
    }

    /// Allocate a fresh transaction id.
    pub fn next_txn(&mut self) -> TxnId {
        let t = TxnId::new(self.next_txn);
        self.next_txn += 1;
        t
    }

    /// Jump the allocator (restart demos give each coordinator
    /// incarnation a disjoint id range).
    pub fn set_next_txn(&mut self, next: u64) {
        self.next_txn = next;
    }

    /// All participant site ids of the cluster (hosted here or not).
    #[must_use]
    pub fn participants(&self) -> Vec<SiteId> {
        (1..self.n_sites as u32).map(SiteId::new).collect()
    }

    fn send(&self, site: SiteId, envelope: Envelope) {
        let _ = self.tx.send((site, envelope));
        let _ = (&self.waker).write(&[1]);
    }

    /// Write `key := value` under `txn` at `site` (routed over the wire
    /// when `site` is remote).
    pub fn apply(&self, site: SiteId, txn: TxnId, key: &[u8], value: &[u8]) {
        self.send(
            site,
            Envelope::Apply {
                txn,
                key: key.to_vec(),
                value: value.to_vec(),
            },
        );
    }

    /// Override the vote `site` will cast for `txn`.
    pub fn set_intent(&self, site: SiteId, txn: TxnId, vote: Vote) {
        self.send(site, Envelope::SetIntent { txn, vote });
    }

    /// Crash a hosted site for `down_for` (in-process fault injection;
    /// the multi-process demo uses `kill -9` instead).
    pub fn crash(&self, site: SiteId, down_for: Duration) {
        self.send(site, Envelope::Crash { down_for });
    }

    /// Commit `txn` across `participants`; wait for the decision. Only
    /// meaningful on the node hosting the coordinator.
    pub fn commit(&self, txn: TxnId, participants: &[SiteId]) -> Option<Outcome> {
        self.commit_async(txn, participants)
            .recv_timeout(Duration::from_secs(20))
            .ok()
    }

    /// Start commit processing; the returned channel yields the
    /// decision once durable.
    #[must_use]
    pub fn commit_async(&self, txn: TxnId, participants: &[SiteId]) -> Receiver<Outcome> {
        let (tx, rx) = bounded(1);
        self.send(
            Self::COORDINATOR,
            Envelope::Commit {
                txn,
                participants: participants.to_vec(),
                reply: tx,
            },
        );
        rx
    }

    /// Let in-flight work settle for `d`.
    pub fn settle(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Stop the node (after a best-effort outbound drain) and collect
    /// its final state.
    #[must_use]
    pub fn shutdown(self) -> NodeReport {
        self.send(Self::COORDINATOR, Envelope::Shutdown);
        self.handle.join().expect("socket node thread")
    }
}
