//! Frame-level fault injection for the socket runtime.
//!
//! TCP gives the engines a FIFO, reliable byte stream — exactly the
//! link assumption under which footnote 5's no-memory ack optimization
//! is safe. To reproduce the paper's *violation* over real sockets the
//! harness must break that assumption at the frame boundary: drop a
//! frame (omission), or hold it back and release it after its
//! successors (reordering). Rules run on the **sender** side, after the
//! frame is built — so a delayed frame carries the sequence number of
//! its logical send time, and the receiver observes a genuine sequence
//! regression when it finally lands.
//!
//! This mirrors [`acp_wal::fault::FaultyLog`]'s role one layer down:
//! the WAL's fault layer corrupts the *durable* image to exercise
//! recovery; this one perturbs the *in-flight* image to exercise the
//! protocols' link-failure tolerance.

use super::frame::WireMsg;
use acp_types::SiteId;
use std::time::Duration;

/// What to do with a matched frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Discard it (omission failure; the sequence number is still
    /// consumed, so the receiver sees a gap).
    Drop,
    /// Hold it back for this long, then enqueue it — frames built later
    /// overtake it (non-FIFO delivery).
    Delay(Duration),
}

/// One match-and-act rule. Fields left `None` match anything.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Only frames to this destination site.
    pub to: Option<SiteId>,
    /// Only frames of this kind ([`WireMsg::kind_name`]:
    /// `"prepare"`, `"vote"`, `"decision"`, `"ack"`, `"inquiry"`,
    /// `"inquiry-response"`, `"batch"`, `"apply"`, `"set-intent"`).
    pub kind: Option<&'static str>,
    /// Let this many matching frames through untouched first.
    pub skip: u32,
    /// Then act on this many ( `u32::MAX` ≈ unlimited); after that the
    /// rule is spent and later rules get a look.
    pub count: u32,
    /// The action for matched frames.
    pub action: FaultAction,
}

impl FaultRule {
    /// Drop every frame of `kind` bound for `to`.
    #[must_use]
    pub fn drop_all(to: SiteId, kind: &'static str) -> Self {
        FaultRule {
            to: Some(to),
            kind: Some(kind),
            skip: 0,
            count: u32::MAX,
            action: FaultAction::Drop,
        }
    }

    /// Delay every frame of `kind` bound for `to` by `by`.
    #[must_use]
    pub fn delay_all(to: SiteId, kind: &'static str, by: Duration) -> Self {
        FaultRule {
            to: Some(to),
            kind: Some(kind),
            skip: 0,
            count: u32::MAX,
            action: FaultAction::Delay(by),
        }
    }

    fn matches(&self, to: SiteId, msg: &WireMsg) -> bool {
        self.to.map_or(true, |t| t == to) && self.kind.map_or(true, |k| k == msg.kind_name())
    }
}

/// A time-windowed link cut: outbound frames to `peer` sent while
/// `from <= elapsed < until` (elapsed measured from node spawn) are
/// dropped, then the link heals on its own. One window severs only the
/// *outbound* half — a node controls only what it sends — so a
/// bidirectional partition is the same window installed on **both**
/// endpoints' [`WireFaults`]. Frames queued on a connection before the
/// window opens still flush (their fate was decided at send time),
/// which matches the simulator's partition semantics.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// The peer to cut off.
    pub peer: SiteId,
    /// Window start, measured from node spawn.
    pub from: Duration,
    /// Window end (exclusive); the link heals here.
    pub until: Duration,
}

/// An ordered rule list consulted for every outbound frame. First rule
/// that matches (and is not spent) decides; no match means deliver.
#[derive(Clone, Debug, Default)]
pub struct WireFaults {
    rules: Vec<FaultRule>,
    partitions: Vec<Partition>,
}

impl WireFaults {
    /// A fault-free wire.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Append a rule (builder style).
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Cut the link to `peer` for `[from, until)` since node spawn
    /// (builder style). Install the mirrored window on the peer's node
    /// to sever both directions.
    #[must_use]
    pub fn partition(mut self, peer: SiteId, from: Duration, until: Duration) -> Self {
        assert!(from < until, "empty partition window");
        self.partitions.push(Partition { peer, from, until });
        self
    }

    /// Are any rules installed? (The hot path skips the scan entirely
    /// on a clean wire.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.partitions.is_empty()
    }

    /// Is the outbound link to `to` inside an active partition window
    /// at `elapsed` since node spawn?
    #[must_use]
    pub fn partitioned(&self, elapsed: Duration, to: SiteId) -> bool {
        self.partitions
            .iter()
            .any(|p| p.peer == to && p.from <= elapsed && elapsed < p.until)
    }

    /// Decide the fate of one outbound frame. `None` = deliver
    /// normally. Mutates rule budgets (skip/count), so call exactly
    /// once per frame.
    pub fn decide(&mut self, to: SiteId, msg: &WireMsg) -> Option<FaultAction> {
        for rule in &mut self.rules {
            if !rule.matches(to, msg) {
                continue;
            }
            if rule.skip > 0 {
                rule.skip -= 1;
                return None;
            }
            if rule.count == 0 {
                continue; // spent: later rules may still apply
            }
            if rule.count != u32::MAX {
                rule.count -= 1;
            }
            return Some(rule.action);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::{Message, Payload, TxnId};

    fn prepare_to(to: u32) -> WireMsg {
        WireMsg::Protocol(Message::new(
            SiteId::new(0),
            SiteId::new(to),
            Payload::Prepare { txn: TxnId::new(1) },
        ))
    }

    #[test]
    fn skip_then_count_then_spent() {
        let mut faults = WireFaults::none().rule(FaultRule {
            to: Some(SiteId::new(2)),
            kind: Some("prepare"),
            skip: 1,
            count: 2,
            action: FaultAction::Drop,
        });
        let msg = prepare_to(2);
        assert_eq!(faults.decide(SiteId::new(2), &msg), None); // skipped
        assert_eq!(faults.decide(SiteId::new(2), &msg), Some(FaultAction::Drop));
        assert_eq!(faults.decide(SiteId::new(2), &msg), Some(FaultAction::Drop));
        assert_eq!(faults.decide(SiteId::new(2), &msg), None); // spent
        // Other destinations never matched.
        assert_eq!(faults.decide(SiteId::new(3), &prepare_to(3)), None);
    }

    #[test]
    fn partition_window_severs_then_heals() {
        let faults = WireFaults::none().partition(
            SiteId::new(2),
            Duration::from_millis(10),
            Duration::from_millis(20),
        );
        assert!(!faults.is_empty());
        assert!(!faults.partitioned(Duration::from_millis(9), SiteId::new(2)));
        assert!(faults.partitioned(Duration::from_millis(10), SiteId::new(2)));
        assert!(faults.partitioned(Duration::from_millis(19), SiteId::new(2)));
        assert!(!faults.partitioned(Duration::from_millis(20), SiteId::new(2)));
        // Other peers are unaffected throughout.
        assert!(!faults.partitioned(Duration::from_millis(15), SiteId::new(3)));
    }

    #[test]
    fn first_matching_rule_wins_and_spent_rules_yield() {
        let mut faults = WireFaults::none()
            .rule(FaultRule {
                to: None,
                kind: Some("ack"),
                skip: 0,
                count: 1,
                action: FaultAction::Drop,
            })
            .rule(FaultRule {
                to: None,
                kind: None,
                skip: 0,
                count: u32::MAX,
                action: FaultAction::Delay(Duration::from_millis(5)),
            });
        let ack = WireMsg::Protocol(Message::new(
            SiteId::new(1),
            SiteId::new(0),
            Payload::Ack { txn: TxnId::new(1) },
        ));
        assert_eq!(faults.decide(SiteId::new(0), &ack), Some(FaultAction::Drop));
        // Rule 1 spent → falls through to the catch-all delay.
        assert_eq!(
            faults.decide(SiteId::new(0), &ack),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
    }
}
