//! Connection lifecycle for the socket runtime.
//!
//! Connections are **unidirectional**: a node keeps one outbound
//! [`OutConn`] per remote site it sends to, and accepts any number of
//! inbound [`InConn`]s it only reads from. This keeps the state machine
//! small (no connection-identity negotiation — the frame's `Message`
//! already says who is talking) and makes reconnection trivially safe:
//! the dialing side owns the retry schedule, the accepting side just
//! accepts again.
//!
//! An `OutConn` is a three-state machine:
//!
//! ```text
//!            dial ok                      write/EOF error
//! Idle ───────────────▶ Established ─────────────────────┐
//!   ▲                                                    ▼
//!   │            backoff elapsed, queue non-empty     Backoff
//!   └───────────────────────────◀────────────────────────┘
//!                         (redial)
//! ```
//!
//! with bounded exponential backoff — `min(base · 2^attempt, 5 s)`,
//! the same shape as [`crate::actor::NetDelays::delay`] so transport
//! retries and protocol retries back off alike. The write queue is
//! bounded in **bytes**; a frame that would overflow it is dropped and
//! counted ([`acp_obs::WireMetrics::backpressure_drops`]) — an
//! omission failure, exactly the failure model the protocols already
//! tolerate. The queue survives reconnects, so frames enqueued while a
//! peer is down (or mid-crash) retransmit once the dial lands; a frame
//! fully written just before a connection died may be sent twice, which
//! is safe — every protocol message is idempotent at the engines
//! (duplicate-delivery tolerance is a paper requirement, §2).

use super::frame::FrameDecoder;
use acp_obs::WireMetrics;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// First retry delay after a failed dial or lost connection.
pub(crate) const BACKOFF_BASE: Duration = Duration::from_millis(25);

/// Backoff ceiling — matches the protocol-timer cap in
/// [`crate::actor::NetDelays`].
pub(crate) const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// Doublings beyond which the backoff stops growing (the cap bites
/// long before this; mirrors the actor constant).
const BACKOFF_SHIFT_CAP: u32 = 16;

/// Bounded exponential backoff for dial attempt `attempt` (0-based).
#[must_use]
pub(crate) fn backoff(attempt: u32) -> Duration {
    BACKOFF_BASE
        .saturating_mul(1u32 << attempt.min(BACKOFF_SHIFT_CAP).min(31))
        .min(MAX_BACKOFF)
}

/// One outbound connection: the only sender-side state for a remote
/// site.
pub(crate) struct OutConn {
    /// Established socket, when any.
    pub stream: Option<TcpStream>,
    /// epoll token of `stream`.
    pub token: Option<u64>,
    /// Encoded frames awaiting the socket, oldest first.
    pub queue: VecDeque<Vec<u8>>,
    /// Total bytes across `queue` (bounds enforcement).
    pub queued_bytes: usize,
    /// Bytes of `queue[0]` already written.
    pub write_pos: usize,
    /// Consecutive failed dials (resets on an established connection).
    pub attempt: u32,
    /// Do not redial before this instant (`None` = may dial now).
    pub retry_at: Option<Instant>,
    /// Next frame sequence number (assigned at logical send time).
    pub next_seq: u64,
    /// Whether the epoll registration currently includes `EPOLLOUT`.
    pub want_writable: bool,
}

impl OutConn {
    pub(crate) fn new() -> Self {
        OutConn {
            stream: None,
            token: None,
            queue: VecDeque::new(),
            queued_bytes: 0,
            write_pos: 0,
            attempt: 0,
            retry_at: None,
            next_seq: 0,
            want_writable: false,
        }
    }

    /// Write queued frames until the queue empties or the socket says
    /// `WouldBlock`. Returns `Ok(true)` when bytes remain (the caller
    /// should arm `EPOLLOUT`), `Ok(false)` when the queue drained, and
    /// `Err` when the connection is dead (the caller disconnects it).
    pub(crate) fn try_flush(&mut self, metrics: &WireMetrics) -> io::Result<bool> {
        let Some(stream) = self.stream.as_mut() else {
            return Ok(!self.queue.is_empty());
        };
        while let Some(front) = self.queue.front() {
            match stream.write(&front[self.write_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    metrics.add(&metrics.bytes_sent, n as u64);
                    self.write_pos += n;
                    if self.write_pos == front.len() {
                        self.queued_bytes -= front.len();
                        self.queue.pop_front();
                        self.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(!self.queue.is_empty())
    }

    /// Tear down the socket (dial failure or write error): keep the
    /// queue, restart the current frame from byte 0, schedule the next
    /// dial with backoff.
    pub(crate) fn to_backoff(&mut self, now: Instant) {
        self.stream = None;
        self.token = None;
        self.write_pos = 0;
        self.want_writable = false;
        self.retry_at = Some(now + backoff(self.attempt));
        self.attempt = self.attempt.saturating_add(1);
    }
}

/// One accepted inbound connection: read-only, with its own framing
/// state and reorder detector.
pub(crate) struct InConn {
    /// The socket.
    pub stream: TcpStream,
    /// Streaming frame reassembly.
    pub decoder: FrameDecoder,
    /// Highest `seq` observed (reorder detection — never enforcement).
    pub last_seq: Option<u64>,
}

impl InConn {
    pub(crate) fn new(stream: TcpStream) -> Self {
        InConn {
            stream,
            decoder: FrameDecoder::new(),
            last_seq: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff(0), Duration::from_millis(25));
        assert_eq!(backoff(1), Duration::from_millis(50));
        assert_eq!(backoff(4), Duration::from_millis(400));
        assert_eq!(backoff(10), MAX_BACKOFF);
        assert_eq!(backoff(u32::MAX), MAX_BACKOFF);
    }
}
