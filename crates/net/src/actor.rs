//! Site actors: the thread bodies for coordinator and participant
//! sites.

use crate::envelope::Envelope;
use acp_acta::{ActaEvent, History};
use acp_core::{Action, Coordinator, GatewayParticipant, Participant, TimerPurpose};
use acp_engine::{RecoveredOutcome, SiteEngine};
use acp_obs::{ProtoLabel, ProtocolEvent, TraceSink};
use acp_types::{Message, Outcome, Payload, SiteId, TxnId, Vote};
use acp_wal::scan::analyze;
use acp_wal::{FileLog, StableLog};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timer delays for the threaded runtime (real durations).
#[derive(Clone, Copy, Debug)]
pub struct NetDelays {
    /// Coordinator vote-collection timeout.
    pub vote_timeout: Duration,
    /// Decision re-send interval.
    pub ack_resend: Duration,
    /// In-doubt inquiry interval.
    pub inquiry_retry: Duration,
    /// Gateway legacy-apply retry interval.
    pub apply_retry: Duration,
}

impl Default for NetDelays {
    fn default() -> Self {
        NetDelays {
            vote_timeout: Duration::from_millis(400),
            ack_resend: Duration::from_millis(100),
            inquiry_retry: Duration::from_millis(120),
            apply_retry: Duration::from_millis(100),
        }
    }
}

/// Doublings beyond which the backoff stops growing (mirrors the
/// simulator harness; `MAX_BACKOFF` caps the result long before this).
const BACKOFF_SHIFT_CAP: u32 = 16;

/// Upper bound on any backed-off delay in the threaded runtime.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

impl NetDelays {
    fn delay(&self, p: TimerPurpose, attempt: u32) -> Duration {
        let base = match p {
            TimerPurpose::VoteTimeout => self.vote_timeout,
            TimerPurpose::AckResend => self.ack_resend,
            TimerPurpose::InquiryRetry => self.inquiry_retry,
            TimerPurpose::ApplyRetry => self.apply_retry,
        };
        // Bounded exponential backoff: min(base << attempt, MAX_BACKOFF).
        base.saturating_mul(1u32 << attempt.min(BACKOFF_SHIFT_CAP).min(31))
            .min(MAX_BACKOFF)
            .max(base)
    }
}

/// Routing table shared by every actor.
pub type Routes = Arc<BTreeMap<SiteId, Sender<Envelope>>>;

/// Observability plumbing for the threaded runtime: a shared trace sink
/// plus the cluster's epoch, so wall-clock instants become trace
/// microseconds, and the protocol label events are attributed to.
#[derive(Clone)]
pub struct NetObs {
    /// Where the site's protocol events go.
    pub sink: Arc<dyn TraceSink>,
    /// The run's `t = 0` (cluster spawn time).
    pub t0: Instant,
    /// Label for events emitted by this site.
    pub proto: ProtoLabel,
}

impl NetObs {
    fn now_us(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Shared, mutex-guarded global history (the actors append their ACTA
/// events; checkers read it after shutdown).
pub type SharedHistory = Arc<Mutex<History>>;

/// What a participant thread returns at shutdown.
pub struct ParticipantFinal {
    /// The protocol engine.
    pub engine: Participant<FileLog>,
    /// The storage engine.
    pub storage: SiteEngine<FileLog>,
}

/// What the coordinator thread returns at shutdown.
pub struct CoordinatorFinal {
    /// The protocol engine.
    pub engine: Coordinator<FileLog>,
}

/// What a gateway thread returns at shutdown.
pub struct GatewayFinal {
    /// The gateway engine (owning the legacy store).
    pub engine: GatewayParticipant<FileLog>,
}

/// Run a gateway site fronting a legacy system (see
/// `acp_core::gateway`). Crashing the site loses the gateway's volatile
/// state but not the legacy system's data — they are separate failure
/// domains.
#[allow(clippy::needless_pass_by_value)]
pub fn run_gateway(
    site: SiteId,
    mut engine: GatewayParticipant<FileLog>,
    rx: Receiver<Envelope>,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    obs: Option<NetObs>,
) -> GatewayFinal {
    let mut ctx = ActorCtx::new(site, routes, history, delays, obs);
    loop {
        let now = Instant::now();
        if let Some(t) = ctx.down_until {
            if now >= t {
                ctx.down_until = None;
                ctx.history.lock().push(ActaEvent::Recover { site });
                ctx.observe_recover();
                let actions = engine.recover();
                ctx.run_actions(actions);
            }
        }
        if ctx.down_until.is_none() {
            for token in ctx.due_timers(now) {
                let actions = engine.on_timer(token);
                ctx.run_actions(actions);
            }
        }
        match rx.recv_timeout(ctx.next_timeout(now)) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(envelope) => {
                let now = Instant::now();
                match envelope {
                    Envelope::Shutdown => break,
                    Envelope::Crash { down_for } => {
                        if ctx.down_until.is_none() {
                            ctx.history.lock().push(ActaEvent::Crash { site });
                            ctx.observe_crash();
                            engine.crash();
                            ctx.crash_volatile();
                            ctx.down_until = Some(now + down_for);
                        }
                    }
                    _ if ctx.is_down(now) => {}
                    Envelope::Apply { txn, key, value } => {
                        engine.stage_write(txn, &key, &value);
                    }
                    Envelope::Protocol(msg) => {
                        ctx.observe_recv(&msg);
                        let actions = engine.on_message(msg.from, &msg.payload);
                        ctx.run_actions(actions);
                    }
                    Envelope::SetIntent { .. } | Envelope::Commit { .. } => {}
                }
            }
        }
    }
    GatewayFinal { engine }
}

/// Common actor plumbing: timers, routing, history.
struct ActorCtx {
    site: SiteId,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    /// (deadline, harness-token) min-heap.
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    /// harness-token → engine token + purpose.
    timer_map: BTreeMap<u64, (u64, TimerPurpose)>,
    next_token: u64,
    down_until: Option<Instant>,
    /// Observability sink + clock (None = tracing disabled).
    obs: Option<NetObs>,
    /// When this site last decided, in trace microseconds (GC latency).
    last_decision_us: Option<u64>,
}

impl ActorCtx {
    fn new(
        site: SiteId,
        routes: Routes,
        history: SharedHistory,
        delays: NetDelays,
        obs: Option<NetObs>,
    ) -> Self {
        ActorCtx {
            site,
            routes,
            history,
            delays,
            timers: BinaryHeap::new(),
            timer_map: BTreeMap::new(),
            next_token: 0,
            down_until: None,
            obs,
            last_decision_us: None,
        }
    }

    fn is_down(&self, now: Instant) -> bool {
        self.down_until.is_some_and(|t| now < t)
    }

    fn route(&self, msg: Message) {
        if let Some(tx) = self.routes.get(&msg.to) {
            // A full/closed mailbox is an omission failure — exactly the
            // failure model the protocols tolerate.
            let _ = tx.send(Envelope::Protocol(msg));
        }
    }

    /// Execute engine actions; returns enforcements for the storage
    /// layer (participants apply them; the coordinator has none).
    fn run_actions(&mut self, actions: Vec<Action>) -> Vec<(TxnId, Outcome)> {
        let mut enforcements = Vec::new();
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    if let Some(obs) = &self.obs {
                        let at_us = obs.now_us();
                        if let Payload::Vote { txn, vote } = &payload {
                            obs.sink.record(&ProtocolEvent::VoteCast {
                                at_us,
                                site: self.site.raw(),
                                proto: obs.proto,
                                vote: vote_name(*vote),
                                txn: Some(txn.raw()),
                            });
                        }
                        obs.sink.record(&ProtocolEvent::MsgSend {
                            at_us,
                            site: self.site.raw(),
                            proto: obs.proto,
                            to: to.raw(),
                            kind: payload.kind_name(),
                            txn: Some(payload.txn().raw()),
                        });
                    }
                    self.route(Message::new(self.site, to, payload));
                }
                Action::SetTimer {
                    token,
                    purpose,
                    attempt,
                } => {
                    if attempt > 0 {
                        if let Some(obs) = &self.obs {
                            obs.sink.record(&ProtocolEvent::RetryScheduled {
                                at_us: obs.now_us(),
                                site: self.site.raw(),
                                proto: obs.proto,
                                purpose: purpose.name(),
                                attempt,
                                txn: None,
                            });
                        }
                    }
                    let harness = self.next_token;
                    self.next_token += 1;
                    self.timer_map.insert(harness, (token, purpose));
                    self.timers.push(Reverse((
                        Instant::now() + self.delays.delay(purpose, attempt),
                        harness,
                    )));
                }
                Action::Acta(e) => {
                    self.observe_acta(&e);
                    self.history.lock().push(e);
                }
                Action::Enforce { txn, outcome } => enforcements.push((txn, outcome)),
                Action::Gc {
                    released_up_to,
                    records_released,
                } => {
                    if let Some(obs) = &self.obs {
                        let at_us = obs.now_us();
                        obs.sink.record(&ProtocolEvent::LogGc {
                            at_us,
                            site: self.site.raw(),
                            proto: obs.proto,
                            released_up_to,
                            records_released,
                            since_decision_us: self
                                .last_decision_us
                                .map(|d| at_us.saturating_sub(d)),
                        });
                    }
                }
            }
        }
        enforcements
    }

    /// Mirror an ACTA event into the typed protocol-event stream.
    fn observe_acta(&mut self, event: &ActaEvent) {
        let Some(obs) = &self.obs else { return };
        let at_us = obs.now_us();
        let site = self.site.raw();
        let proto = obs.proto;
        match event {
            ActaEvent::LogWrite {
                txn, kind, forced, ..
            } => {
                let ev = if *forced {
                    ProtocolEvent::ForceWrite {
                        at_us,
                        site,
                        proto,
                        record: kind,
                        txn: Some(txn.raw()),
                    }
                } else {
                    ProtocolEvent::NonForcedWrite {
                        at_us,
                        site,
                        proto,
                        record: kind,
                        txn: Some(txn.raw()),
                    }
                };
                obs.sink.record(&ev);
            }
            ActaEvent::Decide { txn, outcome, .. } => {
                obs.sink.record(&ProtocolEvent::DecisionReached {
                    at_us,
                    site,
                    proto,
                    outcome: match outcome {
                        Outcome::Commit => "commit",
                        Outcome::Abort => "abort",
                    },
                    txn: Some(txn.raw()),
                });
                self.last_decision_us = Some(at_us);
            }
            ActaEvent::Inquire { txn, protocol, .. } => {
                obs.sink.record(&ProtocolEvent::RecoveryStep {
                    at_us,
                    site,
                    proto,
                    detail: format!("inquire about {txn} ({protocol})"),
                });
            }
            ActaEvent::Respond {
                txn,
                outcome,
                by_presumption,
                ..
            } => {
                let how = if *by_presumption { " by presumption" } else { "" };
                obs.sink.record(&ProtocolEvent::RecoveryStep {
                    at_us,
                    site,
                    proto,
                    detail: format!("answer inquiry {txn}: {outcome}{how}"),
                });
            }
            _ => {}
        }
    }

    /// Note receipt of a protocol message in the event stream.
    fn observe_recv(&self, msg: &Message) {
        if let Some(obs) = &self.obs {
            obs.sink.record(&ProtocolEvent::MsgRecv {
                at_us: obs.now_us(),
                site: self.site.raw(),
                proto: obs.proto,
                from: msg.from.raw(),
                kind: msg.payload.kind_name(),
                txn: Some(msg.payload.txn().raw()),
            });
        }
    }

    /// Note a crash in the event stream.
    fn observe_crash(&self) {
        if let Some(obs) = &self.obs {
            obs.sink.record(&ProtocolEvent::CrashObserved {
                at_us: obs.now_us(),
                site: self.site.raw(),
                proto: obs.proto,
            });
        }
    }

    /// Note the start of recovery in the event stream.
    fn observe_recover(&self) {
        if let Some(obs) = &self.obs {
            obs.sink.record(&ProtocolEvent::RecoveryStep {
                at_us: obs.now_us(),
                site: self.site.raw(),
                proto: obs.proto,
                detail: "site back up; restart procedure begins".to_string(),
            });
        }
    }

    /// Next wake-up interval for `recv_timeout`.
    fn next_timeout(&self, now: Instant) -> Duration {
        let timer_deadline = self.timers.peek().map(|Reverse((t, _))| *t);
        let recover_deadline = self.down_until;
        match (timer_deadline, recover_deadline) {
            (Some(a), Some(b)) => a.min(b).saturating_duration_since(now),
            (Some(a), None) => a.saturating_duration_since(now),
            (None, Some(b)) => b.saturating_duration_since(now),
            (None, None) => Duration::from_millis(50),
        }
        .max(Duration::from_millis(1))
    }

    /// Pop engine-timer tokens whose deadline passed. Timers are
    /// volatile: anything armed before a crash was cleared with the map.
    fn due_timers(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while let Some(Reverse((deadline, harness))) = self.timers.peek().copied() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            if let Some((engine_token, _)) = self.timer_map.remove(&harness) {
                due.push(engine_token);
            }
        }
        due
    }

    fn crash_volatile(&mut self) {
        self.timer_map.clear();
        self.timers.clear();
    }
}

/// Run a participant site: protocol engine + storage engine, both over
/// file-backed logs. Returns the final engines at shutdown.
#[allow(clippy::needless_pass_by_value)]
pub fn run_participant(
    site: SiteId,
    mut engine: Participant<FileLog>,
    mut storage: SiteEngine<FileLog>,
    rx: Receiver<Envelope>,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    obs: Option<NetObs>,
) -> ParticipantFinal {
    let mut ctx = ActorCtx::new(site, routes, history, delays, obs);
    // Explicit vote intents from SetIntent envelopes.
    let mut forced_intents: BTreeMap<TxnId, Vote> = BTreeMap::new();
    // Whether a data operation failed (lock conflict) — forces a No.
    let mut poisoned: BTreeMap<TxnId, bool> = BTreeMap::new();

    loop {
        let now = Instant::now();

        // Recovery point reached?
        if let Some(t) = ctx.down_until {
            if now >= t {
                ctx.down_until = None;
                ctx.history.lock().push(ActaEvent::Recover { site });
                ctx.observe_recover();
                let actions = engine.recover();
                // Storage recovery needs the protocol log's view.
                let outcomes = protocol_outcomes(&engine);
                storage.recover(&outcomes).expect("storage recovery");
                let enf = ctx.run_actions(actions);
                apply_enforcements(&mut storage, enf);
            }
        }

        if ctx.down_until.is_none() {
            for token in ctx.due_timers(now) {
                let actions = engine.on_timer(token);
                let enf = ctx.run_actions(actions);
                apply_enforcements(&mut storage, enf);
            }
        }

        match rx.recv_timeout(ctx.next_timeout(now)) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(envelope) => {
                let now = Instant::now();
                match envelope {
                    Envelope::Shutdown => break,
                    Envelope::Crash { down_for } => {
                        if ctx.down_until.is_none() {
                            ctx.history.lock().push(ActaEvent::Crash { site });
                            ctx.observe_crash();
                            engine.crash();
                            storage.crash();
                            ctx.crash_volatile();
                            ctx.down_until = Some(now + down_for);
                        }
                    }
                    _ if ctx.is_down(now) => {} // omission: dropped
                    Envelope::Apply { txn, key, value } => {
                        storage.begin(txn);
                        if storage.put(txn, &key, &value).is_err() {
                            poisoned.insert(txn, true);
                        }
                    }
                    Envelope::SetIntent { txn, vote } => {
                        forced_intents.insert(txn, vote);
                    }
                    Envelope::Protocol(msg) => {
                        ctx.observe_recv(&msg);
                        // Prepare needs the storage engine's verdict
                        // before the protocol engine runs.
                        if let acp_types::Payload::Prepare { txn } = msg.payload {
                            let vote = decide_vote(
                                &mut storage,
                                txn,
                                forced_intents.get(&txn).copied(),
                                poisoned.get(&txn).copied().unwrap_or(false),
                            );
                            engine.set_intent(txn, vote);
                        }
                        let actions = engine.on_message(msg.from, &msg.payload);
                        let enf = ctx.run_actions(actions);
                        apply_enforcements(&mut storage, enf);
                    }
                    Envelope::Commit { .. } => {} // not a coordinator
                }
            }
        }
    }
    ParticipantFinal { engine, storage }
}

/// The storage-engine-derived vote: forced intent wins; a poisoned
/// (lock-conflicted) transaction votes No; a read-only one votes
/// ReadOnly after releasing its locks; otherwise prepare (force the
/// write set) and vote Yes — falling back to No if the force fails.
fn decide_vote(
    storage: &mut SiteEngine<FileLog>,
    txn: TxnId,
    forced: Option<Vote>,
    poisoned: bool,
) -> Vote {
    if let Some(v) = forced {
        // Test hook: make the engine state consistent with the vote.
        match v {
            Vote::Yes => {
                storage.begin(txn);
                let _ = storage.prepare(txn);
            }
            Vote::No => {
                let _ = storage.abort_active(txn);
            }
            Vote::ReadOnly => {}
        }
        return v;
    }
    if poisoned {
        let _ = storage.abort_active(txn);
        return Vote::No;
    }
    storage.begin(txn);
    if storage.is_read_only(txn).unwrap_or(true) {
        let _ = storage.abort_active(txn); // releases (shared) locks
        return Vote::ReadOnly;
    }
    match storage.prepare(txn) {
        Ok(()) => Vote::Yes,
        Err(_) => {
            let _ = storage.abort_active(txn);
            Vote::No
        }
    }
}

/// Stable lowercase name for a vote (event-stream vocabulary).
fn vote_name(vote: Vote) -> &'static str {
    match vote {
        Vote::Yes => "yes",
        Vote::No => "no",
        Vote::ReadOnly => "read-only",
    }
}

fn apply_enforcements(storage: &mut SiteEngine<FileLog>, enf: Vec<(TxnId, Outcome)>) {
    for (txn, outcome) in enf {
        storage.resolve(txn, outcome).expect("resolve");
    }
}

/// Derive the storage-recovery outcome map from the participant's
/// protocol log.
fn protocol_outcomes(engine: &Participant<FileLog>) -> BTreeMap<TxnId, RecoveredOutcome> {
    let mut outcomes = BTreeMap::new();
    let records = engine.log().records().expect("records");
    for (txn, s) in analyze(&records) {
        if let Some(o) = s.part_decision {
            outcomes.insert(txn, RecoveredOutcome::Decided(o));
        } else if s.in_doubt() {
            outcomes.insert(txn, RecoveredOutcome::InDoubt);
        }
    }
    outcomes
}

/// Run the coordinator site. Returns the final engine at shutdown.
#[allow(clippy::needless_pass_by_value)]
pub fn run_coordinator(
    site: SiteId,
    mut engine: Coordinator<FileLog>,
    rx: Receiver<Envelope>,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    obs: Option<NetObs>,
) -> CoordinatorFinal {
    let mut ctx = ActorCtx::new(site, routes, history, delays, obs);
    let mut replies: BTreeMap<TxnId, Sender<Outcome>> = BTreeMap::new();

    loop {
        let now = Instant::now();
        if let Some(t) = ctx.down_until {
            if now >= t {
                ctx.down_until = None;
                ctx.history.lock().push(ActaEvent::Recover { site });
                ctx.observe_recover();
                let actions = engine.recover();
                ctx.run_actions(actions);
                // Any clients still waiting learn the recovered outcome.
                deliver_decisions(&engine, &mut replies);
            }
        }
        if ctx.down_until.is_none() {
            for token in ctx.due_timers(now) {
                let actions = engine.on_timer(token);
                ctx.run_actions(actions);
                deliver_decisions(&engine, &mut replies);
            }
        }

        match rx.recv_timeout(ctx.next_timeout(now)) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(envelope) => {
                let now = Instant::now();
                match envelope {
                    Envelope::Shutdown => break,
                    Envelope::Crash { down_for } => {
                        if ctx.down_until.is_none() {
                            ctx.history.lock().push(ActaEvent::Crash { site });
                            ctx.observe_crash();
                            engine.crash();
                            ctx.crash_volatile();
                            ctx.down_until = Some(now + down_for);
                        }
                    }
                    _ if ctx.is_down(now) => {}
                    Envelope::Commit {
                        txn,
                        participants,
                        reply,
                    } => {
                        // Guard client misuse: a duplicate request for a
                        // decided transaction is answered from the memo;
                        // an in-flight duplicate or an empty participant
                        // list is rejected by dropping the reply channel
                        // (the client's recv sees Disconnected and gets
                        // `None`) instead of tripping the engine's
                        // asserts and killing the coordinator thread.
                        if let Some(outcome) = engine.decided(txn) {
                            let _ = reply.send(outcome);
                        } else if participants.is_empty()
                            || engine.protocol_table_txns().contains(&txn)
                        {
                            drop(reply);
                        } else {
                            replies.insert(txn, reply);
                            let actions = engine.begin_commit(txn, &participants);
                            ctx.run_actions(actions);
                        }
                    }
                    Envelope::Protocol(msg) => {
                        ctx.observe_recv(&msg);
                        let actions = engine.on_message(msg.from, &msg.payload);
                        ctx.run_actions(actions);
                        deliver_decisions(&engine, &mut replies);
                    }
                    Envelope::Apply { .. } | Envelope::SetIntent { .. } => {}
                }
            }
        }
    }
    CoordinatorFinal { engine }
}

/// Send the decision to any waiting client whose transaction has been
/// decided.
fn deliver_decisions(
    engine: &Coordinator<FileLog>,
    replies: &mut BTreeMap<TxnId, Sender<Outcome>>,
) {
    let decided: Vec<(TxnId, Outcome)> = replies
        .keys()
        .filter_map(|&txn| engine.decided(txn).map(|o| (txn, o)))
        .collect();
    for (txn, outcome) in decided {
        if let Some(tx) = replies.remove(&txn) {
            let _ = tx.send(outcome);
        }
    }
}
