//! Site actors: the thread bodies for coordinator and participant
//! sites.

use crate::envelope::Envelope;
use acp_acta::{ActaEvent, History};
use acp_core::{Action, Coordinator, GatewayParticipant, Participant, TimerPurpose};
use acp_engine::{RecoveredOutcome, SiteEngine};
use acp_obs::{ProtoLabel, ProtocolEvent, TraceSink};
use acp_types::{Message, Outcome, Payload, SiteId, TxnId, Vote};
use acp_wal::scan::analyze;
use acp_wal::{FileLog, GroupCommitLog, StableLog};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timer delays for the threaded runtime (real durations).
#[derive(Clone, Copy, Debug)]
pub struct NetDelays {
    /// Coordinator vote-collection timeout.
    pub vote_timeout: Duration,
    /// Decision re-send interval.
    pub ack_resend: Duration,
    /// In-doubt inquiry interval.
    pub inquiry_retry: Duration,
    /// Gateway legacy-apply retry interval.
    pub apply_retry: Duration,
    /// Paxos acceptor completion watchdog (leader-failover trigger).
    pub paxos_completion: Duration,
}

impl Default for NetDelays {
    fn default() -> Self {
        NetDelays {
            vote_timeout: Duration::from_millis(400),
            ack_resend: Duration::from_millis(100),
            inquiry_retry: Duration::from_millis(120),
            apply_retry: Duration::from_millis(100),
            paxos_completion: Duration::from_millis(300),
        }
    }
}

/// Doublings beyond which the backoff stops growing (mirrors the
/// simulator harness; `MAX_BACKOFF` caps the result long before this).
const BACKOFF_SHIFT_CAP: u32 = 16;

/// Upper bound on any backed-off delay in the threaded runtime.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

impl NetDelays {
    /// The real-time delay for a timer purpose at a given retry
    /// attempt: bounded exponential backoff,
    /// `min(base << attempt, 5 s)`, never below the base interval.
    /// Both the threaded actors and the reactor arm timers through
    /// this, so backoff behaviour is backend-independent.
    #[must_use]
    pub fn delay(&self, p: TimerPurpose, attempt: u32) -> Duration {
        let base = match p {
            TimerPurpose::VoteTimeout => self.vote_timeout,
            TimerPurpose::AckResend => self.ack_resend,
            TimerPurpose::InquiryRetry => self.inquiry_retry,
            TimerPurpose::ApplyRetry => self.apply_retry,
            TimerPurpose::PaxosCompletion => self.paxos_completion,
        };
        // Bounded exponential backoff: min(base << attempt, MAX_BACKOFF).
        base.saturating_mul(1u32 << attempt.min(BACKOFF_SHIFT_CAP).min(31))
            .min(MAX_BACKOFF)
            .max(base)
    }

    /// Like [`delay`](Self::delay), but retries (`attempt > 0`) carry a
    /// deterministic ±12.5% jitter derived from `salt` (site/timer
    /// identity), so the synchronized inquiry-retry storm after a crash
    /// spreads out instead of arriving as one burst per backoff round.
    /// Attempt-0 armings are returned exactly — clean schedules are
    /// unchanged by jitter. Mirrors the simulator harness's
    /// `TimerDelays::delay_jittered`.
    #[must_use]
    pub fn delay_jittered(&self, p: TimerPurpose, attempt: u32, salt: u64) -> Duration {
        let d = self.delay(p, attempt);
        if attempt == 0 {
            return d;
        }
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let span = us / 4;
        if span == 0 {
            return d;
        }
        let offset = acp_core::harness::jitter_hash(salt, p as u64, u64::from(attempt)) % (span + 1);
        let jittered = us - span / 2 + offset;
        let base = u64::try_from(self.delay(p, 0).as_micros()).unwrap_or(u64::MAX);
        Duration::from_micros(jittered.max(base))
    }
}

/// Routing table shared by every actor.
pub type Routes = Arc<BTreeMap<SiteId, Sender<Envelope>>>;

/// The protocol-log type the threaded runtime's engines run on: a
/// file-backed log behind the group-commit layer (passthrough unless
/// the cluster enables batching).
pub type NetLog = GroupCommitLog<FileLog>;

/// Most envelopes one actor turn will absorb when group commit is on.
/// Bounds turn latency; anything left stays queued for the next turn.
const MAX_TURN_DRAIN: usize = 64;

/// Observability plumbing for the threaded runtime: a shared trace sink
/// plus the cluster's epoch, so wall-clock instants become trace
/// microseconds, and the protocol label events are attributed to.
#[derive(Clone)]
pub struct NetObs {
    /// Where the site's protocol events go.
    pub sink: Arc<dyn TraceSink>,
    /// The run's `t = 0` (cluster spawn time).
    pub t0: Instant,
    /// Label for events emitted by this site.
    pub proto: ProtoLabel,
}

impl NetObs {
    pub(crate) fn now_us(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Shared, mutex-guarded global history (the actors append their ACTA
/// events; checkers read it after shutdown).
pub type SharedHistory = Arc<Mutex<History>>;

/// What a participant thread returns at shutdown.
pub struct ParticipantFinal {
    /// The protocol engine.
    pub engine: Participant<NetLog>,
    /// The storage engine.
    pub storage: SiteEngine<FileLog>,
}

/// What the coordinator thread returns at shutdown.
pub struct CoordinatorFinal {
    /// The protocol engine.
    pub engine: Coordinator<NetLog>,
}

/// What a gateway thread returns at shutdown.
pub struct GatewayFinal {
    /// The gateway engine (owning the legacy store).
    pub engine: GatewayParticipant<FileLog>,
}

/// Run a gateway site fronting a legacy system (see
/// `acp_core::gateway`). Crashing the site loses the gateway's volatile
/// state but not the legacy system's data — they are separate failure
/// domains.
#[allow(clippy::needless_pass_by_value)]
pub fn run_gateway(
    site: SiteId,
    mut engine: GatewayParticipant<FileLog>,
    rx: Receiver<Envelope>,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    obs: Option<NetObs>,
) -> GatewayFinal {
    let mut ctx = ActorCtx::new(site, routes, history, delays, obs);
    loop {
        let now = Instant::now();
        if let Some(t) = ctx.down_until {
            if now >= t {
                ctx.down_until = None;
                ctx.history.lock().push(ActaEvent::Recover { site });
                ctx.observe_recover();
                let actions = engine.recover();
                ctx.run_actions(actions);
            }
        }
        if ctx.down_until.is_none() {
            for token in ctx.due_timers(now) {
                let actions = engine.on_timer(token);
                ctx.run_actions(actions);
            }
        }
        match rx.recv_timeout(ctx.next_timeout(now)) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(envelope) => {
                let now = Instant::now();
                match envelope {
                    Envelope::Shutdown => break,
                    Envelope::Crash { down_for } => {
                        if ctx.down_until.is_none() {
                            ctx.history.lock().push(ActaEvent::Crash { site });
                            ctx.observe_crash();
                            engine.crash();
                            ctx.crash_volatile();
                            ctx.down_until = Some(now + down_for);
                        }
                    }
                    _ if ctx.is_down(now) => {}
                    Envelope::Apply { txn, key, value } => {
                        engine.stage_write(txn, &key, &value);
                    }
                    Envelope::Protocol(msg) => {
                        ctx.observe_recv(&msg);
                        let actions = engine.on_message(msg.from, &msg.payload);
                        ctx.run_actions(actions);
                    }
                    Envelope::ProtocolBatch(msgs) => {
                        for msg in msgs {
                            ctx.observe_recv(&msg);
                            let actions = engine.on_message(msg.from, &msg.payload);
                            ctx.run_actions(actions);
                        }
                    }
                    Envelope::SetIntent { .. } | Envelope::Commit { .. } => {}
                }
            }
        }
    }
    GatewayFinal { engine }
}

/// Common actor plumbing: timers, routing, history.
struct ActorCtx {
    site: SiteId,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    /// (deadline, harness-token) min-heap.
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    /// harness-token → engine token + purpose.
    timer_map: BTreeMap<u64, (u64, TimerPurpose)>,
    next_token: u64,
    down_until: Option<Instant>,
    /// Observability sink + clock (None = tracing disabled).
    obs: Option<NetObs>,
    /// When this site last decided, in trace microseconds (GC latency).
    last_decision_us: Option<u64>,
    /// Group commit: withhold `Action::Send` until the turn's batch is
    /// durable (the host flushes via [`ActorCtx::flush_sends`]).
    defer_sends: bool,
    /// Sends withheld this turn, in emission order.
    deferred_sends: Vec<Message>,
}

impl ActorCtx {
    fn new(
        site: SiteId,
        routes: Routes,
        history: SharedHistory,
        delays: NetDelays,
        obs: Option<NetObs>,
    ) -> Self {
        ActorCtx {
            site,
            routes,
            history,
            delays,
            timers: BinaryHeap::new(),
            timer_map: BTreeMap::new(),
            next_token: 0,
            down_until: None,
            obs,
            last_decision_us: None,
            defer_sends: false,
            deferred_sends: Vec::new(),
        }
    }

    fn is_down(&self, now: Instant) -> bool {
        self.down_until.is_some_and(|t| now < t)
    }

    fn route(&self, msg: Message) {
        if let Some(tx) = self.routes.get(&msg.to) {
            // A full/closed mailbox is an omission failure — exactly the
            // failure model the protocols tolerate.
            let _ = tx.send(Envelope::Protocol(msg));
        }
    }

    /// Execute engine actions; returns enforcements for the storage
    /// layer (participants apply them; the coordinator has none).
    fn run_actions(&mut self, actions: Vec<Action>) -> Vec<(TxnId, Outcome)> {
        let mut enforcements = Vec::new();
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    let msg = Message::new(self.site, to, payload);
                    if self.defer_sends {
                        // Externalization waits for the batch force;
                        // events are emitted when the send happens.
                        self.deferred_sends.push(msg);
                    } else {
                        self.observe_send(&msg);
                        self.route(msg);
                    }
                }
                Action::SetTimer {
                    token,
                    purpose,
                    attempt,
                } => {
                    if let Some(obs) = &self.obs {
                        observe_retry(obs, self.site, purpose, attempt);
                    }
                    let harness = self.next_token;
                    self.next_token += 1;
                    self.timer_map.insert(harness, (token, purpose));
                    self.timers.push(Reverse((
                        Instant::now() + self.delays.delay(purpose, attempt),
                        harness,
                    )));
                }
                Action::Acta(e) => {
                    self.observe_acta(&e);
                    self.history.lock().push(e);
                }
                Action::Enforce { txn, outcome } => enforcements.push((txn, outcome)),
                Action::Gc {
                    released_up_to,
                    records_released,
                } => {
                    if let Some(obs) = &self.obs {
                        observe_gc(
                            obs,
                            self.site,
                            released_up_to,
                            records_released,
                            self.last_decision_us,
                        );
                    }
                }
            }
        }
        enforcements
    }

    /// Note a protocol send in the event stream (vote casts get their
    /// own event ahead of the generic send).
    fn observe_send(&self, msg: &Message) {
        if let Some(obs) = &self.obs {
            observe_send(obs, self.site, msg);
        }
    }

    /// Externalize the turn's withheld sends: emit their events, then
    /// coalesce same-destination messages into one
    /// [`Envelope::ProtocolBatch`] (ack piggybacking — the transport
    /// carries one envelope where the unbatched runtime sent several).
    fn flush_sends(&mut self) {
        if self.deferred_sends.is_empty() {
            return;
        }
        let msgs = std::mem::take(&mut self.deferred_sends);
        let mut by_dest: BTreeMap<SiteId, Vec<Message>> = BTreeMap::new();
        for msg in msgs {
            self.observe_send(&msg);
            by_dest.entry(msg.to).or_default().push(msg);
        }
        for (to, mut msgs) in by_dest {
            if let Some(tx) = self.routes.get(&to) {
                let envelope = if msgs.len() == 1 {
                    Envelope::Protocol(msgs.pop().expect("one message"))
                } else {
                    Envelope::ProtocolBatch(msgs)
                };
                // Full/closed mailbox = omission, as in `route`.
                let _ = tx.send(envelope);
            }
        }
    }

    /// Mirror an ACTA event into the typed protocol-event stream.
    fn observe_acta(&mut self, event: &ActaEvent) {
        if let Some(obs) = &self.obs {
            observe_acta(obs, self.site, event, &mut self.last_decision_us);
        }
    }

    /// Note receipt of a protocol message in the event stream.
    fn observe_recv(&self, msg: &Message) {
        if let Some(obs) = &self.obs {
            observe_recv(obs, self.site, msg);
        }
    }

    /// Note a crash in the event stream.
    fn observe_crash(&self) {
        if let Some(obs) = &self.obs {
            observe_crash(obs, self.site);
        }
    }

    /// Note the start of recovery in the event stream.
    fn observe_recover(&self) {
        if let Some(obs) = &self.obs {
            observe_recover(obs, self.site);
        }
    }

    /// Next wake-up interval for `recv_timeout`.
    fn next_timeout(&self, now: Instant) -> Duration {
        let timer_deadline = self.timers.peek().map(|Reverse((t, _))| *t);
        let recover_deadline = self.down_until;
        match (timer_deadline, recover_deadline) {
            (Some(a), Some(b)) => a.min(b).saturating_duration_since(now),
            (Some(a), None) => a.saturating_duration_since(now),
            (None, Some(b)) => b.saturating_duration_since(now),
            (None, None) => Duration::from_millis(50),
        }
        .max(Duration::from_millis(1))
    }

    /// Pop engine-timer tokens whose deadline passed. Timers are
    /// volatile: anything armed before a crash was cleared with the map.
    fn due_timers(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while let Some(Reverse((deadline, harness))) = self.timers.peek().copied() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            if let Some((engine_token, _)) = self.timer_map.remove(&harness) {
                due.push(engine_token);
            }
        }
        due
    }

    fn crash_volatile(&mut self) {
        self.timer_map.clear();
        self.timers.clear();
        // Withheld sends die with the crash: their staged log records
        // were never forced, so externalizing them now would be unsound.
        // Dropping them is an omission failure the protocols tolerate.
        self.deferred_sends.clear();
    }
}

// ---------------------------------------------------------------------------
// Shared emission points. Both hosts in this crate — the threaded
// actors above and the reactor — fund the event stream through these
// functions, so a trace line is formatted identically regardless of
// which backend produced it (the cross-backend byte-stability tests
// rely on this).

/// Note a protocol send (vote casts get their own event ahead of the
/// generic send).
pub(crate) fn observe_send(obs: &NetObs, site: SiteId, msg: &Message) {
    let at_us = obs.now_us();
    if let Payload::Vote { txn, vote } = &msg.payload {
        obs.sink.record(&ProtocolEvent::VoteCast {
            at_us,
            site: site.raw(),
            proto: obs.proto,
            vote: vote_name(*vote),
            txn: Some(txn.raw()),
        });
    }
    obs.sink.record(&ProtocolEvent::MsgSend {
        at_us,
        site: site.raw(),
        proto: obs.proto,
        to: msg.to.raw(),
        kind: msg.payload.kind_name(),
        txn: Some(msg.payload.txn().raw()),
    });
}

/// Note receipt of a protocol message.
pub(crate) fn observe_recv(obs: &NetObs, site: SiteId, msg: &Message) {
    obs.sink.record(&ProtocolEvent::MsgRecv {
        at_us: obs.now_us(),
        site: site.raw(),
        proto: obs.proto,
        from: msg.from.raw(),
        kind: msg.payload.kind_name(),
        txn: Some(msg.payload.txn().raw()),
    });
}

/// Note a crash.
pub(crate) fn observe_crash(obs: &NetObs, site: SiteId) {
    obs.sink.record(&ProtocolEvent::CrashObserved {
        at_us: obs.now_us(),
        site: site.raw(),
        proto: obs.proto,
    });
}

/// Note the start of recovery.
pub(crate) fn observe_recover(obs: &NetObs, site: SiteId) {
    obs.sink.record(&ProtocolEvent::RecoveryStep {
        at_us: obs.now_us(),
        site: site.raw(),
        proto: obs.proto,
        detail: "site back up; restart procedure begins".to_string(),
    });
}

/// Note a scheduled retry (attempt 0 is the initial arm, not a retry —
/// no event).
pub(crate) fn observe_retry(obs: &NetObs, site: SiteId, purpose: TimerPurpose, attempt: u32) {
    if attempt > 0 {
        obs.sink.record(&ProtocolEvent::RetryScheduled {
            at_us: obs.now_us(),
            site: site.raw(),
            proto: obs.proto,
            purpose: purpose.name(),
            attempt,
            txn: None,
        });
    }
}

/// Note a log GC step, with decision-to-GC latency when known.
pub(crate) fn observe_gc(
    obs: &NetObs,
    site: SiteId,
    released_up_to: u64,
    records_released: u64,
    last_decision_us: Option<u64>,
) {
    let at_us = obs.now_us();
    obs.sink.record(&ProtocolEvent::LogGc {
        at_us,
        site: site.raw(),
        proto: obs.proto,
        released_up_to,
        records_released,
        since_decision_us: last_decision_us.map(|d| at_us.saturating_sub(d)),
    });
}

/// Mirror an ACTA event into the typed protocol-event stream, updating
/// the caller's last-decision timestamp for GC latency attribution.
pub(crate) fn observe_acta(
    obs: &NetObs,
    site: SiteId,
    event: &ActaEvent,
    last_decision_us: &mut Option<u64>,
) {
    let at_us = obs.now_us();
    let site = site.raw();
    let proto = obs.proto;
    match event {
        ActaEvent::LogWrite {
            txn, kind, forced, ..
        } => {
            let ev = if *forced {
                ProtocolEvent::ForceWrite {
                    at_us,
                    site,
                    proto,
                    record: kind,
                    txn: Some(txn.raw()),
                }
            } else {
                ProtocolEvent::NonForcedWrite {
                    at_us,
                    site,
                    proto,
                    record: kind,
                    txn: Some(txn.raw()),
                }
            };
            obs.sink.record(&ev);
        }
        ActaEvent::Decide { txn, outcome, .. } => {
            obs.sink.record(&ProtocolEvent::DecisionReached {
                at_us,
                site,
                proto,
                outcome: match outcome {
                    Outcome::Commit => "commit",
                    Outcome::Abort => "abort",
                },
                txn: Some(txn.raw()),
            });
            *last_decision_us = Some(at_us);
        }
        ActaEvent::Inquire { txn, protocol, .. } => {
            obs.sink.record(&ProtocolEvent::RecoveryStep {
                at_us,
                site,
                proto,
                detail: format!("inquire about {txn} ({protocol})"),
            });
        }
        ActaEvent::Respond {
            txn,
            outcome,
            by_presumption,
            ..
        } => {
            let how = if *by_presumption { " by presumption" } else { "" };
            obs.sink.record(&ProtocolEvent::RecoveryStep {
                at_us,
                site,
                proto,
                detail: format!("answer inquiry {txn}: {outcome}{how}"),
            });
        }
        _ => {}
    }
}

/// End an actor turn under group commit: force the open batch (one
/// fsync covers every record the turn staged), surface its trace event,
/// then externalize the withheld sends. A batch of one emits no event —
/// it is indistinguishable from an unbatched force. If the force fails,
/// the sends are dropped (omission) rather than externalized without
/// durability.
fn finish_group_turn(log: &mut NetLog, ctx: &mut ActorCtx) {
    if !log.batching() {
        return;
    }
    match log.commit_batch() {
        Ok(_) => {
            for b in log.take_closed() {
                if b.occupancy >= 2 {
                    if let Some(obs) = &ctx.obs {
                        obs.sink.record(&ProtocolEvent::BatchCommit {
                            at_us: obs.now_us(),
                            site: ctx.site.raw(),
                            proto: obs.proto,
                            occupancy: b.occupancy,
                        });
                    }
                }
            }
            ctx.flush_sends();
        }
        Err(_) => ctx.deferred_sends.clear(),
    }
}

/// Pull every ready envelope (up to [`MAX_TURN_DRAIN`]) so one turn —
/// and one batch force — serves them all. Incoming
/// [`Envelope::ProtocolBatch`]es are flattened back into individual
/// protocol messages here.
fn drain_ready(rx: &Receiver<Envelope>, first: Envelope, batching: bool) -> Vec<Envelope> {
    fn push(e: Envelope, out: &mut Vec<Envelope>) {
        match e {
            Envelope::ProtocolBatch(msgs) => {
                out.extend(msgs.into_iter().map(Envelope::Protocol));
            }
            e => out.push(e),
        }
    }
    let mut out = Vec::new();
    push(first, &mut out);
    if batching {
        while out.len() < MAX_TURN_DRAIN {
            match rx.try_recv() {
                Ok(e) => push(e, &mut out),
                Err(_) => break,
            }
        }
    }
    out
}

/// Run a participant site: protocol engine + storage engine, both over
/// file-backed logs. Returns the final engines at shutdown.
#[allow(clippy::needless_pass_by_value)]
pub fn run_participant(
    site: SiteId,
    mut engine: Participant<NetLog>,
    mut storage: SiteEngine<FileLog>,
    rx: Receiver<Envelope>,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    obs: Option<NetObs>,
) -> ParticipantFinal {
    let mut ctx = ActorCtx::new(site, routes, history, delays, obs);
    let batching = engine.log().batching();
    ctx.defer_sends = batching;
    // Explicit vote intents from SetIntent envelopes.
    let mut forced_intents: BTreeMap<TxnId, Vote> = BTreeMap::new();
    // Whether a data operation failed (lock conflict) — forces a No.
    let mut poisoned: BTreeMap<TxnId, bool> = BTreeMap::new();

    'main: loop {
        let now = Instant::now();

        // Recovery point reached?
        if let Some(t) = ctx.down_until {
            if now >= t {
                ctx.down_until = None;
                ctx.history.lock().push(ActaEvent::Recover { site });
                ctx.observe_recover();
                let actions = engine.recover();
                // Storage recovery needs the protocol log's view.
                let outcomes = protocol_outcomes(&engine);
                storage.recover(&outcomes).expect("storage recovery");
                let enf = ctx.run_actions(actions);
                apply_enforcements(&mut storage, enf);
            }
        }

        if ctx.down_until.is_none() {
            for token in ctx.due_timers(now) {
                let actions = engine.on_timer(token);
                let enf = ctx.run_actions(actions);
                apply_enforcements(&mut storage, enf);
            }
        }
        finish_group_turn(engine.log_mut(), &mut ctx);

        match rx.recv_timeout(ctx.next_timeout(now)) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(first) => {
                // One turn absorbs every ready envelope, so a single
                // batch force covers all their log records.
                for envelope in drain_ready(&rx, first, batching) {
                    let now = Instant::now();
                    match envelope {
                        Envelope::Shutdown => {
                            finish_group_turn(engine.log_mut(), &mut ctx);
                            break 'main;
                        }
                        Envelope::Crash { down_for } => {
                            if ctx.down_until.is_none() {
                                ctx.history.lock().push(ActaEvent::Crash { site });
                                ctx.observe_crash();
                                engine.crash();
                                storage.crash();
                                ctx.crash_volatile();
                                ctx.down_until = Some(now + down_for);
                            }
                        }
                        _ if ctx.is_down(now) => {} // omission: dropped
                        Envelope::Apply { txn, key, value } => {
                            storage.begin(txn);
                            if storage.put(txn, &key, &value).is_err() {
                                poisoned.insert(txn, true);
                            }
                        }
                        Envelope::SetIntent { txn, vote } => {
                            forced_intents.insert(txn, vote);
                        }
                        Envelope::Protocol(msg) => {
                            ctx.observe_recv(&msg);
                            // Prepare needs the storage engine's verdict
                            // before the protocol engine runs.
                            if let acp_types::Payload::Prepare { txn } = msg.payload {
                                let vote = decide_vote(
                                    &mut storage,
                                    txn,
                                    forced_intents.get(&txn).copied(),
                                    poisoned.get(&txn).copied().unwrap_or(false),
                                    false,
                                );
                                engine.set_intent(txn, vote);
                            }
                            let actions = engine.on_message(msg.from, &msg.payload);
                            let enf = ctx.run_actions(actions);
                            apply_enforcements(&mut storage, enf);
                        }
                        Envelope::ProtocolBatch(_) => {
                            unreachable!("flattened by drain_ready")
                        }
                        Envelope::Commit { .. } => {} // not a coordinator
                    }
                }
                finish_group_turn(engine.log_mut(), &mut ctx);
            }
        }
    }
    ParticipantFinal { engine, storage }
}

/// The storage-engine-derived vote: forced intent wins; a poisoned
/// (lock-conflicted) transaction votes No; a read-only one votes
/// ReadOnly after releasing its locks; otherwise prepare (force the
/// write set) and vote Yes — falling back to No if the force fails.
/// `lazy` stages the write set without forcing the data log
/// ([`SiteEngine::prepare_lazy`]) — only sound when the host also
/// defers the vote send and flushes the data log first (the reactor's
/// group-commit tick). The threaded runtime always passes `false`.
pub(crate) fn decide_vote(
    storage: &mut SiteEngine<FileLog>,
    txn: TxnId,
    forced: Option<Vote>,
    poisoned: bool,
    lazy: bool,
) -> Vote {
    let prepare = |storage: &mut SiteEngine<FileLog>, txn| {
        if lazy {
            storage.prepare_lazy(txn)
        } else {
            storage.prepare(txn)
        }
    };
    if let Some(v) = forced {
        // Test hook: make the engine state consistent with the vote.
        match v {
            Vote::Yes => {
                storage.begin(txn);
                let _ = prepare(storage, txn);
            }
            Vote::No => {
                let _ = storage.abort_active(txn);
            }
            Vote::ReadOnly => {}
        }
        return v;
    }
    if poisoned {
        let _ = storage.abort_active(txn);
        return Vote::No;
    }
    storage.begin(txn);
    if storage.is_read_only(txn).unwrap_or(true) {
        let _ = storage.abort_active(txn); // releases (shared) locks
        return Vote::ReadOnly;
    }
    match prepare(storage, txn) {
        Ok(()) => Vote::Yes,
        Err(_) => {
            let _ = storage.abort_active(txn);
            Vote::No
        }
    }
}

/// Stable lowercase name for a vote (event-stream vocabulary).
pub(crate) fn vote_name(vote: Vote) -> &'static str {
    match vote {
        Vote::Yes => "yes",
        Vote::No => "no",
        Vote::ReadOnly => "read-only",
    }
}

pub(crate) fn apply_enforcements(storage: &mut SiteEngine<FileLog>, enf: Vec<(TxnId, Outcome)>) {
    for (txn, outcome) in enf {
        storage.resolve(txn, outcome).expect("resolve");
    }
}

/// Derive the storage-recovery outcome map from the participant's
/// protocol log.
pub(crate) fn protocol_outcomes(engine: &Participant<NetLog>) -> BTreeMap<TxnId, RecoveredOutcome> {
    let mut outcomes = BTreeMap::new();
    let records = engine.log().records().expect("records");
    for (txn, s) in analyze(&records) {
        if let Some(o) = s.part_decision {
            outcomes.insert(txn, RecoveredOutcome::Decided(o));
        } else if s.in_doubt() {
            outcomes.insert(txn, RecoveredOutcome::InDoubt);
        }
    }
    outcomes
}

/// Run the coordinator site. Returns the final engine at shutdown.
#[allow(clippy::needless_pass_by_value)]
pub fn run_coordinator(
    site: SiteId,
    mut engine: Coordinator<NetLog>,
    rx: Receiver<Envelope>,
    routes: Routes,
    history: SharedHistory,
    delays: NetDelays,
    obs: Option<NetObs>,
) -> CoordinatorFinal {
    let mut ctx = ActorCtx::new(site, routes, history, delays, obs);
    let batching = engine.log().batching();
    ctx.defer_sends = batching;
    let mut replies: BTreeMap<TxnId, Sender<Outcome>> = BTreeMap::new();

    'main: loop {
        let now = Instant::now();
        if let Some(t) = ctx.down_until {
            if now >= t {
                ctx.down_until = None;
                ctx.history.lock().push(ActaEvent::Recover { site });
                ctx.observe_recover();
                let actions = engine.recover();
                ctx.run_actions(actions);
                finish_group_turn(engine.log_mut(), &mut ctx);
                // Any clients still waiting learn the recovered outcome.
                deliver_decisions(&engine, &mut replies);
            }
        }
        if ctx.down_until.is_none() {
            let mut fired = false;
            for token in ctx.due_timers(now) {
                let actions = engine.on_timer(token);
                ctx.run_actions(actions);
                fired = true;
            }
            if fired {
                // Decision records a timer turn staged must be durable
                // before any waiting client hears the outcome.
                finish_group_turn(engine.log_mut(), &mut ctx);
                deliver_decisions(&engine, &mut replies);
            }
        }

        match rx.recv_timeout(ctx.next_timeout(now)) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(first) => {
                for envelope in drain_ready(&rx, first, batching) {
                    let now = Instant::now();
                    match envelope {
                        Envelope::Shutdown => {
                            finish_group_turn(engine.log_mut(), &mut ctx);
                            break 'main;
                        }
                        Envelope::Crash { down_for } => {
                            if ctx.down_until.is_none() {
                                ctx.history.lock().push(ActaEvent::Crash { site });
                                ctx.observe_crash();
                                engine.crash();
                                ctx.crash_volatile();
                                ctx.down_until = Some(now + down_for);
                            }
                        }
                        _ if ctx.is_down(now) => {}
                        Envelope::Commit {
                            txn,
                            participants,
                            reply,
                        } => {
                            // Guard client misuse: a duplicate request for a
                            // decided transaction is answered from the memo;
                            // an in-flight duplicate or an empty participant
                            // list is rejected by dropping the reply channel
                            // (the client's recv sees Disconnected and gets
                            // `None`) instead of tripping the engine's
                            // asserts and killing the coordinator thread.
                            if let Some(outcome) = engine.decided(txn) {
                                let _ = reply.send(outcome);
                            } else if participants.is_empty() || engine.in_flight(txn) {
                                drop(reply);
                            } else {
                                replies.insert(txn, reply);
                                let actions = engine.begin_commit(txn, &participants);
                                ctx.run_actions(actions);
                            }
                        }
                        Envelope::Protocol(msg) => {
                            ctx.observe_recv(&msg);
                            let actions = engine.on_message(msg.from, &msg.payload);
                            ctx.run_actions(actions);
                        }
                        Envelope::ProtocolBatch(_) => {
                            unreachable!("flattened by drain_ready")
                        }
                        Envelope::Apply { .. } | Envelope::SetIntent { .. } => {}
                    }
                }
                // Force the turn's staged records (one fsync for every
                // transaction the drain served) before clients or peers
                // can observe the decisions.
                finish_group_turn(engine.log_mut(), &mut ctx);
                deliver_decisions(&engine, &mut replies);
            }
        }
    }
    CoordinatorFinal { engine }
}

/// Send the decision to any waiting client whose transaction has been
/// decided. Returns the delivered transaction ids so hosts that track
/// per-transaction latency (the reactor's commit histogram) can close
/// their books.
pub(crate) fn deliver_decisions(
    engine: &Coordinator<NetLog>,
    replies: &mut BTreeMap<TxnId, Sender<Outcome>>,
) -> Vec<TxnId> {
    let decided: Vec<(TxnId, Outcome)> = replies
        .keys()
        .filter_map(|&txn| engine.decided(txn).map(|o| (txn, o)))
        .collect();
    let mut delivered = Vec::with_capacity(decided.len());
    for (txn, outcome) in decided {
        if let Some(tx) = replies.remove(&txn) {
            let _ = tx.send(outcome);
        }
        delivered.push(txn);
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    const PURPOSES: [TimerPurpose; 5] = [
        TimerPurpose::VoteTimeout,
        TimerPurpose::AckResend,
        TimerPurpose::InquiryRetry,
        TimerPurpose::ApplyRetry,
        TimerPurpose::PaxosCompletion,
    ];

    #[test]
    fn jitter_leaves_first_armings_exact() {
        let d = NetDelays::default();
        for p in PURPOSES {
            for salt in [0u64, 1, 7, u64::MAX] {
                assert_eq!(d.delay_jittered(p, 0, salt), d.delay(p, 0), "{p:?}");
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_and_stays_inside_the_band() {
        let d = NetDelays::default();
        for p in PURPOSES {
            for attempt in 1..=6u32 {
                let base = d.delay(p, attempt).as_micros() as i128;
                for salt in [3u64, 0x00C0FFEE, 0xDEAD_BEEF_0BAD_F00D] {
                    let j = d.delay_jittered(p, attempt, salt);
                    assert_eq!(j, d.delay_jittered(p, attempt, salt), "reproducible");
                    let off = (j.as_micros() as i128 - base).abs();
                    // ±12.5% of the backed-off delay, rounded.
                    assert!(off <= base / 8 + 1, "{p:?}@{attempt}: off={off} base={base}");
                    // Never below the un-backed-off base delay.
                    assert!(j >= d.delay(p, 0));
                }
            }
        }
    }

    #[test]
    fn jitter_spreads_distinct_salts_apart() {
        let d = NetDelays::default();
        let mut seen = std::collections::BTreeSet::new();
        for salt in 0..32u64 {
            seen.insert(d.delay_jittered(TimerPurpose::InquiryRetry, 3, salt));
        }
        // 32 sites retrying the same backoff round must not collapse
        // onto one instant (that is the thundering herd the jitter
        // exists to break up).
        assert!(seen.len() > 16, "only {} distinct delays", seen.len());
    }
}
