//! Cluster orchestration: spawn, drive and shut down a set of site
//! threads.

use crate::actor::{
    run_coordinator, run_gateway, run_participant, CoordinatorFinal, GatewayFinal, NetDelays,
    NetObs, ParticipantFinal, Routes, SharedHistory,
};
use crate::envelope::Envelope;
use acp_acta::History;
use acp_core::{Coordinator, GatewayParticipant, LegacyStore, Participant};
use acp_engine::SiteEngine;
use acp_obs::{ProtoLabel, TraceSink};
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::tempdir::TempDir;
use acp_wal::{FileLog, GroupCommitLog, GroupCommitStats};
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cluster parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The coordinator variant.
    pub kind: CoordinatorKind,
    /// Participant protocols (sites 1..=n; the coordinator is site 0).
    pub participant_protocols: Vec<ProtocolKind>,
    /// Sites (by index into `participant_protocols`) that are *gateways*
    /// fronting legacy systems rather than native participants. The
    /// protocol at that index becomes the dialect the gateway speaks.
    pub gateways: Vec<usize>,
    /// Timer delays.
    pub delays: NetDelays,
    /// Group-commit batching: when `true`, coordinator and participant
    /// protocol logs defer forced appends within an actor turn and make
    /// them durable with one fsync before any message is externalized,
    /// and same-destination sends from one turn travel as a single
    /// [`Envelope::ProtocolBatch`]. When `false` (the default) the
    /// runtime behaves exactly as before, byte for byte.
    pub group_commit: bool,
    /// Replicated-coordinator shape: `Some(f)` replaces the single
    /// coordinator at site 0 with a Paxos Commit leader/acceptor and
    /// adds `2f` remote acceptor sites at `N+1 ..= N+2f` (where `N` is
    /// the participant count), tolerating `f` acceptor fail-stops.
    /// `kind` is ignored in that case. Only the socket backend hosts
    /// acceptors; the in-process backends reject the shape.
    pub paxos_f: Option<usize>,
}

impl ClusterConfig {
    /// Default delays with the given kind and population.
    #[must_use]
    pub fn new(kind: CoordinatorKind, participant_protocols: &[ProtocolKind]) -> Self {
        ClusterConfig {
            kind,
            participant_protocols: participant_protocols.to_vec(),
            gateways: Vec::new(),
            delays: NetDelays::default(),
            group_commit: false,
            paxos_f: None,
        }
    }

    /// The Paxos acceptor roster implied by `paxos_f`: site 0 (the
    /// initial leader) plus the `2f` dedicated acceptor sites past the
    /// participants. Empty when the cluster runs a classic coordinator.
    #[must_use]
    pub fn paxos_acceptor_sites(&self) -> Vec<SiteId> {
        let Some(f) = self.paxos_f else {
            return Vec::new();
        };
        let n = self.participant_protocols.len() as u32;
        std::iter::once(SiteId::new(0))
            .chain((n + 1..=n + 2 * f as u32).map(SiteId::new))
            .collect()
    }
}

/// End-of-run summary for one site.
#[derive(Clone, Debug)]
pub struct SiteSummary {
    /// The site.
    pub site: SiteId,
    /// Outcomes enforced at the site (participants only).
    pub enforced: BTreeMap<TxnId, Outcome>,
    /// Transactions still pinning the site's protocol log.
    pub log_pinned: Vec<TxnId>,
    /// Committed key-value pairs (participants only).
    pub committed: BTreeMap<Vec<u8>, Vec<u8>>,
}

/// What the cluster hands back at shutdown.
pub struct ClusterReport {
    /// The global ACTA history.
    pub history: History,
    /// Coordinator protocol-table size at shutdown.
    pub coordinator_table_size: usize,
    /// Per-site summaries.
    pub sites: Vec<SiteSummary>,
    /// Group-commit batching counters summed over the coordinator and
    /// every native participant (all zero when batching is off).
    pub group_commit: GroupCommitStats,
    /// Forced appends the protocol engines requested (logical forces),
    /// summed over the coordinator and every native participant.
    pub logical_forces: u64,
    /// Physical syncs the protocol logs performed, summed likewise:
    /// batch forces plus unbatched/lazy flushes.
    pub physical_syncs: u64,
}

enum SiteHandle {
    Coord(JoinHandle<CoordinatorFinal>),
    Part(JoinHandle<ParticipantFinal>),
    Gateway(JoinHandle<GatewayFinal>),
}

/// A running cluster of site threads.
pub struct Cluster {
    routes: Routes,
    handles: Vec<(SiteId, SiteHandle)>,
    history: SharedHistory,
    next_txn: u64,
    _dir: TempDir,
}

impl Cluster {
    /// The coordinator's site id.
    pub const COORDINATOR: SiteId = SiteId(0);

    /// Spawn a cluster: one coordinator thread and one thread per
    /// participant, each with file-backed logs under a fresh temp dir.
    #[must_use]
    pub fn spawn(config: &ClusterConfig) -> Cluster {
        Self::spawn_inner(config, None)
    }

    /// Spawn a cluster whose sites stream typed protocol events to
    /// `sink` (timestamps are microseconds since spawn). The sink must
    /// tolerate concurrent `record` calls — every site thread shares
    /// it.
    #[must_use]
    pub fn spawn_with_sink(config: &ClusterConfig, sink: Arc<dyn TraceSink>) -> Cluster {
        Self::spawn_inner(config, Some(sink))
    }

    fn spawn_inner(config: &ClusterConfig, sink: Option<Arc<dyn TraceSink>>) -> Cluster {
        assert!(
            config.paxos_f.is_none(),
            "the threaded backend hosts no paxos acceptors; use the socket backend"
        );
        let t0 = std::time::Instant::now();
        let obs_for = |proto: ProtoLabel| {
            sink.as_ref().map(|s| NetObs {
                sink: Arc::clone(s),
                t0,
                proto,
            })
        };
        let dir = TempDir::new("cluster").expect("tempdir");
        let history: SharedHistory = Arc::new(Mutex::new(History::new()));

        let mut senders: BTreeMap<SiteId, Sender<Envelope>> = BTreeMap::new();
        let mut receivers = Vec::new();
        let coord_site = Self::COORDINATOR;
        let participant_sites: Vec<SiteId> = (1..=config.participant_protocols.len() as u32)
            .map(SiteId::new)
            .collect();
        for &site in std::iter::once(&coord_site).chain(participant_sites.iter()) {
            let (tx, rx) = unbounded();
            senders.insert(site, tx);
            receivers.push((site, rx));
        }
        let routes: Routes = Arc::new(senders);

        // Protocol logs go behind the group-commit layer; passthrough
        // mode is bit-identical to the bare FileLog.
        let wrap = |log: FileLog| {
            if config.group_commit {
                GroupCommitLog::deferred(log)
            } else {
                GroupCommitLog::passthrough(log)
            }
        };
        let mut handles = Vec::new();
        for (site, rx) in receivers {
            if site == coord_site {
                let mut engine = Coordinator::new(
                    site,
                    config.kind,
                    wrap(FileLog::create(dir.path().join("coord.wal")).expect("wal")),
                );
                for (i, &p) in config.participant_protocols.iter().enumerate() {
                    engine.register_site(SiteId::new(i as u32 + 1), p);
                }
                let routes = Arc::clone(&routes);
                let history = Arc::clone(&history);
                let delays = config.delays;
                let obs = obs_for(ProtoLabel::of_coordinator(config.kind));
                handles.push((
                    site,
                    SiteHandle::Coord(std::thread::spawn(move || {
                        run_coordinator(site, engine, rx, routes, history, delays, obs)
                    })),
                ));
            } else if config.gateways.contains(&(site.raw() as usize - 1)) {
                let proto = config.participant_protocols[site.raw() as usize - 1];
                let engine = GatewayParticipant::new(
                    site,
                    proto,
                    FileLog::create(dir.path().join(format!("gw-{}.wal", site.raw())))
                        .expect("wal"),
                    LegacyStore::new(),
                );
                let routes = Arc::clone(&routes);
                let history = Arc::clone(&history);
                let delays = config.delays;
                let obs = obs_for(ProtoLabel::Gateway);
                handles.push((
                    site,
                    SiteHandle::Gateway(std::thread::spawn(move || {
                        run_gateway(site, engine, rx, routes, history, delays, obs)
                    })),
                ));
            } else {
                let proto = config.participant_protocols[site.raw() as usize - 1];
                let engine = Participant::new(
                    site,
                    proto,
                    wrap(
                        FileLog::create(dir.path().join(format!("part-{}.wal", site.raw())))
                            .expect("wal"),
                    ),
                );
                let storage = SiteEngine::new(
                    FileLog::create(dir.path().join(format!("data-{}.wal", site.raw())))
                        .expect("wal"),
                );
                let routes = Arc::clone(&routes);
                let history = Arc::clone(&history);
                let delays = config.delays;
                let obs = obs_for(ProtoLabel::of_participant(proto));
                handles.push((
                    site,
                    SiteHandle::Part(std::thread::spawn(move || {
                        run_participant(site, engine, storage, rx, routes, history, delays, obs)
                    })),
                ));
            }
        }

        Cluster {
            routes,
            handles,
            history,
            next_txn: 1,
            _dir: dir,
        }
    }

    /// Allocate a fresh transaction id.
    pub fn next_txn(&mut self) -> TxnId {
        let t = TxnId::new(self.next_txn);
        self.next_txn += 1;
        t
    }

    /// All participant site ids.
    #[must_use]
    pub fn participants(&self) -> Vec<SiteId> {
        self.routes
            .keys()
            .copied()
            .filter(|s| *s != Self::COORDINATOR)
            .collect()
    }

    fn send(&self, site: SiteId, envelope: Envelope) {
        if let Some(tx) = self.routes.get(&site) {
            let _ = tx.send(envelope);
        }
    }

    /// Write `key := value` under `txn` at `site` (buffered until the
    /// transaction commits).
    pub fn apply(&self, site: SiteId, txn: TxnId, key: &[u8], value: &[u8]) {
        self.send(
            site,
            Envelope::Apply {
                txn,
                key: key.to_vec(),
                value: value.to_vec(),
            },
        );
    }

    /// Override the vote `site` will cast for `txn`.
    pub fn set_intent(&self, site: SiteId, txn: TxnId, vote: Vote) {
        self.send(site, Envelope::SetIntent { txn, vote });
    }

    /// Crash a site for `down_for`.
    pub fn crash(&self, site: SiteId, down_for: Duration) {
        self.send(site, Envelope::Crash { down_for });
    }

    /// Ask the coordinator to commit `txn` across `participants` and
    /// wait for the decision (with a generous timeout).
    pub fn commit(&self, txn: TxnId, participants: &[SiteId]) -> Option<Outcome> {
        let (tx, rx) = bounded(1);
        self.send(
            Self::COORDINATOR,
            Envelope::Commit {
                txn,
                participants: participants.to_vec(),
                reply: tx,
            },
        );
        rx.recv_timeout(Duration::from_secs(20)).ok()
    }

    /// Fire-and-forget commit (the decision is observable in the final
    /// report).
    pub fn commit_async(&self, txn: TxnId, participants: &[SiteId]) {
        let (tx, _rx) = bounded(1);
        self.send(
            Self::COORDINATOR,
            Envelope::Commit {
                txn,
                participants: participants.to_vec(),
                reply: tx,
            },
        );
    }

    /// Let in-flight work settle for `d`.
    pub fn settle(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Stop every thread and collect the final state.
    #[must_use]
    pub fn shutdown(self) -> ClusterReport {
        for tx in self.routes.values() {
            let _ = tx.send(Envelope::Shutdown);
        }
        let mut sites = Vec::new();
        let mut coordinator_table_size = 0;
        let mut group_commit = GroupCommitStats::default();
        let mut logical_forces = 0;
        let mut physical_syncs = 0;
        let mut absorb = |log: &crate::actor::NetLog| {
            group_commit.merge(&log.group_stats());
            logical_forces += acp_wal::StableLog::stats(log).forces;
            let inner = acp_wal::StableLog::stats(log.inner());
            physical_syncs += inner.forces + inner.flushes;
        };
        for (site, handle) in self.handles {
            match handle {
                SiteHandle::Coord(h) => {
                    let fin = h.join().expect("coordinator thread");
                    coordinator_table_size = fin.engine.protocol_table_size();
                    absorb(fin.engine.log());
                    sites.push(SiteSummary {
                        site,
                        enforced: BTreeMap::new(),
                        log_pinned: fin.engine.log_pinned(),
                        committed: BTreeMap::new(),
                    });
                }
                SiteHandle::Part(h) => {
                    let fin = h.join().expect("participant thread");
                    absorb(fin.engine.log());
                    sites.push(SiteSummary {
                        site,
                        enforced: fin.engine.enforced_all().clone(),
                        log_pinned: fin.engine.log_pinned(),
                        committed: fin
                            .storage
                            .store()
                            .iter()
                            .map(|(k, v)| (k.to_vec(), v.to_vec()))
                            .collect(),
                    });
                }
                SiteHandle::Gateway(h) => {
                    let fin = h.join().expect("gateway thread");
                    // Expose the legacy system's data as the site's
                    // committed state (still-applying write sets are not
                    // committed data yet).
                    let committed: BTreeMap<Vec<u8>, Vec<u8>> =
                        fin.engine.legacy().entries().into_iter().collect();
                    sites.push(SiteSummary {
                        site,
                        enforced: BTreeMap::new(),
                        log_pinned: Vec::new(),
                        committed,
                    });
                }
            }
        }
        let history = self.history.lock().clone();
        ClusterReport {
            history,
            coordinator_table_size,
            sites,
            group_commit,
            logical_forces,
            physical_syncs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_acta::check_atomicity;
    use acp_types::SelectionPolicy;

    fn prany_config() -> ClusterConfig {
        ClusterConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        )
    }

    #[test]
    fn commit_applies_data_at_all_participants() {
        let mut cluster = Cluster::spawn(&prany_config());
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        for &p in &parts {
            cluster.apply(p, txn, b"balance", b"100");
        }
        let outcome = cluster.commit(txn, &parts).expect("decision");
        assert_eq!(outcome, Outcome::Commit);
        cluster.settle(Duration::from_millis(300));
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.history).is_empty());
        for s in &report.sites {
            if s.site != Cluster::COORDINATOR {
                assert_eq!(
                    s.committed.get(b"balance".as_slice()).map(Vec::as_slice),
                    Some(b"100".as_slice()),
                    "site {}",
                    s.site
                );
            }
        }
        assert_eq!(report.coordinator_table_size, 0);
    }

    #[test]
    fn no_vote_aborts_the_whole_transaction() {
        let mut cluster = Cluster::spawn(&prany_config());
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        for &p in &parts {
            cluster.apply(p, txn, b"k", b"v");
        }
        cluster.set_intent(parts[0], txn, Vote::No);
        let outcome = cluster.commit(txn, &parts).expect("decision");
        assert_eq!(outcome, Outcome::Abort);
        cluster.settle(Duration::from_millis(300));
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.history).is_empty());
        for s in &report.sites {
            assert!(s.committed.is_empty(), "no data may commit at {}", s.site);
        }
    }

    #[test]
    fn read_only_transaction_commits_without_phase_two() {
        let mut cluster = Cluster::spawn(&prany_config());
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        // No Apply calls: both participants are read-only.
        let outcome = cluster.commit(txn, &parts).expect("decision");
        assert_eq!(outcome, Outcome::Commit);
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.history).is_empty());
    }

    #[test]
    fn participant_crash_during_commit_still_atomic() {
        let mut cluster = Cluster::spawn(&prany_config());
        let parts = cluster.participants();
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, b"x", b"1");
        }
        // Crash the PrC participant briefly right as commit processing
        // starts; it must converge via recovery + inquiry.
        cluster.commit_async(txn, &parts);
        cluster.crash(parts[1], Duration::from_millis(300));
        cluster.settle(Duration::from_millis(2_500));
        let report = cluster.shutdown();
        let v = check_atomicity(&report.history);
        assert!(v.is_empty(), "{v:?}");
        // Whatever was decided, both participants agree in data state.
        let datasets: Vec<_> = report
            .sites
            .iter()
            .filter(|s| s.site != Cluster::COORDINATOR)
            .map(|s| s.committed.clone())
            .collect();
        assert_eq!(datasets[0], datasets[1], "data diverged");
    }
}

#[cfg(test)]
mod gateway_tests {
    use super::*;
    use acp_acta::check_atomicity;
    use acp_types::SelectionPolicy;

    #[test]
    fn legacy_gateway_commits_alongside_native_sites() {
        let mut config = ClusterConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        config.gateways = vec![1]; // site 2 (PrC dialect) fronts a legacy system
        let mut cluster = Cluster::spawn(&config);
        let parts = cluster.participants();
        let txn = cluster.next_txn();
        cluster.apply(parts[0], txn, b"native", b"1");
        cluster.apply(parts[1], txn, b"legacy", b"2");
        let outcome = cluster.commit(txn, &parts).expect("decision");
        assert_eq!(outcome, Outcome::Commit);
        cluster.settle(Duration::from_millis(400));
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.history).is_empty());
        let gw = report
            .sites
            .iter()
            .find(|s| s.site == parts[1])
            .expect("gateway site");
        assert_eq!(
            gw.committed.get(b"legacy".as_slice()).map(Vec::as_slice),
            Some(b"2".as_slice()),
            "legacy system received the committed write"
        );
    }

    #[test]
    fn gateway_crash_mid_commit_still_applies_after_recovery() {
        let mut config = ClusterConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrA],
        );
        config.gateways = vec![0];
        let mut cluster = Cluster::spawn(&config);
        let parts = cluster.participants();
        let txn = cluster.next_txn();
        cluster.apply(parts[0], txn, b"k", b"v");
        cluster.apply(parts[1], txn, b"k", b"v");
        cluster.commit_async(txn, &parts);
        std::thread::sleep(Duration::from_millis(3));
        cluster.crash(parts[0], Duration::from_millis(250));
        cluster.settle(Duration::from_secs(2));
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.history).is_empty());
        // Whatever the outcome, gateway and native site agree on data.
        let gw = &report
            .sites
            .iter()
            .find(|s| s.site == parts[0])
            .unwrap()
            .committed;
        let native = &report
            .sites
            .iter()
            .find(|s| s.site == parts[1])
            .unwrap()
            .committed;
        assert_eq!(gw, native, "gateway and native data diverged");
    }
}

#[cfg(test)]
mod misuse_tests {
    use super::*;
    use acp_acta::check_atomicity;
    use acp_types::SelectionPolicy;

    #[test]
    fn duplicate_and_empty_commit_requests_do_not_kill_the_coordinator() {
        let mut cluster = Cluster::spawn(&ClusterConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        ));
        let parts = cluster.participants();
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, b"k", b"v");
        }
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        // Duplicate request for a decided transaction: answered from the
        // memo, not a panic.
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        // Empty participant list: rejected cleanly (None, fast).
        let t2 = cluster.next_txn();
        assert_eq!(cluster.commit(t2, &[]), None);
        // The coordinator is still alive and serving.
        let t3 = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, t3, b"k3", b"v3");
        }
        assert_eq!(cluster.commit(t3, &parts), Some(Outcome::Commit));
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.history).is_empty());
    }
}
