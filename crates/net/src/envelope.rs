//! Inter-thread messages.

use acp_types::{Message, Outcome, TxnId, Vote};
use crossbeam::channel::Sender;
use std::time::Duration;

/// Everything a site thread can receive.
pub enum Envelope {
    /// A protocol message from another site.
    Protocol(Message),
    /// Several protocol messages from one site, externalized together
    /// after a single group-commit force (ack piggybacking): the
    /// receiver processes them as if they arrived back-to-back.
    ProtocolBatch(Vec<Message>),
    /// Client data operation: upsert `key := value` under `txn` at this
    /// participant.
    Apply {
        /// The transaction.
        txn: TxnId,
        /// Key to write.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Client override of the vote this participant will cast for `txn`
    /// (test/benchmark hook; defaults derive from the engine state).
    SetIntent {
        /// The transaction.
        txn: TxnId,
        /// The vote to cast.
        vote: Vote,
    },
    /// Client request to the coordinator: run commit processing for
    /// `txn` across `participants` and report the decision.
    Commit {
        /// The transaction.
        txn: TxnId,
        /// Participant sites.
        participants: Vec<acp_types::SiteId>,
        /// Where to deliver the decision.
        reply: Sender<Outcome>,
    },
    /// Fault injection: fail-stop now, recover after `down_for`.
    Crash {
        /// Outage duration.
        down_for: Duration,
    },
    /// Orderly shutdown (the thread returns its final state).
    Shutdown,
}
