//! The runtime-internal message vocabulary: everything a hosted site
//! can be handed, across all four backends.
//!
//! An [`Envelope`] is the unit every runtime moves — the threaded
//! backend sends them over crossbeam channels, the reactor and
//! multi-reactor push them onto ready queues and mailboxes, and the
//! socket backend re-encodes the subset that may leave the process as
//! [`crate::wire::WireMsg`] frames. The variants split into three
//! kinds with different reach:
//!
//! * **protocol traffic** ([`Envelope::Protocol`],
//!   [`Envelope::ProtocolBatch`]) — the paper's messages, site to
//!   site; crosses shard mailboxes and the wire;
//! * **client verbs** ([`Envelope::Apply`], [`Envelope::SetIntent`],
//!   [`Envelope::Commit`]) — workload injection; `Apply`/`SetIntent`
//!   cross the wire, `Commit` never does (its `reply` channel only
//!   means something to the node hosting the coordinator);
//! * **host control** ([`Envelope::Crash`], [`Envelope::Shutdown`]) —
//!   fault injection and teardown; strictly process-local (on the
//!   socket backend a *process* is the failure domain, so crashing a
//!   hosted site severs that node's connections instead of sending
//!   anything).
//!
//! [`Envelope::owner_shard`] is the multi-reactor's routing table; see
//! its docs for the slicing rules.

use acp_core::shard_of;
use acp_types::{Message, Outcome, SiteId, TxnId, Vote};
use crossbeam::channel::Sender;
use std::time::Duration;

/// Everything a site thread can receive.
pub enum Envelope {
    /// A protocol message from another site.
    Protocol(Message),
    /// Several protocol messages from one site, externalized together
    /// after a single group-commit force (ack piggybacking): the
    /// receiver processes them as if they arrived back-to-back.
    ProtocolBatch(Vec<Message>),
    /// Client data operation: upsert `key := value` under `txn` at this
    /// participant.
    Apply {
        /// The transaction.
        txn: TxnId,
        /// Key to write.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Client override of the vote this participant will cast for `txn`
    /// (test/benchmark hook; defaults derive from the engine state).
    SetIntent {
        /// The transaction.
        txn: TxnId,
        /// The vote to cast.
        vote: Vote,
    },
    /// Client request to the coordinator: run commit processing for
    /// `txn` across `participants` and report the decision.
    Commit {
        /// The transaction.
        txn: TxnId,
        /// Participant sites.
        participants: Vec<acp_types::SiteId>,
        /// Where to deliver the decision.
        reply: Sender<Outcome>,
    },
    /// Fault injection: fail-stop now, recover after `down_for`.
    Crash {
        /// Outage duration.
        down_for: Duration,
    },
    /// Orderly shutdown (the thread returns its final state).
    Shutdown,
}

impl Envelope {
    /// The reactor shard that owns this envelope when it is addressed
    /// to `to` in an `n_shards`-way partition, or `None` for envelopes
    /// that must be broadcast to every shard.
    ///
    /// This is the multi-reactor's whole routing table:
    ///
    /// * participants and gateways live on one shard each —
    ///   `(site − 1) mod n_shards` — so anything addressed to them has
    ///   a unique owner;
    /// * the coordinator (site 0) is *sliced* across every shard by
    ///   transaction id ([`shard_of`]), so coordinator-bound envelopes
    ///   route by the transaction they carry (a [`Envelope::ProtocolBatch`]
    ///   routes by its first message — senders group batches per owner
    ///   shard, so every message in a batch has the same owner);
    /// * a coordinator crash and a shutdown have no transaction: every
    ///   shard's coordinator slice is part of the one logical site 0,
    ///   so those broadcast (`None`).
    #[must_use]
    pub fn owner_shard(&self, to: SiteId, n_shards: usize) -> Option<usize> {
        if n_shards <= 1 {
            return Some(0);
        }
        if to.raw() != 0 {
            return match self {
                Envelope::Shutdown => None,
                _ => Some((to.raw() as usize - 1) % n_shards),
            };
        }
        match self {
            Envelope::Protocol(msg) => Some(shard_of(msg.payload.txn(), n_shards)),
            Envelope::ProtocolBatch(msgs) => msgs
                .first()
                .map(|m| shard_of(m.payload.txn(), n_shards)),
            Envelope::Apply { txn, .. }
            | Envelope::SetIntent { txn, .. }
            | Envelope::Commit { txn, .. } => Some(shard_of(*txn, n_shards)),
            Envelope::Crash { .. } | Envelope::Shutdown => None,
        }
    }
}
