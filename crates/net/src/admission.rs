//! Admission control: refuse work at the door instead of collapsing
//! under it.
//!
//! The engines run no-wait 2PL, so contention does not queue — it
//! aborts. Past the saturation knee an open-loop generator therefore
//! turns extra offered load directly into abort/retry storms: every
//! admitted transaction grabs locks, collides, forces an abort record
//! and retries, and *goodput falls as offered load rises*. The repair
//! is classic: bound the in-flight population near the knee and shed
//! the excess at the door, before it costs any forces, messages or
//! lock footprint. Shed-vs-queue is deliberate — queuing an open-loop
//! arrival stream past saturation only moves the collapse into the
//! queue (latency grows without bound while goodput still falls);
//! shedding keeps the admitted population at the goodput-maximizing
//! level and pushes the excess back to the generator's retry policy,
//! which is the component with enough context to back off.
//!
//! An [`AdmissionController`] is a pure predicate over two observable
//! load signals — the cluster-wide
//! [`InflightGauge`](crate::reactor::InflightGauge) reading and the
//! host's pending-envelope backlog — so the same controller drives the
//! reactor, the multi-reactor shards, and the deterministic overload
//! model the figure pipeline replays. A refusal is always *counted*
//! (`ReactorStats::admission_sheds`, the `admission_shed` grid counter
//! and an [`AdmissionShed`](acp_obs::ProtocolEvent::AdmissionShed)
//! trace event) and *observable* by the client: the reply channel is
//! dropped, so the generator's `recv` fails fast and the rejection
//! feeds its retry policy rather than vanishing.

/// Bounds for an [`AdmissionController`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Admit a new transaction only while fewer than this many client
    /// commits are in flight cluster-wide. This is the knob that turns
    /// the overload cliff into a plateau: set it near the knee of the
    /// goodput curve.
    pub max_inflight: u64,
    /// Also refuse while the host's pending-envelope backlog (ready
    /// queue plus injector) is at or above this depth — a second line
    /// of defense against bursts that arrive faster than decisions
    /// retire. `usize::MAX` disables the queue-depth bound.
    pub max_queue: usize,
}

impl AdmissionConfig {
    /// Bound only the in-flight population (no queue-depth shedding).
    #[must_use]
    pub fn bounded(max_inflight: u64) -> AdmissionConfig {
        AdmissionConfig {
            max_inflight,
            max_queue: usize::MAX,
        }
    }
}

/// The admission predicate. Pure and stateless: counting sheds is the
/// host's job (the controller cannot know whether the caller acted on
/// its verdict), which is also what keeps it reusable inside the
/// deterministic overload model of the figure pipeline.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
}

impl AdmissionController {
    /// A controller enforcing `config`.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController { config }
    }

    /// The bounds being enforced.
    #[must_use]
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Should a new transaction be admitted given `inflight` commits
    /// outstanding and `queue_depth` envelopes pending on the host?
    #[must_use]
    pub fn admit(&self, inflight: u64, queue_depth: usize) -> bool {
        inflight < self.config.max_inflight && queue_depth < self.config.max_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_below_both_bounds_only() {
        let c = AdmissionController::new(AdmissionConfig {
            max_inflight: 4,
            max_queue: 10,
        });
        assert!(c.admit(0, 0));
        assert!(c.admit(3, 9));
        assert!(!c.admit(4, 0), "in-flight at the bound is refused");
        assert!(!c.admit(0, 10), "queue at the bound is refused");
        assert!(!c.admit(7, 12));
    }

    #[test]
    fn bounded_disables_the_queue_bound() {
        let c = AdmissionController::new(AdmissionConfig::bounded(2));
        assert!(c.admit(1, usize::MAX - 1));
        assert!(!c.admit(2, 0));
    }

    #[test]
    fn an_idle_cluster_always_admits() {
        // The byte-identity guarantee: a single clean transaction sees
        // zero in-flight and an empty queue, so any bound >= 1 admits
        // it and the trace is untouched.
        for limit in 1..10 {
            let c = AdmissionController::new(AdmissionConfig::bounded(limit));
            assert!(c.admit(0, 0));
        }
    }
}
