//! # acp-net
//!
//! A threaded actor runtime for the commit protocols: each site is an
//! OS thread (one actor per protocol role, per the reproduction plan),
//! crossbeam channels are the network, and every site persists its
//! protocol records in a file-backed WAL and its data in the
//! `acp-engine` storage engine with its own data log.
//!
//! The same sans-IO engines that run under the deterministic simulator
//! run here unchanged — this crate exists to demonstrate that, to host
//! the end-to-end throughput benchmarks (experiment E10), and to give
//! the examples a "real system" feel: crash a site and its volatile
//! state is really gone; only the files survive.
//!
//! Four backends share this crate:
//!
//! * the **threaded** backend ([`Cluster`]) — one OS thread and one
//!   crossbeam mailbox per site,
//! * the **reactor** backend ([`ReactorCluster`]) — a single-threaded
//!   event loop ([`reactor`]) that owns every site, fires timers off a
//!   hashed [`timer::TimerWheel`], batches each site's forced writes
//!   into one fsync per tick, and sustains thousands of concurrent
//!   in-flight transactions (experiment E13),
//! * the **multi-reactor** backend ([`MultiReactorCluster`]) — N
//!   reactor shards ([`multi_reactor`]) connected by lock-free
//!   mailboxes: the coordinator sliced by transaction id, participants
//!   partitioned by site id, one fsync domain and timer wheel per
//!   shard (experiment E14), and
//! * the **socket** backend ([`wire`], Unix only) — the reactor loop
//!   per OS process, hosting a subset of sites, with length-prefixed
//!   CRC-framed TCP between processes driven by a vendored epoll shim:
//!   real `kill -9` failure domains, real WAL-only recovery
//!   (experiment E15).
//!
//! All drive the identical engines and emit byte-identical trace
//! lines through the shared emission points in [`actor`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod admission;
pub mod cluster;
pub mod envelope;
pub mod multi_reactor;
pub mod reactor;
pub mod timer;
#[cfg(unix)]
pub mod wire;

pub use actor::{NetDelays, NetObs};
pub use admission::{AdmissionConfig, AdmissionController};
pub use cluster::{Cluster, ClusterConfig, ClusterReport, SiteSummary};
pub use envelope::Envelope;
pub use multi_reactor::{
    MultiReactorCluster, MultiReactorConfig, MultiReactorReport, ShardSummary,
};
pub use reactor::{
    InflightGauge, ReactorCluster, ReactorConfig, ReactorReport, ReactorStats, SnapshotCadence,
};
pub use timer::{TimerId, TimerWheel};
#[cfg(unix)]
pub use wire::{AddressBook, FaultRule, NodeConfig, NodeReport, SocketNode, WireFaults, WireMsg};
