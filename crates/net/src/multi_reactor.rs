//! The sharded multi-reactor runtime: the E13 event loop, scaled
//! across cores.
//!
//! One reactor thread is one core's worth of commit processing; this
//! module runs N of them over the same sans-IO engines and connects
//! them with lock-free mailboxes (the crossbeam channels every shard
//! already uses as its injector). The partition:
//!
//! * **Coordinator by transaction-id shard.** Coordinator state is
//!   per-transaction — the protocol table, the timers, the log records
//!   of transaction *t* never touch those of *t′* — so the one logical
//!   coordinator (site 0) is *sliced*: shard `s` runs a full
//!   coordinator engine, with its own WAL (`coord-s.wal`), that
//!   handles exactly the transactions with
//!   [`acp_core::shard_of`]`(t, N) == s`.
//! * **Participants and gateways by site id.** Site `p` lives entirely
//!   on shard `(p − 1) mod N`: its engine, storage, timers and WAL
//!   files all belong to that reactor.
//!
//! Each shard owns its own timer wheel, engines and a per-shard
//! [`acp_wal::FsyncDomain`] — the single-threaded analogue of the
//! [`acp_wal::SharedGroupLog`] leader election, electing the turn's
//! first forcing site as the round leader — so every shard is one
//! coalesced force domain: one force round per turn no matter how many
//! transactions progressed on it.
//!
//! Routing is [`Envelope::owner_shard`]: anything addressed to a
//! participant goes to its owning shard; anything addressed to the
//! coordinator routes by the transaction it carries. A cross-shard
//! "send" is one lock-free channel push ([`ReactorStats::mailbox_sends`]
//! counts them); an intra-shard send stays a `VecDeque` push exactly as
//! in the single reactor — which is why `N = 1` is behaviorally
//! *identical* to [`ReactorCluster`], not merely equivalent.
//!
//! Crash semantics survive the partition because they are per-site and
//! sites are never split: a participant crash drops its staged records
//! and withheld sends together on its one owning shard. A coordinator
//! crash broadcasts — every slice is part of the one logical site 0 —
//! and each slice drops its own staged batch and withheld sends; only
//! shard 0's slice narrates the crash/recovery, so the history still
//! reads as one site failing.
//!
//! Observability: each reactor feeds its own [`MetricsRegistry`]
//! (lock-free, so this is optional — but per-reactor registries keep
//! snapshot cadence local) and pushes snapshots into a per-reactor
//! [`MetricsTimeline`]; [`MultiReactorCluster::shutdown`] merges them
//! into one deterministic sequence with
//! [`MetricsTimeline::merged`]. In-flight commits aggregate across
//! reactors through the shared
//! [`InflightGauge`](crate::reactor::InflightGauge).

use crate::actor::SharedHistory;
use crate::cluster::{ClusterReport, SiteSummary};
use crate::envelope::Envelope;
use crate::reactor::{
    spawn_shard, InflightGauge, ReactorCluster, ReactorConfig, ReactorReport, ReactorStats,
    ShardSpec,
};
use acp_acta::History;
use acp_obs::{
    CountingSink, FanoutSink, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    MetricsTimeline, TraceSink,
};
use acp_types::{Outcome, SiteId, TxnId, Vote};
use acp_wal::tempdir::TempDir;
use acp_wal::{DomainStats, GroupCommitStats};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Multi-reactor parameters: the per-shard reactor configuration plus
/// the partition shape.
#[derive(Clone, Debug)]
pub struct MultiReactorConfig {
    /// Per-shard reactor configuration (cluster shape, commit window,
    /// snapshot cadence — each reactor applies it to the sites it
    /// owns).
    pub reactor: ReactorConfig,
    /// Number of reactor threads (≥ 1). `1` is exactly the
    /// single-reactor runtime.
    pub reactors: usize,
    /// Override each coordinator slice's protocol-table shard count
    /// (`None` keeps [`acp_core::TABLE_SHARDS`]). Slices see a sparse
    /// transaction-id subsequence, so hosts can size table sharding to
    /// the expected per-slice load.
    pub table_shards: Option<usize>,
}

impl MultiReactorConfig {
    /// A partition of `reactors` shards over `reactor`'s cluster shape.
    #[must_use]
    pub fn new(reactor: ReactorConfig, reactors: usize) -> Self {
        MultiReactorConfig {
            reactor,
            reactors: reactors.max(1),
            table_shards: None,
        }
    }
}

/// One shard's slice of the final report.
#[derive(Clone, Copy, Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// The shard's loop counters.
    pub stats: ReactorStats,
    /// The shard's fsync-domain coalescing counters — the per-shard
    /// force accounting proving each shard is one coalesced force
    /// domain.
    pub fsync: DomainStats,
    /// The shard's group-commit counters.
    pub group_commit: GroupCommitStats,
    /// Coordinator-slice protocol-table size at shutdown.
    pub coordinator_table_size: usize,
    /// Forced appends the shard's protocols requested.
    pub logical_forces: u64,
    /// Physical syncs the shard's WAL files performed.
    pub physical_syncs: u64,
}

/// What [`MultiReactorCluster::shutdown`] hands back.
pub struct MultiReactorReport {
    /// The merged, backend-independent cluster report: one history, one
    /// coordinator summary (slices merged — table sizes summed, pinned
    /// logs concatenated), every participant exactly once.
    pub cluster: ClusterReport,
    /// Merged loop counters (sums; `max_inflight` is the max of shard
    /// peaks — see [`MultiReactorReport::max_inflight`] for the true
    /// aggregate).
    pub stats: ReactorStats,
    /// Merged fsync-domain counters.
    pub fsync: DomainStats,
    /// Per-shard breakdowns, by shard index.
    pub per_shard: Vec<ShardSummary>,
    /// Most client commits simultaneously in flight across the whole
    /// cluster (the shared gauge's peak — the cross-reactor `in_flight`
    /// aggregate).
    pub max_inflight: u64,
    /// Merged metrics timeline: every shard's snapshots in one
    /// deterministic order, tagged with their shard index. Empty unless
    /// spawned with [`MultiReactorCluster::spawn_observed`].
    pub timeline: Vec<(usize, MetricsSnapshot)>,
    /// Each shard's metrics registry (empty unless observed). Protocol
    /// cost totals for the whole cluster are per-cell sums over these.
    pub registries: Vec<Arc<MetricsRegistry>>,
    /// Cluster-wide commit-latency histogram: every shard's
    /// admission-to-delivery samples merged bucket-wise (histograms
    /// aggregate commutatively, like the counter grid), so the p50 /
    /// p99 / p999 tails cover all delivered decisions.
    pub latency: HistogramSnapshot,
}

/// A running multi-reactor cluster: same client API as
/// [`ReactorCluster`], N event-loop threads behind it.
pub struct MultiReactorCluster {
    txs: Vec<Sender<(SiteId, Envelope)>>,
    handles: Vec<JoinHandle<ReactorReport>>,
    history: SharedHistory,
    inflight: Arc<InflightGauge>,
    registries: Vec<Arc<MetricsRegistry>>,
    timelines: Vec<Arc<MetricsTimeline>>,
    next_txn: u64,
    n_sites: usize,
    n_shards: usize,
    _dir: TempDir,
}

impl MultiReactorCluster {
    /// The coordinator's site id.
    pub const COORDINATOR: SiteId = ReactorCluster::COORDINATOR;

    /// Spawn with tracing and metrics off.
    #[must_use]
    pub fn spawn(config: &MultiReactorConfig) -> MultiReactorCluster {
        Self::spawn_inner(config, None, false)
    }

    /// Spawn with a trace sink shared by every shard (events carry site
    /// ids, so per-site trace projections stay deterministic even
    /// though shards interleave their writes).
    #[must_use]
    pub fn spawn_with_sink(
        config: &MultiReactorConfig,
        sink: Arc<dyn TraceSink>,
    ) -> MultiReactorCluster {
        Self::spawn_inner(config, Some(sink), false)
    }

    /// Spawn with a live metrics surface: each shard gets its own
    /// [`MetricsRegistry`] fed by a per-shard
    /// [`CountingSink`] (fanned out with `sink`, if given) and
    /// snapshots it into its own [`MetricsTimeline`] on the configured
    /// cadence. The final report merges the timelines.
    #[must_use]
    pub fn spawn_observed(
        config: &MultiReactorConfig,
        sink: Option<Arc<dyn TraceSink>>,
    ) -> MultiReactorCluster {
        Self::spawn_inner(config, sink, true)
    }

    fn spawn_inner(
        config: &MultiReactorConfig,
        sink: Option<Arc<dyn TraceSink>>,
        observed: bool,
    ) -> MultiReactorCluster {
        assert!(
            config.reactor.cluster.paxos_f.is_none(),
            "the reactor backends host no paxos acceptors; use the socket backend"
        );
        let n = config.reactors.max(1);
        let t0 = Instant::now();
        let dir = TempDir::new("multi-reactor").expect("tempdir");
        let history: SharedHistory = Arc::new(Mutex::new(History::new()));
        let inflight = Arc::new(InflightGauge::new());

        let channels: Vec<(Sender<(SiteId, Envelope)>, Receiver<(SiteId, Envelope)>)> =
            (0..n).map(|_| unbounded()).collect();
        let txs: Vec<_> = channels.iter().map(|(tx, _)| tx.clone()).collect();

        let mut registries = Vec::new();
        let mut timelines = Vec::new();
        let mut handles = Vec::new();
        for (shard, (_, rx)) in channels.into_iter().enumerate() {
            let (shard_sink, registry, timeline) = if observed {
                let registry = Arc::new(MetricsRegistry::new());
                let timeline = Arc::new(MetricsTimeline::new());
                let counting: Arc<dyn TraceSink> =
                    Arc::new(CountingSink::new(Arc::clone(&registry)));
                let shard_sink: Arc<dyn TraceSink> = match &sink {
                    Some(user) => {
                        Arc::new(FanoutSink::new(vec![Arc::clone(user), counting]))
                    }
                    None => counting,
                };
                registries.push(Arc::clone(&registry));
                timelines.push(Arc::clone(&timeline));
                (Some(shard_sink), Some(registry), Some(timeline))
            } else {
                (sink.clone(), None, None)
            };
            handles.push(spawn_shard(
                ShardSpec {
                    shard,
                    n_shards: n,
                    config: config.reactor.clone(),
                    rx,
                    peers: txs.clone(),
                    history: Arc::clone(&history),
                    inflight: Arc::clone(&inflight),
                    sink: shard_sink,
                    registry,
                    timeline,
                    t0,
                    table_shards: config.table_shards,
                },
                dir.path(),
            ));
        }

        MultiReactorCluster {
            txs,
            handles,
            history,
            inflight,
            registries,
            timelines,
            next_txn: 1,
            n_sites: config.reactor.cluster.participant_protocols.len() + 1,
            n_shards: n,
            _dir: dir,
        }
    }

    /// Number of reactor threads.
    #[must_use]
    pub fn reactors(&self) -> usize {
        self.n_shards
    }

    /// Commits currently awaiting a decision, cluster-wide.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.current()
    }

    /// Allocate a fresh transaction id.
    pub fn next_txn(&mut self) -> TxnId {
        let t = TxnId::new(self.next_txn);
        self.next_txn += 1;
        t
    }

    /// All participant site ids.
    #[must_use]
    pub fn participants(&self) -> Vec<SiteId> {
        (1..self.n_sites as u32).map(SiteId::new).collect()
    }

    /// Route an envelope to its owning reactor.
    fn send(&self, site: SiteId, envelope: Envelope) {
        match envelope.owner_shard(site, self.n_shards) {
            Some(s) => {
                let _ = self.txs[s].send((site, envelope));
            }
            // Broadcast envelopes are rebuilt per shard by their
            // dedicated entry points (crash / shutdown); an unroutable
            // envelope reaching here is a bug.
            None => unreachable!("broadcast envelope in send()"),
        }
    }

    /// Write `key := value` under `txn` at `site`.
    pub fn apply(&self, site: SiteId, txn: TxnId, key: &[u8], value: &[u8]) {
        self.send(
            site,
            Envelope::Apply {
                txn,
                key: key.to_vec(),
                value: value.to_vec(),
            },
        );
    }

    /// Override the vote `site` will cast for `txn`.
    pub fn set_intent(&self, site: SiteId, txn: TxnId, vote: Vote) {
        self.send(site, Envelope::SetIntent { txn, vote });
    }

    /// Crash a site for `down_for`. Crashing the coordinator crashes
    /// every slice of it — the slices are one logical site, so one
    /// crash is delivered to each shard (and the history records a
    /// single crash/recovery, narrated by shard 0).
    pub fn crash(&self, site: SiteId, down_for: Duration) {
        match (Envelope::Crash { down_for }).owner_shard(site, self.n_shards) {
            Some(s) => {
                let _ = self.txs[s].send((site, Envelope::Crash { down_for }));
            }
            None => {
                for tx in &self.txs {
                    let _ = tx.send((site, Envelope::Crash { down_for }));
                }
            }
        }
    }

    /// Commit `txn` across `participants`; wait for the decision.
    pub fn commit(&self, txn: TxnId, participants: &[SiteId]) -> Option<Outcome> {
        self.commit_async(txn, participants)
            .recv_timeout(Duration::from_secs(20))
            .ok()
    }

    /// Start commit processing on the owning shard; the returned
    /// channel yields the decision when it is durable.
    #[must_use]
    pub fn commit_async(&self, txn: TxnId, participants: &[SiteId]) -> Receiver<Outcome> {
        let (tx, rx) = bounded(1);
        self.send(
            Self::COORDINATOR,
            Envelope::Commit {
                txn,
                participants: participants.to_vec(),
                reply: tx,
            },
        );
        rx
    }

    /// Let in-flight work settle for `d`.
    pub fn settle(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Stop every reactor and merge their final states.
    #[must_use]
    pub fn shutdown(self) -> MultiReactorReport {
        for tx in &self.txs {
            let _ = tx.send((Self::COORDINATOR, Envelope::Shutdown));
        }
        let reports: Vec<ReactorReport> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("reactor thread"))
            .collect();

        // The history is shared — clone it once, after every shard has
        // stopped pushing, instead of trusting any one shard's clone.
        let history = self.history.lock().clone();

        let mut stats = ReactorStats::default();
        let mut fsync = DomainStats::default();
        let mut group_commit = GroupCommitStats::default();
        let mut logical_forces = 0;
        let mut physical_syncs = 0;
        let mut coordinator_table_size = 0;
        let mut coord_pinned: Vec<TxnId> = Vec::new();
        let mut participant_sites: BTreeMap<u32, SiteSummary> = BTreeMap::new();
        let mut per_shard = Vec::new();
        let mut latency = HistogramSnapshot::new();

        for (shard, r) in reports.into_iter().enumerate() {
            stats.merge(&r.stats);
            fsync.merge(&r.fsync);
            latency.merge(&r.latency);
            group_commit.merge(&r.cluster.group_commit);
            logical_forces += r.cluster.logical_forces;
            physical_syncs += r.cluster.physical_syncs;
            coordinator_table_size += r.cluster.coordinator_table_size;
            per_shard.push(ShardSummary {
                shard,
                stats: r.stats,
                fsync: r.fsync,
                group_commit: r.cluster.group_commit,
                coordinator_table_size: r.cluster.coordinator_table_size,
                logical_forces: r.cluster.logical_forces,
                physical_syncs: r.cluster.physical_syncs,
            });
            for summary in r.cluster.sites {
                if summary.site == Self::COORDINATOR {
                    coord_pinned.extend(summary.log_pinned);
                } else {
                    participant_sites.insert(summary.site.raw(), summary);
                }
            }
        }
        coord_pinned.sort_unstable();

        let mut sites = Vec::with_capacity(participant_sites.len() + 1);
        sites.push(SiteSummary {
            site: Self::COORDINATOR,
            enforced: BTreeMap::new(),
            log_pinned: coord_pinned,
            committed: BTreeMap::new(),
        });
        sites.extend(participant_sites.into_values());

        let timeline =
            MetricsTimeline::merged(&self.timelines.iter().map(Arc::as_ref).collect::<Vec<_>>());

        MultiReactorReport {
            cluster: ClusterReport {
                history,
                coordinator_table_size,
                sites,
                group_commit,
                logical_forces,
                physical_syncs,
            },
            stats,
            fsync,
            per_shard,
            max_inflight: self.inflight.peak(),
            timeline,
            registries: self.registries,
            latency,
        }
    }
}
