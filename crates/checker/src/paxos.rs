//! Bounded exploration for Paxos Commit clusters.
//!
//! The classic checker ([`crate::explore`]) explores a single
//! coordinator against its participants; the failure model there is
//! crash+recover. Paxos Commit exists for a *harsher* model — permanent
//! coordinator loss — so this exploration adds a **kill** move:
//! fail-stop with no recovery, applicable to any acceptor including the
//! leader. Killed sites receive nothing ever again; their accepted
//! bundles survive only as replicas on the other `2f` acceptors, which
//! is exactly the mechanism under test.
//!
//! At every state the ACTA history is checked for atomicity (the same
//! invariant as the classic checker: a failover candidate that decides
//! differently from the dead leader shows up here as a divergent
//! `Decide`). At terminal states the Definition-2 safe-state predicate
//! is additionally evaluated in its replicated form (see
//! [`replicated_safe_state`]): every inquiry response given by any
//! replica — post-forget responses are by presumption — must match the
//! cluster's decided outcome.
//!
//! The exploration is a serial BFS: the replicated-coordinator
//! configurations worth checking are small (the cluster adds `2f`
//! engines but the per-transaction protocol is still one instance per
//! participant), and a serial frontier keeps the report trivially
//! deterministic. Counterexample trails are shortest witnesses, as in
//! the classic checker.

use crate::report::{CheckReport, Counterexample};
use crate::state::{ArmedTimer, CheckState, Trail};
use acp_acta::{check_atomicity, History};
use acp_core::paxos::{PaxosConfig, PaxosNode};
use acp_core::{Action, Participant};
use acp_types::{Message, Payload, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::MemLog;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

/// What to explore.
#[derive(Clone, Debug)]
pub struct PaxosCheckConfig {
    /// Participant count `N` (PrN engines at sites `1..=N`).
    pub n_participants: usize,
    /// Tolerated failures `f`: acceptors at site 0 and `N+1..=N+2f`.
    pub f: usize,
    /// Per-participant votes (sites `1..=N` in order); missing entries
    /// vote `Yes`.
    pub votes: Vec<Vote>,
    /// How many **permanent** kills may occur (any acceptor, any point).
    pub kills: u8,
    /// How many crash+recover events may occur (any site, any point).
    pub crashes: u8,
    /// How many messages may be dropped.
    pub drops: u8,
    /// How many timers may fire.
    pub timer_fires: u8,
    /// State-count safety valve.
    pub max_states: usize,
}

impl PaxosCheckConfig {
    /// A default bounded configuration: one permanent kill, no
    /// crash+recover, no drops, two timer firings — the leader-failover
    /// envelope (one completion watchdog, one decision resend).
    #[must_use]
    pub fn new(n_participants: usize, f: usize) -> Self {
        PaxosCheckConfig {
            n_participants,
            f,
            votes: Vec::new(),
            kills: 1,
            crashes: 0,
            drops: 0,
            timer_fires: 2,
            max_states: 2_000_000,
        }
    }

    fn leader(&self) -> SiteId {
        SiteId::new(0)
    }

    fn participant_sites(&self) -> Vec<SiteId> {
        (1..=self.n_participants as u32).map(SiteId::new).collect()
    }

    fn paxos_config(&self) -> PaxosConfig {
        let n = self.n_participants as u32;
        let mut acceptors = vec![self.leader()];
        acceptors.extend((n + 1..=n + 2 * self.f as u32).map(SiteId::new));
        PaxosConfig::new(acceptors)
    }
}

/// The transaction every exploration runs.
const TXN: TxnId = TxnId(1);

/// One complete cluster state of the bounded exploration.
struct PaxosState {
    nodes: BTreeMap<SiteId, PaxosNode<MemLog>>,
    parts: BTreeMap<SiteId, Participant<MemLog>>,
    /// Permanently killed sites: deliver nothing, fire nothing, forever.
    dead: BTreeSet<SiteId>,
    in_flight: Vec<Message>,
    timers: BTreeSet<ArmedTimer>,
    kills_left: u8,
    crashes_left: u8,
    drops_left: u8,
    timers_left: u8,
    history: History,
    trail: Trail,
}

impl Clone for PaxosState {
    fn clone(&self) -> Self {
        PaxosState {
            nodes: self.nodes.clone(),
            parts: self.parts.clone(),
            dead: self.dead.clone(),
            in_flight: self.in_flight.clone(),
            timers: self.timers.clone(),
            kills_left: self.kills_left,
            crashes_left: self.crashes_left,
            drops_left: self.drops_left,
            timers_left: self.timers_left,
            history: self.history.clone(),
            trail: self.trail.clone(),
        }
    }
}

impl PaxosState {
    /// Absorb a batch of engine actions at `site`. Sends addressed to a
    /// killed site are discarded outright — nothing can ever deliver
    /// them, and keeping them would only inflate the state space.
    fn absorb(&mut self, site: SiteId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    if !self.dead.contains(&to) {
                        self.in_flight.push(Message::new(site, to, payload));
                    }
                }
                Action::SetTimer { token, purpose, .. } => {
                    self.timers.insert(ArmedTimer {
                        site,
                        token,
                        purpose,
                    });
                }
                Action::Acta(e) => self.history.push(e),
                Action::Enforce { .. } | Action::Gc { .. } => {}
            }
        }
    }

    fn deliverable(&self) -> Vec<usize> {
        let mut seen_links: BTreeSet<(SiteId, SiteId)> = BTreeSet::new();
        let mut idxs = Vec::new();
        for (i, m) in self.in_flight.iter().enumerate() {
            if seen_links.insert((m.from, m.to)) {
                idxs.push(i);
            }
        }
        idxs
    }

    fn dispatch(&mut self, to: SiteId, from: SiteId, payload: &Payload) {
        let actions = if let Some(node) = self.nodes.get_mut(&to) {
            node.on_message(from, payload)
        } else {
            self.parts
                .get_mut(&to)
                .expect("site")
                .on_message(from, payload)
        };
        self.absorb(to, actions);
    }

    fn is_terminal(&self) -> bool {
        self.in_flight.is_empty() && (self.timers.is_empty() || self.timers_left == 0)
    }

    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (site, n) in &self.nodes {
            site.hash(&mut h);
            n.hash_state(&mut h);
        }
        for (site, p) in &self.parts {
            site.hash(&mut h);
            p.hash_state(&mut h);
        }
        self.dead.hash(&mut h);
        let mut links: Vec<(SiteId, SiteId)> =
            self.in_flight.iter().map(|m| (m.from, m.to)).collect();
        links.sort_unstable();
        links.dedup();
        for &(from, to) in &links {
            (from, to).hash(&mut h);
            for m in &self.in_flight {
                if m.from == from && m.to == to {
                    m.payload.hash(&mut h);
                }
            }
        }
        for t in &self.timers {
            (t.site, t.token).hash(&mut h);
        }
        (
            self.kills_left,
            self.crashes_left,
            self.drops_left,
            self.timers_left,
        )
            .hash(&mut h);
        h.finish()
    }
}

fn initial_state(config: &PaxosCheckConfig) -> PaxosState {
    let pc = config.paxos_config();
    let mut nodes = BTreeMap::new();
    for &site in &pc.acceptors {
        nodes.insert(site, PaxosNode::new(site, pc.clone(), MemLog::new()));
    }
    let mut parts = BTreeMap::new();
    for (i, site) in config.participant_sites().into_iter().enumerate() {
        let mut p = Participant::new(site, ProtocolKind::PrN, MemLog::new());
        if let Some(&v) = config.votes.get(i) {
            p.set_intent(TXN, v);
        }
        parts.insert(site, p);
    }
    let mut state = PaxosState {
        nodes,
        parts,
        dead: BTreeSet::new(),
        in_flight: Vec::new(),
        timers: BTreeSet::new(),
        kills_left: config.kills,
        crashes_left: config.crashes,
        drops_left: config.drops,
        timers_left: config.timer_fires,
        history: History::new(),
        trail: Trail::new(),
    };
    let sites = config.participant_sites();
    let actions = state
        .nodes
        .get_mut(&config.leader())
        .expect("leader")
        .begin_commit(TXN, &sites);
    state.absorb(config.leader(), actions);
    state.trail.push("begin commit");
    state
}

/// All successor states of `state`.
fn successors(state: &PaxosState) -> Vec<PaxosState> {
    let mut next = Vec::new();

    // 1. Deliver the head message of any link.
    for idx in state.deliverable() {
        let mut s = state.clone();
        let msg = s.in_flight.remove(idx);
        s.trail
            .push(format!("deliver {}", CheckState::describe_message(&msg)));
        s.dispatch(msg.to, msg.from, &msg.payload);
        next.push(s);
    }

    // 2. Drop the head message of any link (omission failure).
    if state.drops_left > 0 {
        for idx in state.deliverable() {
            let mut s = state.clone();
            let msg = s.in_flight.remove(idx);
            s.drops_left -= 1;
            s.trail
                .push(format!("DROP {}", CheckState::describe_message(&msg)));
            next.push(s);
        }
    }

    // 3. KILL any live acceptor: permanent fail-stop. Volatile state and
    //    armed timers die; messages in flight to the site are lost; the
    //    site never acts again. This is the move 2PC cannot survive.
    if state.kills_left > 0 {
        for &site in state.nodes.keys() {
            if state.dead.contains(&site) {
                continue;
            }
            let mut s = state.clone();
            s.kills_left -= 1;
            s.dead.insert(site);
            s.in_flight.retain(|m| m.to != site);
            s.timers.retain(|t| t.site != site);
            s.trail.push(format!("KILL {site}"));
            s.history.push(acp_acta::ActaEvent::Crash { site });
            s.nodes.get_mut(&site).expect("site").crash();
            next.push(s);
        }
    }

    // 4. Crash + recover any live site (acceptor or participant).
    if state.crashes_left > 0 {
        let sites: Vec<SiteId> = state
            .nodes
            .keys()
            .chain(state.parts.keys())
            .copied()
            .filter(|s| !state.dead.contains(s))
            .collect();
        for site in sites {
            let mut s = state.clone();
            s.crashes_left -= 1;
            s.in_flight.retain(|m| m.to != site);
            s.timers.retain(|t| t.site != site);
            s.trail.push(format!("CRASH+RECOVER {site}"));
            s.history.push(acp_acta::ActaEvent::Crash { site });
            let actions = if let Some(node) = s.nodes.get_mut(&site) {
                node.crash();
                node.recover()
            } else {
                let p = s.parts.get_mut(&site).expect("site");
                p.crash();
                p.recover()
            };
            s.history.push(acp_acta::ActaEvent::Recover { site });
            s.absorb(site, actions);
            next.push(s);
        }
    }

    // 5. Fire any armed timer at a live site — but only when the
    //    network is quiescent. Timeout bases (80ms+) dwarf message
    //    latency (200us) by construction, so a timer firing while the
    //    message it waits for is still in flight is not a realizable
    //    schedule; excluding those races is what keeps the replicated
    //    cluster's interleaving space within exhaustive reach. Drops,
    //    kills and crashes all *create* quiescent states, so every
    //    interesting timeout schedule (lost vote, dead leader, lost
    //    decision) is still explored.
    if state.in_flight.is_empty() && state.timers_left > 0 {
        let timers: Vec<ArmedTimer> = state.timers.iter().cloned().collect();
        for t in timers {
            if state.dead.contains(&t.site) {
                continue;
            }
            let mut s = state.clone();
            s.timers.remove(&t);
            s.timers_left -= 1;
            s.trail.push(format!("timer {} at {}", t.purpose, t.site));
            let actions = if let Some(node) = s.nodes.get_mut(&t.site) {
                node.on_timer(t.token)
            } else {
                s.parts.get_mut(&t.site).expect("site").on_timer(t.token)
            };
            s.absorb(t.site, actions);
            next.push(s);
        }
    }

    next
}

/// Definition 2 for a *replicated* coordinator.
///
/// [`acp_acta::check_safe_state`] assumes the single-coordinator world: every
/// inquiry in the history is implicitly addressed to the one
/// coordinator, so an unanswered post-forget inquiry is a violation.
/// In a cluster, a participant may address its inquiry to a **dead**
/// replica — `Inquire` events carry no target — and silence from a
/// corpse is a liveness concern, not a presumption error. What
/// Definition 2 pins down here is the part that can actually go wrong:
/// any response any replica *does* give (post-forget responses are by
/// presumption) must match the cluster's decided outcome. Divergent
/// `Decide`s across replicas are the atomicity checker's business.
fn replicated_safe_state(history: &History) -> Vec<acp_acta::AtomicityViolation> {
    use acp_acta::ActaEvent;
    let decided = history.events().iter().find_map(|e| match e {
        ActaEvent::Decide { txn, outcome, .. } if *txn == TXN => Some(*outcome),
        _ => None,
    });
    let Some(decided) = decided else {
        return Vec::new();
    };
    let mut violations = Vec::new();
    for e in history.events() {
        if let ActaEvent::Respond {
            coordinator,
            txn,
            participant,
            outcome,
            ..
        } = e
        {
            if *txn == TXN && *outcome != decided {
                violations.push(acp_acta::AtomicityViolation {
                    txn: *txn,
                    detail: format!(
                        "safe-state: {coordinator} answered {participant}'s inquiry \
                         with {outcome}, but the cluster decided {decided}"
                    ),
                });
            }
        }
    }
    violations
}

/// Run the bounded exploration of a Paxos Commit cluster.
#[must_use]
pub fn check_paxos(config: &PaxosCheckConfig) -> CheckReport {
    let mut report = CheckReport::default();
    let mut seen: HashSet<u64> = HashSet::new();

    let init = initial_state(config);
    seen.insert(init.fingerprint());
    let mut frontier = vec![init];

    while !frontier.is_empty() {
        let budget = config.max_states.saturating_sub(report.states_explored);
        if frontier.len() >= budget {
            frontier.truncate(budget);
            report.truncated = true;
        }
        report.states_explored += frontier.len();
        if std::env::var_os("ACP_CHECK_DEBUG").is_some() {
            eprintln!(
                "level: frontier={} explored={} terminal={}",
                frontier.len(),
                report.states_explored,
                report.terminal_states
            );
        }

        let mut next = Vec::new();
        for state in &frontier {
            let mut violations = check_atomicity(&state.history);
            if state.is_terminal() {
                report.terminal_states += 1;
                // Live-node residency: killed sites hold their tables
                // forever by construction, which is not a leak.
                let table = state
                    .nodes
                    .iter()
                    .filter(|(s, _)| !state.dead.contains(s))
                    .map(|(_, n)| n.protocol_table_size())
                    .max()
                    .unwrap_or(0);
                report.max_terminal_table = report.max_terminal_table.max(table);
                if table == 0 {
                    report.terminal_states_fully_forgotten += 1;
                }
                violations.extend(replicated_safe_state(&state.history));
            }
            if !violations.is_empty() {
                let trail = state.trail.to_vec();
                let history = state.history.to_string();
                for v in violations {
                    report.counterexamples.push(Counterexample {
                        violation: v,
                        trail: trail.clone(),
                        history: history.clone(),
                        count: 1,
                    });
                }
                continue;
            }

            for s in successors(state) {
                if seen.insert(s.fingerprint()) {
                    next.push(s);
                }
            }
        }

        if report.truncated {
            break;
        }
        frontier = next;
    }

    report.canonicalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{check, CheckConfig};
    use acp_types::CoordinatorKind;

    #[test]
    fn f1_survives_a_leader_kill_without_violations() {
        // One participant, three acceptors, one permanent kill anywhere,
        // two timer firings: every interleaving — including kill-the-
        // leader-after-phase2a followed by a watchdog failover — must
        // keep the history atomic and the terminal states safe.
        let config = PaxosCheckConfig::new(1, 1);
        let report = check_paxos(&config);
        assert!(!report.truncated, "{report}");
        assert!(report.clean(), "{report}");
        assert!(report.terminal_states > 0);
        // Some branch completes fully (kill spent on a non-critical
        // acceptor, or not at all... the budget is optional).
        assert!(report.terminal_states_fully_forgotten > 0, "{report}");
    }

    #[test]
    fn f1_with_two_participants_and_a_no_voter_stays_clean() {
        let mut config = PaxosCheckConfig::new(2, 1);
        config.votes = vec![Vote::Yes, Vote::No];
        config.timer_fires = 1;
        let report = check_paxos(&config);
        assert!(!report.truncated, "{report}");
        assert!(report.clean(), "{report}");
        assert!(report.terminal_states > 0);
    }

    #[test]
    fn f1_with_crash_recover_and_drops_stays_clean() {
        let mut config = PaxosCheckConfig::new(1, 1);
        config.kills = 1;
        config.crashes = 1;
        config.drops = 1;
        config.timer_fires = 2;
        config.max_states = 8_000_000;
        let report = check_paxos(&config);
        assert!(!report.truncated, "{report}");
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn f0_verdicts_match_the_classic_prn_exploration() {
        // Satellite: with one acceptor, the Paxos exploration must agree
        // with the classic checker on PrN — clean, complete, and with
        // fully-forgotten terminal states on both sides.
        let mut paxos_cfg = PaxosCheckConfig::new(2, 0);
        paxos_cfg.kills = 0;
        paxos_cfg.crashes = 1;
        paxos_cfg.drops = 1;
        paxos_cfg.timer_fires = 2;
        let paxos = check_paxos(&paxos_cfg);

        let classic_cfg = CheckConfig::new(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN, ProtocolKind::PrN],
        );
        let classic = check(&classic_cfg);

        assert!(!paxos.truncated && !classic.truncated);
        assert_eq!(paxos.clean(), classic.clean(), "paxos={paxos} classic={classic}");
        assert!(paxos.clean());
        assert!(paxos.terminal_states > 0 && classic.terminal_states > 0);
        assert_eq!(
            paxos.terminal_states_fully_forgotten > 0,
            classic.terminal_states_fully_forgotten > 0
        );
    }
}
