//! The bounded exploration: a level-synchronized parallel BFS with
//! work-stealing distribution.
//!
//! # Why this shape
//!
//! The checker's output must be **bit-for-bit identical for every
//! thread count** — the experiments print report fields and diff them,
//! and a nondeterministic checker is useless as evidence. A naive
//! shared-stack parallel DFS breaks that: state fingerprints exclude
//! the history/trail, so *which* representative path survives
//! deduplication depends on which worker wins the race into the `seen`
//! set.
//!
//! Instead the exploration proceeds in BFS levels:
//!
//! 1. The current frontier (all states at the same depth, already
//!    deduplicated) is split into fixed index-ordered chunks.
//! 2. Chunks are pushed into a [`crossbeam::deque::Injector`] and
//!    workers steal them — dynamic load balancing, but *which worker*
//!    processes a chunk cannot affect its result. During this phase the
//!    `seen` set is read-only (a concurrent `contains` pre-filter
//!    discards most duplicate successors cheaply).
//! 3. Per-chunk outcomes are merged serially in chunk-index order; the
//!    merge performs the authoritative `seen.insert` and builds the
//!    next frontier. Duplicate fingerprints that race within a level
//!    are therefore resolved in a scheduling-independent order.
//!
//! `threads = 1` runs the identical code path inline, so the serial
//! report is the definition of correct, and BFS order means reported
//! counterexample trails are shortest witnesses.

use crate::report::{CheckReport, Counterexample};
use crate::state::{ArmedTimer, CheckState, COORD};
use acp_acta::check_atomicity;
use acp_core::{Coordinator, Participant};
use acp_types::{CoordinatorKind, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::MemLog;
use crossbeam::deque::{Injector, Steal};
use std::collections::{HashMap, HashSet};
use std::sync::RwLock;

/// What to explore.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// The coordinator under test.
    pub kind: CoordinatorKind,
    /// Participant protocols (sites 1..=n).
    pub participant_protocols: Vec<ProtocolKind>,
    /// Per-participant votes (same order); missing entries vote `Yes`.
    pub votes: Vec<Vote>,
    /// How many crash+recover events may occur (any site, any point).
    pub crashes: u8,
    /// How many messages may be dropped.
    pub drops: u8,
    /// How many timers may fire.
    pub timer_fires: u8,
    /// State-count safety valve.
    pub max_states: usize,
    /// Worker threads for the exploration. `0` (the default) uses the
    /// machine's available parallelism; `1` runs fully inline. The
    /// report is identical for every value — parallelism only changes
    /// wall-clock time.
    pub threads: usize,
    /// Fingerprint-collision guard: store the full canonical rendering
    /// of every state behind its 64-bit fingerprint and panic if two
    /// distinct states ever hash alike. Roughly doubles memory and adds
    /// a rendering per state — a debugging/validation mode, off by
    /// default.
    pub paranoid_fingerprints: bool,
}

impl CheckConfig {
    /// A default bounded configuration: one crash, one drop, two timer
    /// firings — enough to exhibit every Theorem 1 scenario (one vote
    /// timeout plus one recovery inquiry).
    #[must_use]
    pub fn new(kind: CoordinatorKind, participant_protocols: &[ProtocolKind]) -> Self {
        CheckConfig {
            kind,
            participant_protocols: participant_protocols.to_vec(),
            votes: Vec::new(),
            crashes: 1,
            drops: 1,
            timer_fires: 2,
            max_states: 2_000_000,
            threads: 0,
            paranoid_fingerprints: false,
        }
    }

    /// The same configuration pinned to `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Worker count after resolving `0` to the machine's parallelism.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

/// The transaction every exploration runs.
const TXN: TxnId = TxnId(1);

fn initial_state(config: &CheckConfig) -> CheckState {
    let mut coord = Coordinator::new(COORD, config.kind, MemLog::new());
    let mut parts = std::collections::BTreeMap::new();
    let mut sites = Vec::new();
    for (i, &proto) in config.participant_protocols.iter().enumerate() {
        let site = SiteId::new(i as u32 + 1);
        coord.register_site(site, proto);
        let mut p = Participant::new(site, proto, MemLog::new());
        if let Some(&v) = config.votes.get(i) {
            p.set_intent(TXN, v);
        }
        parts.insert(site, p);
        sites.push(site);
    }
    let mut state = CheckState::new(coord, parts, config.crashes, config.drops, config.timer_fires);
    let actions = state.coord.begin_commit(TXN, &sites);
    state.absorb(COORD, actions);
    state.trail.push("begin commit");
    state
}

/// All successor states of `state`.
fn successors(state: &CheckState) -> Vec<CheckState> {
    let mut next = Vec::new();

    // 1. Deliver the head message of any link.
    for idx in state.deliverable() {
        let mut s = state.clone();
        let msg = s.in_flight.remove(idx);
        s.trail
            .push(format!("deliver {}", CheckState::describe_message(&msg)));
        let actions = if msg.to == COORD {
            s.coord.on_message(msg.from, &msg.payload)
        } else {
            s.parts
                .get_mut(&msg.to)
                .expect("site")
                .on_message(msg.from, &msg.payload)
        };
        s.absorb(msg.to, actions);
        next.push(s);
    }

    // 2. Drop the head message of any link (omission failure).
    if state.drops_left > 0 {
        for idx in state.deliverable() {
            let mut s = state.clone();
            let msg = s.in_flight.remove(idx);
            s.drops_left -= 1;
            s.trail
                .push(format!("DROP {}", CheckState::describe_message(&msg)));
            next.push(s);
        }
    }

    // 3. Crash + recover any site. Messages in flight *to* the site are
    //    lost (they would have arrived while it was down) — every subset
    //    could be lost in general; losing all of them composes with
    //    move 2 for partial-loss interleavings.
    if state.crashes_left > 0 {
        let sites: Vec<SiteId> = std::iter::once(COORD)
            .chain(state.parts.keys().copied())
            .collect();
        for site in sites {
            let mut s = state.clone();
            s.crashes_left -= 1;
            s.in_flight.retain(|m| m.to != site);
            s.clear_timers(site);
            s.trail.push(format!("CRASH+RECOVER {site}"));
            s.history.push(acp_acta::ActaEvent::Crash { site });
            let actions = if site == COORD {
                s.coord.crash();
                s.coord.recover()
            } else {
                let p = s.parts.get_mut(&site).expect("site");
                p.crash();
                p.recover()
            };
            s.history.push(acp_acta::ActaEvent::Recover { site });
            s.absorb(site, actions);
            next.push(s);
        }
    }

    // 4. Fire any armed timer.
    if state.timers_left > 0 {
        let timers: Vec<ArmedTimer> = state.timers.iter().cloned().collect();
        for t in timers {
            let mut s = state.clone();
            s.timers.remove(&t);
            s.timers_left -= 1;
            s.trail.push(format!("timer {} at {}", t.purpose, t.site));
            let actions = if t.site == COORD {
                s.coord.on_timer(t.token)
            } else {
                s.parts.get_mut(&t.site).expect("site").on_timer(t.token)
            };
            s.absorb(t.site, actions);
            next.push(s);
        }
    }

    next
}

/// Shard count for the concurrent `seen` set. Power of two, sized so
/// that even 16 workers rarely contend on a shard's lock.
const SEEN_SHARDS: usize = 64;

/// Concurrent set of visited fingerprints, sharded by low hash bits.
///
/// Locking discipline: workers only ever call [`SeenSet::contains`]
/// (read locks) while a level is being expanded; [`SeenSet::insert`]
/// (write locks) happens only in the single-threaded merge between
/// levels. The `RwLock`s are thus never write-contended.
enum SeenSet {
    /// Production mode: fingerprints only.
    Fast(Vec<RwLock<HashSet<u64>>>),
    /// Collision-guard mode: the full canonical state rendering is kept
    /// behind every fingerprint and compared on every hit.
    Paranoid(Vec<RwLock<HashMap<u64, String>>>),
}

impl SeenSet {
    fn new(paranoid: bool) -> Self {
        if paranoid {
            SeenSet::Paranoid((0..SEEN_SHARDS).map(|_| RwLock::default()).collect())
        } else {
            SeenSet::Fast((0..SEEN_SHARDS).map(|_| RwLock::default()).collect())
        }
    }

    fn shard(fp: u64) -> usize {
        (fp % SEEN_SHARDS as u64) as usize
    }

    /// Is `fp` already recorded? In paranoid mode, `canonical` must be
    /// the state's canonical rendering and a hit with a *different*
    /// stored rendering panics: a real 64-bit collision.
    fn contains(&self, fp: u64, canonical: Option<&str>) -> bool {
        match self {
            SeenSet::Fast(shards) => shards[Self::shard(fp)]
                .read()
                .expect("seen shard poisoned")
                .contains(&fp),
            SeenSet::Paranoid(shards) => {
                match shards[Self::shard(fp)]
                    .read()
                    .expect("seen shard poisoned")
                    .get(&fp)
                {
                    None => false,
                    Some(stored) => {
                        Self::guard(fp, stored, canonical);
                        true
                    }
                }
            }
        }
    }

    /// Record `fp`; returns `true` if it was new. Same paranoid
    /// semantics as [`SeenSet::contains`].
    fn insert(&self, fp: u64, canonical: Option<&str>) -> bool {
        match self {
            SeenSet::Fast(shards) => shards[Self::shard(fp)]
                .write()
                .expect("seen shard poisoned")
                .insert(fp),
            SeenSet::Paranoid(shards) => {
                let mut shard = shards[Self::shard(fp)]
                    .write()
                    .expect("seen shard poisoned");
                if let Some(stored) = shard.get(&fp) {
                    Self::guard(fp, stored, canonical);
                    false
                } else {
                    let c = canonical.expect("paranoid insert without canonical state");
                    shard.insert(fp, c.to_string());
                    true
                }
            }
        }
    }

    fn guard(fp: u64, stored: &str, canonical: Option<&str>) {
        let c = canonical.expect("paranoid lookup without canonical state");
        assert_eq!(
            stored, c,
            "64-bit fingerprint collision: two distinct states hash to {fp:#x}"
        );
    }
}

/// What one worker produced from one frontier chunk. Everything needed
/// to continue is carried here so the merge can stay single-threaded
/// and deterministic.
struct ChunkOutcome {
    /// Index of the chunk in the frontier (merge order key).
    idx: usize,
    counterexamples: Vec<Counterexample>,
    terminal_states: usize,
    max_terminal_table: usize,
    fully_forgotten: usize,
    /// Sealed successors that passed the read-only `seen` pre-filter,
    /// paired with their canonical rendering in paranoid mode.
    candidates: Vec<(CheckState, Option<String>)>,
}

/// Expand one chunk of frontier states. Pure with respect to shared
/// state (reads `seen`, never writes), so its result depends only on
/// the chunk — not on scheduling.
fn process_chunk(
    idx: usize,
    chunk: &[CheckState],
    seen: &SeenSet,
    paranoid: bool,
) -> ChunkOutcome {
    let mut out = ChunkOutcome {
        idx,
        counterexamples: Vec::new(),
        terminal_states: 0,
        max_terminal_table: 0,
        fully_forgotten: 0,
        candidates: Vec::new(),
    };
    for state in chunk {
        // Invariant check at every state (not only terminal ones): a
        // violation may be transient if later moves "fix" the history.
        let violations = check_atomicity(&state.history);
        if !violations.is_empty() {
            let trail = state.trail.to_vec();
            let history = state.history.to_string();
            for v in violations {
                out.counterexamples.push(Counterexample {
                    violation: v,
                    trail: trail.clone(),
                    history: history.clone(),
                    count: 1,
                });
            }
            // Do not expand a violating state further: one witness per
            // branch keeps reports readable.
            continue;
        }

        if state.is_terminal() {
            out.terminal_states += 1;
            let table = state.coord.protocol_table_size();
            out.max_terminal_table = out.max_terminal_table.max(table);
            if table == 0 {
                out.fully_forgotten += 1;
            }
        }

        for mut s in successors(state) {
            s.seal();
            let canonical = if paranoid {
                Some(s.canonical_state())
            } else {
                None
            };
            if !seen.contains(s.fingerprint(), canonical.as_deref()) {
                out.candidates.push((s, canonical));
            }
        }
    }
    out
}

/// Frontiers below this size are expanded inline even when a thread
/// pool is available: the fork/join overhead dwarfs the work.
const MIN_PARALLEL_FRONTIER: usize = 256;

fn chunk_size(frontier: usize, threads: usize) -> usize {
    // ~4 chunks per worker for load balance, clamped so tiny chunks
    // don't drown in stealing overhead and huge ones don't straggle.
    (frontier / (threads * 4)).clamp(8, 512)
}

/// Run the bounded exploration.
///
/// # Panics
/// In paranoid-fingerprint mode, panics if a 64-bit fingerprint
/// collision is detected (never observed; the guard exists to make
/// "the hash is trustworthy" an assertion instead of a hope).
#[must_use]
pub fn check(config: &CheckConfig) -> CheckReport {
    let threads = config.effective_threads();
    let paranoid = config.paranoid_fingerprints;
    let seen = SeenSet::new(paranoid);
    let mut report = CheckReport::default();

    let mut init = initial_state(config);
    init.seal();
    let canonical = if paranoid {
        Some(init.canonical_state())
    } else {
        None
    };
    seen.insert(init.fingerprint(), canonical.as_deref());
    let mut frontier = vec![init];

    while !frontier.is_empty() {
        // Deterministic truncation: the budget cuts the frontier at a
        // fixed index, never mid-chunk at a scheduling-dependent point.
        let budget = config.max_states.saturating_sub(report.states_explored);
        if frontier.len() >= budget {
            frontier.truncate(budget);
            report.truncated = true;
        }
        report.states_explored += frontier.len();

        let outcomes = expand_level(&frontier, &seen, threads, paranoid);

        // Serial merge in chunk-index order: the only writes to `seen`
        // and the only place the next frontier is assembled, so both
        // are independent of worker scheduling.
        let mut next = Vec::new();
        for out in outcomes {
            report.terminal_states += out.terminal_states;
            report.terminal_states_fully_forgotten += out.fully_forgotten;
            report.max_terminal_table = report.max_terminal_table.max(out.max_terminal_table);
            report.counterexamples.extend(out.counterexamples);
            for (state, canonical) in out.candidates {
                if seen.insert(state.fingerprint(), canonical.as_deref()) {
                    next.push(state);
                }
            }
        }

        if report.truncated {
            break;
        }
        frontier = next;
    }

    report.canonicalize();
    report
}

/// Expand every state in `frontier`, returning per-chunk outcomes
/// sorted by chunk index.
fn expand_level(
    frontier: &[CheckState],
    seen: &SeenSet,
    threads: usize,
    paranoid: bool,
) -> Vec<ChunkOutcome> {
    if threads <= 1 || frontier.len() < MIN_PARALLEL_FRONTIER {
        return frontier
            .chunks(chunk_size(frontier.len().max(1), threads.max(1)))
            .enumerate()
            .map(|(i, c)| process_chunk(i, c, seen, paranoid))
            .collect();
    }

    let injector: Injector<(usize, &[CheckState])> = Injector::new();
    let mut n_chunks = 0;
    for (i, c) in frontier
        .chunks(chunk_size(frontier.len(), threads))
        .enumerate()
    {
        injector.push((i, c));
        n_chunks += 1;
    }

    let workers = threads.min(n_chunks);
    let mut outcomes: Vec<ChunkOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let injector = &injector;
                scope.spawn(move || {
                    let mut outs = Vec::new();
                    loop {
                        match injector.steal() {
                            Steal::Success((i, chunk)) => {
                                outs.push(process_chunk(i, chunk, seen, paranoid));
                            }
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("checker worker panicked"))
            .collect()
    });
    outcomes.sort_unstable_by_key(|o| o.idx);
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::SelectionPolicy;

    #[test]
    fn u2pc_prc_coordinator_violates_atomicity_theorem_1_part_iii() {
        let config = CheckConfig::new(
            CoordinatorKind::U2pc(ProtocolKind::PrC),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated, "exploration must complete: {report}");
        assert!(
            !report.clean(),
            "U2PC/PrC must violate atomicity somewhere: {report}"
        );
    }

    #[test]
    fn u2pc_prn_coordinator_violates_atomicity_theorem_1_part_i() {
        let config = CheckConfig::new(
            CoordinatorKind::U2pc(ProtocolKind::PrN),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated);
        assert!(!report.clean(), "{report}");
    }

    #[test]
    fn prany_is_clean_under_the_same_bounds_theorem_3() {
        let config = CheckConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated, "{report}");
        assert!(report.clean(), "{report}");
        assert!(report.terminal_states > 0);
    }

    #[test]
    fn c2pc_never_violates_but_remembers_forever_theorem_2() {
        let config = CheckConfig::new(
            CoordinatorKind::C2pc(ProtocolKind::PrN),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated, "{report}");
        assert!(report.clean(), "C2PC is functionally correct: {report}");
        assert!(
            report.max_terminal_table > 0,
            "some terminal state must still remember the transaction: {report}"
        );
    }

    #[test]
    fn paranoid_fingerprints_find_no_collisions() {
        let mut config = CheckConfig::new(
            CoordinatorKind::U2pc(ProtocolKind::PrC),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        config.paranoid_fingerprints = true;
        // Panics inside check() if any two distinct states collide.
        let report = check(&config);
        assert!(report.states_explored > 1000);
    }

    #[test]
    fn seen_set_paranoid_mode_detects_a_planted_collision() {
        let seen = SeenSet::new(true);
        assert!(seen.insert(42, Some("state A")));
        // Same fingerprint, same canonical state: an ordinary duplicate.
        assert!(!seen.insert(42, Some("state A")));
        assert!(seen.contains(42, Some("state A")));
        // Same fingerprint, different canonical state: a collision.
        let boom = std::panic::catch_unwind(|| seen.insert(42, Some("state B")));
        assert!(boom.is_err(), "planted collision must be caught");
    }
}
