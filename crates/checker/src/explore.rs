//! The bounded DFS.

use crate::report::{CheckReport, Counterexample};
use crate::state::{ArmedTimer, CheckState, COORD};
use acp_acta::check_atomicity;
use acp_core::{Coordinator, Participant};
use acp_types::{CoordinatorKind, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::MemLog;
use std::collections::HashSet;

/// What to explore.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// The coordinator under test.
    pub kind: CoordinatorKind,
    /// Participant protocols (sites 1..=n).
    pub participant_protocols: Vec<ProtocolKind>,
    /// Per-participant votes (same order); missing entries vote `Yes`.
    pub votes: Vec<Vote>,
    /// How many crash+recover events may occur (any site, any point).
    pub crashes: u8,
    /// How many messages may be dropped.
    pub drops: u8,
    /// How many timers may fire.
    pub timer_fires: u8,
    /// State-count safety valve.
    pub max_states: usize,
}

impl CheckConfig {
    /// A default bounded configuration: one crash, one drop, two timer
    /// firings — enough to exhibit every Theorem 1 scenario (one vote
    /// timeout plus one recovery inquiry).
    #[must_use]
    pub fn new(kind: CoordinatorKind, participant_protocols: &[ProtocolKind]) -> Self {
        CheckConfig {
            kind,
            participant_protocols: participant_protocols.to_vec(),
            votes: Vec::new(),
            crashes: 1,
            drops: 1,
            timer_fires: 2,
            max_states: 2_000_000,
        }
    }
}

/// The transaction every exploration runs.
const TXN: TxnId = TxnId(1);

fn initial_state(config: &CheckConfig) -> CheckState {
    let mut coord = Coordinator::new(COORD, config.kind, MemLog::new());
    let mut parts = std::collections::BTreeMap::new();
    let mut sites = Vec::new();
    for (i, &proto) in config.participant_protocols.iter().enumerate() {
        let site = SiteId::new(i as u32 + 1);
        coord.register_site(site, proto);
        let mut p = Participant::new(site, proto, MemLog::new());
        if let Some(&v) = config.votes.get(i) {
            p.set_intent(TXN, v);
        }
        parts.insert(site, p);
        sites.push(site);
    }
    let mut state = CheckState {
        coord,
        parts,
        in_flight: Vec::new(),
        timers: std::collections::BTreeSet::new(),
        crashes_left: config.crashes,
        drops_left: config.drops,
        timers_left: config.timer_fires,
        history: acp_acta::History::new(),
        trail: Vec::new(),
    };
    let actions = state.coord.begin_commit(TXN, &sites);
    state.absorb(COORD, actions);
    state.trail.push("begin commit".into());
    state
}

/// All successor states of `state`.
fn successors(state: &CheckState) -> Vec<CheckState> {
    let mut next = Vec::new();

    // 1. Deliver the head message of any link.
    for idx in state.deliverable() {
        let mut s = state.clone();
        let msg = s.in_flight.remove(idx);
        s.trail
            .push(format!("deliver {}", CheckState::describe_message(&msg)));
        let actions = if msg.to == COORD {
            s.coord.on_message(msg.from, &msg.payload)
        } else {
            s.parts
                .get_mut(&msg.to)
                .expect("site")
                .on_message(msg.from, &msg.payload)
        };
        s.absorb(msg.to, actions);
        next.push(s);
    }

    // 2. Drop the head message of any link (omission failure).
    if state.drops_left > 0 {
        for idx in state.deliverable() {
            let mut s = state.clone();
            let msg = s.in_flight.remove(idx);
            s.drops_left -= 1;
            s.trail
                .push(format!("DROP {}", CheckState::describe_message(&msg)));
            next.push(s);
        }
    }

    // 3. Crash + recover any site. Messages in flight *to* the site are
    //    lost (they would have arrived while it was down) — every subset
    //    could be lost in general; losing all of them composes with
    //    move 2 for partial-loss interleavings.
    if state.crashes_left > 0 {
        let sites: Vec<SiteId> = std::iter::once(COORD)
            .chain(state.parts.keys().copied())
            .collect();
        for site in sites {
            let mut s = state.clone();
            s.crashes_left -= 1;
            s.in_flight.retain(|m| m.to != site);
            s.clear_timers(site);
            s.trail.push(format!("CRASH+RECOVER {site}"));
            s.history.push(acp_acta::ActaEvent::Crash { site });
            let actions = if site == COORD {
                s.coord.crash();
                s.coord.recover()
            } else {
                let p = s.parts.get_mut(&site).expect("site");
                p.crash();
                p.recover()
            };
            s.history.push(acp_acta::ActaEvent::Recover { site });
            s.absorb(site, actions);
            next.push(s);
        }
    }

    // 4. Fire any armed timer.
    if state.timers_left > 0 {
        let timers: Vec<ArmedTimer> = state.timers.iter().cloned().collect();
        for t in timers {
            let mut s = state.clone();
            s.timers.remove(&t);
            s.timers_left -= 1;
            s.trail.push(format!("timer {} at {}", t.purpose, t.site));
            let actions = if t.site == COORD {
                s.coord.on_timer(t.token)
            } else {
                s.parts.get_mut(&t.site).expect("site").on_timer(t.token)
            };
            s.absorb(t.site, actions);
            next.push(s);
        }
    }

    next
}

/// Run the bounded exploration.
#[must_use]
pub fn check(config: &CheckConfig) -> CheckReport {
    let mut report = CheckReport::default();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack = vec![initial_state(config)];
    seen.insert(stack[0].fingerprint());

    while let Some(state) = stack.pop() {
        report.states_explored += 1;
        if report.states_explored >= config.max_states {
            report.truncated = true;
            break;
        }

        // Invariant check at every state (not only terminal ones): a
        // violation may be transient if later moves "fix" the history.
        let violations = check_atomicity(&state.history);
        if !violations.is_empty() {
            for v in violations {
                report.counterexamples.push(Counterexample {
                    violation: v,
                    trail: state.trail.clone(),
                    history: state.history.to_string(),
                });
            }
            // Do not expand a violating state further: one witness per
            // branch keeps reports readable.
            continue;
        }

        let succ = successors(&state);
        if state.is_terminal() {
            report.terminal_states += 1;
            let table = state.coord.protocol_table_size();
            report.max_terminal_table = report.max_terminal_table.max(table);
            if table == 0 {
                report.terminal_states_fully_forgotten += 1;
            }
        }
        for s in succ {
            if seen.insert(s.fingerprint()) {
                stack.push(s);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::SelectionPolicy;

    #[test]
    fn u2pc_prc_coordinator_violates_atomicity_theorem_1_part_iii() {
        let config = CheckConfig::new(
            CoordinatorKind::U2pc(ProtocolKind::PrC),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated, "exploration must complete: {report}");
        assert!(
            !report.clean(),
            "U2PC/PrC must violate atomicity somewhere: {report}"
        );
    }

    #[test]
    fn u2pc_prn_coordinator_violates_atomicity_theorem_1_part_i() {
        let config = CheckConfig::new(
            CoordinatorKind::U2pc(ProtocolKind::PrN),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated);
        assert!(!report.clean(), "{report}");
    }

    #[test]
    fn prany_is_clean_under_the_same_bounds_theorem_3() {
        let config = CheckConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated, "{report}");
        assert!(report.clean(), "{report}");
        assert!(report.terminal_states > 0);
    }

    #[test]
    fn c2pc_never_violates_but_remembers_forever_theorem_2() {
        let config = CheckConfig::new(
            CoordinatorKind::C2pc(ProtocolKind::PrN),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let report = check(&config);
        assert!(!report.truncated, "{report}");
        assert!(report.clean(), "C2PC is functionally correct: {report}");
        assert!(
            report.max_terminal_table > 0,
            "some terminal state must still remember the transaction: {report}"
        );
    }
}
