//! Explorable system states.

use acp_acta::History;
use acp_core::{Action, Coordinator, Participant, TimerPurpose};
use acp_types::{Message, Payload, SiteId, TxnId};
use acp_wal::MemLog;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// The coordinator's site in every checked configuration.
pub const COORD: SiteId = SiteId(0);

/// An armed timer at a site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ArmedTimer {
    /// The site whose timer it is.
    pub site: SiteId,
    /// Engine token.
    pub token: u64,
    /// What it is for (shown in counterexample traces).
    pub purpose: TimerPurpose,
}

/// One complete system state of the bounded exploration.
#[derive(Clone)]
pub struct CheckState {
    /// The coordinator engine.
    pub coord: Coordinator<MemLog>,
    /// The participant engines.
    pub parts: BTreeMap<SiteId, Participant<MemLog>>,
    /// Messages handed to the network, not yet delivered or dropped.
    /// Per-link FIFO: only the *oldest* message on each (from, to) link
    /// is deliverable/droppable, matching the simulator's FIFO links.
    pub in_flight: Vec<Message>,
    /// Armed (not yet fired) volatile timers.
    pub timers: BTreeSet<ArmedTimer>,
    /// Remaining crash/recover budget.
    pub crashes_left: u8,
    /// Remaining message-drop budget.
    pub drops_left: u8,
    /// Remaining timer-firing budget.
    pub timers_left: u8,
    /// The ACTA history of this branch.
    pub history: History,
    /// Human-readable move trail (for counterexample reporting).
    pub trail: Vec<String>,
}

impl CheckState {
    /// Absorb a batch of engine actions at `site` into the state.
    pub fn absorb(&mut self, site: SiteId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    self.in_flight.push(Message::new(site, to, payload));
                }
                Action::SetTimer { token, purpose } => {
                    self.timers.insert(ArmedTimer {
                        site,
                        token,
                        purpose,
                    });
                }
                Action::Acta(e) => self.history.push(e),
                Action::Enforce { .. } => {
                    // The participant engine records the Enforce ACTA
                    // event itself; data-engine effects are out of scope
                    // for the checker.
                }
            }
        }
    }

    /// Indices of in-flight messages that are at the head of their
    /// (from, to) link — the only ones the FIFO network may act on.
    #[must_use]
    pub fn deliverable(&self) -> Vec<usize> {
        let mut seen_links: BTreeSet<(SiteId, SiteId)> = BTreeSet::new();
        let mut idxs = Vec::new();
        for (i, m) in self.in_flight.iter().enumerate() {
            if seen_links.insert((m.from, m.to)) {
                idxs.push(i);
            }
        }
        idxs
    }

    /// Drop all timers belonging to `site` (its volatile state died).
    pub fn clear_timers(&mut self, site: SiteId) {
        self.timers.retain(|t| t.site != site);
    }

    /// A 64-bit fingerprint of the semantic state, for deduplication.
    /// The history and trail are deliberately excluded: two states with
    /// identical machine/network state behave identically regardless of
    /// how they were reached (violations are checked *before* dedup, so
    /// none are missed).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.coord.fingerprint().hash(&mut h);
        for (site, p) in &self.parts {
            site.hash(&mut h);
            p.fingerprint().hash(&mut h);
        }
        // In-flight messages: order only matters per link (FIFO), so
        // hash each link's queue separately in a canonical link order.
        let mut links: BTreeMap<(SiteId, SiteId), Vec<String>> = BTreeMap::new();
        for m in &self.in_flight {
            links
                .entry((m.from, m.to))
                .or_default()
                .push(m.payload.to_string());
        }
        links.hash(&mut h);
        for t in &self.timers {
            (t.site, t.token).hash(&mut h);
        }
        (self.crashes_left, self.drops_left, self.timers_left).hash(&mut h);
        h.finish()
    }

    /// Is the state quiescent: nothing in flight and no armed timers
    /// whose firing could still change anything (we treat any armed
    /// timer as potentially enabled, so quiescent = no messages and
    /// either no timers or no timer budget).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.in_flight.is_empty() && (self.timers.is_empty() || self.timers_left == 0)
    }

    /// Every transaction mentioned so far (for reporting).
    #[must_use]
    pub fn txns(&self) -> Vec<TxnId> {
        self.history.transactions()
    }

    /// Render an in-flight message briefly (for trails).
    #[must_use]
    pub fn describe_message(m: &Message) -> String {
        match &m.payload {
            Payload::Prepare { txn } => format!("{}→{} prepare {txn}", m.from, m.to),
            other => format!("{}→{} {other}", m.from, m.to),
        }
    }
}
