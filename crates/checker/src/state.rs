//! Explorable system states.

use acp_acta::History;
use acp_core::{Action, Coordinator, Participant, TimerPurpose};
use acp_types::{Message, Payload, SiteId, TxnId};
use acp_wal::MemLog;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The coordinator's site in every checked configuration.
pub const COORD: SiteId = SiteId(0);

/// An armed timer at a site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ArmedTimer {
    /// The site whose timer it is.
    pub site: SiteId,
    /// Engine token.
    pub token: u64,
    /// What it is for (shown in counterexample traces).
    pub purpose: TimerPurpose,
}

/// The move trail of a state, as an `Arc`-linked parent chain.
///
/// Successor generation used to clone a `Vec<String>` per state — an
/// O(depth) copy on the checker's hottest path. The cons list shares
/// the whole prefix with the parent: extending it is one small
/// allocation and an `Arc` bump, and the flat `Vec<String>` form is
/// reconstructed lazily, only for the rare states that become
/// counterexamples.
#[derive(Clone, Default)]
pub struct Trail(Option<Arc<TrailNode>>);

struct TrailNode {
    step: String,
    prev: Option<Arc<TrailNode>>,
}

impl Trail {
    /// The empty trail.
    #[must_use]
    pub fn new() -> Self {
        Trail(None)
    }

    /// Append a step (O(1): the previous chain is shared, not copied).
    pub fn push(&mut self, step: impl Into<String>) {
        self.0 = Some(Arc::new(TrailNode {
            step: step.into(),
            prev: self.0.take(),
        }));
    }

    /// Number of steps taken.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.0.as_deref();
        while let Some(node) = cur {
            n += 1;
            cur = node.prev.as_deref();
        }
        n
    }

    /// Is the trail empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Reconstruct the oldest-first step list (O(depth); called only
    /// when a counterexample is reported).
    #[must_use]
    pub fn to_vec(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.0.as_deref();
        while let Some(node) = cur {
            out.push(node.step.clone());
            cur = node.prev.as_deref();
        }
        out.reverse();
        out
    }
}

impl std::fmt::Debug for Trail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

/// One complete system state of the bounded exploration.
pub struct CheckState {
    /// The coordinator engine.
    pub coord: Coordinator<MemLog>,
    /// The participant engines.
    pub parts: BTreeMap<SiteId, Participant<MemLog>>,
    /// Messages handed to the network, not yet delivered or dropped.
    /// Per-link FIFO: only the *oldest* message on each (from, to) link
    /// is deliverable/droppable, matching the simulator's FIFO links.
    pub in_flight: Vec<Message>,
    /// Armed (not yet fired) volatile timers.
    pub timers: BTreeSet<ArmedTimer>,
    /// Remaining crash/recover budget.
    pub crashes_left: u8,
    /// Remaining message-drop budget.
    pub drops_left: u8,
    /// Remaining timer-firing budget.
    pub timers_left: u8,
    /// The ACTA history of this branch.
    pub history: History,
    /// Move trail (for counterexample reporting).
    pub trail: Trail,
    /// Cached fingerprint, set by [`CheckState::seal`] once mutation is
    /// done. `None` while a successor is still under construction.
    pub(crate) fp: Option<u64>,
}

impl Clone for CheckState {
    fn clone(&self) -> Self {
        CheckState {
            coord: self.coord.clone(),
            parts: self.parts.clone(),
            in_flight: self.in_flight.clone(),
            timers: self.timers.clone(),
            crashes_left: self.crashes_left,
            drops_left: self.drops_left,
            timers_left: self.timers_left,
            history: self.history.clone(),
            trail: self.trail.clone(),
            // A clone exists to be mutated into a successor; its cached
            // fingerprint is stale by construction.
            fp: None,
        }
    }
}

impl CheckState {
    /// A fresh, unsealed state: the given engines, empty network and
    /// history, full failure budgets.
    #[must_use]
    pub fn new(
        coord: Coordinator<MemLog>,
        parts: BTreeMap<SiteId, Participant<MemLog>>,
        crashes: u8,
        drops: u8,
        timer_fires: u8,
    ) -> Self {
        CheckState {
            coord,
            parts,
            in_flight: Vec::new(),
            timers: BTreeSet::new(),
            crashes_left: crashes,
            drops_left: drops,
            timers_left: timer_fires,
            history: History::new(),
            trail: Trail::new(),
            fp: None,
        }
    }

    /// Absorb a batch of engine actions at `site` into the state.
    pub fn absorb(&mut self, site: SiteId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    self.in_flight.push(Message::new(site, to, payload));
                }
                Action::SetTimer { token, purpose, .. } => {
                    // The checker explores timer firings nondeterministically,
                    // so the backoff attempt (a real-time concern) is ignored.
                    self.timers.insert(ArmedTimer {
                        site,
                        token,
                        purpose,
                    });
                }
                Action::Acta(e) => self.history.push(e),
                Action::Enforce { .. } => {
                    // The participant engine records the Enforce ACTA
                    // event itself; data-engine effects are out of scope
                    // for the checker.
                }
                Action::Gc { .. } => {
                    // Observational only; the truncation itself already
                    // happened inside the engine's log.
                }
            }
        }
    }

    /// Indices of in-flight messages that are at the head of their
    /// (from, to) link — the only ones the FIFO network may act on.
    #[must_use]
    pub fn deliverable(&self) -> Vec<usize> {
        let mut seen_links: BTreeSet<(SiteId, SiteId)> = BTreeSet::new();
        let mut idxs = Vec::new();
        for (i, m) in self.in_flight.iter().enumerate() {
            if seen_links.insert((m.from, m.to)) {
                idxs.push(i);
            }
        }
        idxs
    }

    /// Drop all timers belonging to `site` (its volatile state died).
    pub fn clear_timers(&mut self, site: SiteId) {
        self.timers.retain(|t| t.site != site);
    }

    /// Compute and cache the fingerprint. Must be called exactly when a
    /// state's mutation is complete (successor construction does this);
    /// after sealing, [`CheckState::fingerprint`] is a field read.
    pub fn seal(&mut self) {
        self.fp = Some(self.compute_fingerprint());
    }

    /// The 64-bit fingerprint of the semantic state, for deduplication.
    ///
    /// # Panics
    /// If the state has not been [`CheckState::seal`]ed.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fp.expect("CheckState::fingerprint before seal()")
    }

    /// Hash the semantic state. The history and trail are deliberately
    /// excluded: two states with identical machine/network state behave
    /// identically regardless of how they were reached (every frontier
    /// state is checked for violations before its duplicates are
    /// pruned, so none are missed).
    ///
    /// Everything is hashed directly — no string rendering, no
    /// intermediate collections. The old implementation built the full
    /// canonical `String` of every engine plus a per-link `BTreeMap`
    /// just to feed a hasher; that was the dominant allocation cost of
    /// the exploration.
    fn compute_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.coord.hash_state(&mut h);
        for (site, p) in &self.parts {
            site.hash(&mut h);
            p.hash_state(&mut h);
        }
        // In-flight messages: order only matters per link (FIFO), so
        // hash each link's queue separately in a canonical link order.
        let mut links: Vec<(SiteId, SiteId)> = self.in_flight.iter().map(|m| (m.from, m.to)).collect();
        links.sort_unstable();
        links.dedup();
        for &(from, to) in &links {
            (from, to).hash(&mut h);
            for m in &self.in_flight {
                if m.from == from && m.to == to {
                    m.payload.hash(&mut h);
                }
            }
        }
        for t in &self.timers {
            (t.site, t.token).hash(&mut h);
        }
        (self.crashes_left, self.drops_left, self.timers_left).hash(&mut h);
        h.finish()
    }

    /// The full canonical rendering of the semantic state — exactly the
    /// information [`CheckState::fingerprint`] hashes, as a comparable
    /// string. The paranoid fingerprint mode stores this behind each
    /// 64-bit hash to prove no collision silently merged two distinct
    /// states.
    #[must_use]
    pub fn canonical_state(&self) -> String {
        let mut s = self.coord.fingerprint();
        for (site, p) in &self.parts {
            let _ = write!(s, "#{site}:{}", p.fingerprint());
        }
        s.push('#');
        let mut links: Vec<(SiteId, SiteId)> = self.in_flight.iter().map(|m| (m.from, m.to)).collect();
        links.sort_unstable();
        links.dedup();
        for &(from, to) in &links {
            let _ = write!(s, "[{from}>{to}:");
            for m in &self.in_flight {
                if m.from == from && m.to == to {
                    let _ = write!(s, "{},", m.payload);
                }
            }
            s.push(']');
        }
        s.push('#');
        for t in &self.timers {
            let _ = write!(s, "{}:{};", t.site, t.token);
        }
        let _ = write!(
            s,
            "#c{}d{}t{}",
            self.crashes_left, self.drops_left, self.timers_left
        );
        s
    }

    /// Is the state quiescent: nothing in flight and no armed timers
    /// whose firing could still change anything (we treat any armed
    /// timer as potentially enabled, so quiescent = no messages and
    /// either no timers or no timer budget).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.in_flight.is_empty() && (self.timers.is_empty() || self.timers_left == 0)
    }

    /// Every transaction mentioned so far (for reporting).
    #[must_use]
    pub fn txns(&self) -> Vec<TxnId> {
        self.history.transactions()
    }

    /// Render an in-flight message briefly (for trails).
    #[must_use]
    pub fn describe_message(m: &Message) -> String {
        match &m.payload {
            Payload::Prepare { txn } => format!("{}→{} prepare {txn}", m.from, m.to),
            other => format!("{}→{} {other}", m.from, m.to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Trail;

    #[test]
    fn trail_push_shares_prefix_and_reconstructs_in_order() {
        let mut a = Trail::new();
        assert!(a.is_empty());
        a.push("one");
        a.push("two");
        let mut b = a.clone();
        b.push("three");
        assert_eq!(a.to_vec(), vec!["one", "two"]);
        assert_eq!(b.to_vec(), vec!["one", "two", "three"]);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
    }
}
