//! # acp-check
//!
//! A bounded model checker for the commit protocols: exhaustive
//! breadth-first exploration over message deliveries, message drops,
//! crash/recover points and timer firings for small configurations.
//! The exploration is parallel (level-synchronized BFS with
//! work-stealing chunk distribution — see [`explore`]) yet produces a
//! report that is identical for every thread count, so experiment
//! output stays diffable.
//!
//! The paper's Theorem 1 is an existence proof ("it is possible for …");
//! this checker turns it into a *search*: given a coordinator kind, a
//! participant population and small failure budgets, it enumerates every
//! reachable interleaving and reports the atomicity violations it finds
//! (with the full ACTA history of each counterexample). Run against
//! U2PC it mechanically rediscovers the Part I–III scenarios; run
//! against PrAny it proves (exhaustively, for the bounded configuration)
//! that none exist — the Theorem 3 claim.
//!
//! It also reports whether every terminal state has an empty protocol
//! table, which is how Theorem 2's "remembered forever" shows up for
//! C2PC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod paxos;
pub mod report;
pub mod state;

pub use explore::{check, CheckConfig};
pub use paxos::{check_paxos, PaxosCheckConfig};
pub use report::{CheckReport, Counterexample};
pub use state::{CheckState, Trail};
