//! Exploration reports.

use acp_acta::AtomicityViolation;
use std::fmt;

/// A concrete interleaving that violates atomicity.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The violation the checker detected.
    pub violation: AtomicityViolation,
    /// The move sequence that reaches it.
    pub trail: Vec<String>,
    /// The ACTA history of the branch, rendered.
    pub history: String,
    /// How many explored interleavings reach this same violation with
    /// this same history (the trail shown is one representative — the
    /// lexicographically smallest, which under BFS is also a shortest
    /// one).
    pub count: usize,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VIOLATION: {}", self.violation)?;
        if self.count > 1 {
            write!(f, " ({} equivalent interleavings)", self.count)?;
        }
        writeln!(f)?;
        writeln!(f, "trail:")?;
        for (i, step) in self.trail.iter().enumerate() {
            writeln!(f, "  {i:>3}. {step}")?;
        }
        writeln!(f, "history:")?;
        write!(f, "{}", self.history)
    }
}

/// The result of a bounded exploration.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Distinct states visited.
    pub states_explored: usize,
    /// Terminal (quiescent) states reached.
    pub terminal_states: usize,
    /// Atomicity violations found (empty = bounded-exhaustive pass).
    /// Deduplicated by (violation, history); see [`Counterexample::count`].
    pub counterexamples: Vec<Counterexample>,
    /// Whether the exploration stopped early on `max_states`.
    pub truncated: bool,
    /// Largest coordinator protocol table seen at a terminal state —
    /// non-zero terminal tables are Theorem 2's "remembered forever".
    pub max_terminal_table: usize,
    /// Terminal states in which the coordinator had forgotten every
    /// transaction.
    pub terminal_states_fully_forgotten: usize,
}

impl CheckReport {
    /// Did the exploration find no violations?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Total violating interleavings explored (sum of per-entry counts).
    #[must_use]
    pub fn violation_interleavings(&self) -> usize {
        self.counterexamples.iter().map(|cx| cx.count).sum()
    }

    /// Put the report in canonical form: merge counterexamples that
    /// report the same violation on the same history (keeping the
    /// lexicographically smallest trail as the representative and
    /// summing counts), then sort by trail. After this, two reports of
    /// the same exploration compare equal field-for-field regardless of
    /// how many threads produced them or in what order states were
    /// popped.
    pub fn canonicalize(&mut self) {
        // Group duplicates: sort so equal (violation, history) pairs are
        // adjacent, smallest trail first.
        self.counterexamples.sort_unstable_by(|a, b| {
            (a.violation.txn, &a.violation.detail, &a.history, &a.trail).cmp(&(
                b.violation.txn,
                &b.violation.detail,
                &b.history,
                &b.trail,
            ))
        });
        let mut merged: Vec<Counterexample> = Vec::new();
        for cx in self.counterexamples.drain(..) {
            match merged.last_mut() {
                Some(last) if last.violation == cx.violation && last.history == cx.history => {
                    last.count += cx.count;
                }
                _ => merged.push(cx),
            }
        }
        merged.sort_unstable_by(|a, b| {
            (&a.trail, a.violation.txn, &a.violation.detail).cmp(&(
                &b.trail,
                b.violation.txn,
                &b.violation.detail,
            ))
        });
        self.counterexamples = merged;
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "states={} terminal={} fully-forgotten-terminal={} max-terminal-table={} \
             violations={}{}",
            self.states_explored,
            self.terminal_states,
            self.terminal_states_fully_forgotten,
            self.max_terminal_table,
            self.counterexamples.len(),
            if self.truncated { " (TRUNCATED)" } else { "" },
        )?;
        if let Some(cx) = self.counterexamples.first() {
            writeln!(f, "first counterexample:")?;
            write!(f, "{cx}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::TxnId;

    fn cx(detail: &str, trail: &[&str], history: &str) -> Counterexample {
        Counterexample {
            violation: AtomicityViolation {
                txn: TxnId::new(1),
                detail: detail.into(),
            },
            trail: trail.iter().map(|s| (*s).to_string()).collect(),
            history: history.into(),
            count: 1,
        }
    }

    #[test]
    fn display_renders_counterexample() {
        let report = CheckReport {
            states_explored: 10,
            terminal_states: 2,
            counterexamples: vec![cx("boom", &["deliver x"], "0: Decide(...)\n")],
            ..Default::default()
        };
        let s = report.to_string();
        assert!(s.contains("violations=1"));
        assert!(s.contains("boom"));
        assert!(s.contains("deliver x"));
        assert!(!report.clean());
    }

    #[test]
    fn canonicalize_merges_equivalent_counterexamples_and_sorts_by_trail() {
        let mut report = CheckReport {
            counterexamples: vec![
                cx("boom", &["b", "z"], "h1"),
                cx("other", &["a"], "h2"),
                cx("boom", &["b", "a"], "h1"),
            ],
            ..Default::default()
        };
        report.canonicalize();
        assert_eq!(report.counterexamples.len(), 2);
        // Sorted by trail: ["a"] before ["b", "a"].
        assert_eq!(report.counterexamples[0].trail, vec!["a"]);
        assert_eq!(report.counterexamples[0].count, 1);
        // The two "boom"/"h1" entries merged, smallest trail kept.
        assert_eq!(report.counterexamples[1].trail, vec!["b", "a"]);
        assert_eq!(report.counterexamples[1].count, 2);
        assert_eq!(report.violation_interleavings(), 3);
    }
}
