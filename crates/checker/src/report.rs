//! Exploration reports.

use acp_acta::AtomicityViolation;
use std::fmt;

/// A concrete interleaving that violates atomicity.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The violation the checker detected.
    pub violation: AtomicityViolation,
    /// The move sequence that reaches it.
    pub trail: Vec<String>,
    /// The ACTA history of the branch, rendered.
    pub history: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "VIOLATION: {}", self.violation)?;
        writeln!(f, "trail:")?;
        for (i, step) in self.trail.iter().enumerate() {
            writeln!(f, "  {i:>3}. {step}")?;
        }
        writeln!(f, "history:")?;
        write!(f, "{}", self.history)
    }
}

/// The result of a bounded exploration.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Distinct states visited.
    pub states_explored: usize,
    /// Terminal (quiescent) states reached.
    pub terminal_states: usize,
    /// Atomicity violations found (empty = bounded-exhaustive pass).
    pub counterexamples: Vec<Counterexample>,
    /// Whether the exploration stopped early on `max_states`.
    pub truncated: bool,
    /// Largest coordinator protocol table seen at a terminal state —
    /// non-zero terminal tables are Theorem 2's "remembered forever".
    pub max_terminal_table: usize,
    /// Terminal states in which the coordinator had forgotten every
    /// transaction.
    pub terminal_states_fully_forgotten: usize,
}

impl CheckReport {
    /// Did the exploration find no violations?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "states={} terminal={} fully-forgotten-terminal={} max-terminal-table={} \
             violations={}{}",
            self.states_explored,
            self.terminal_states,
            self.terminal_states_fully_forgotten,
            self.max_terminal_table,
            self.counterexamples.len(),
            if self.truncated { " (TRUNCATED)" } else { "" },
        )?;
        if let Some(cx) = self.counterexamples.first() {
            writeln!(f, "first counterexample:")?;
            write!(f, "{cx}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::TxnId;

    #[test]
    fn display_renders_counterexample() {
        let report = CheckReport {
            states_explored: 10,
            terminal_states: 2,
            counterexamples: vec![Counterexample {
                violation: AtomicityViolation {
                    txn: TxnId::new(1),
                    detail: "boom".into(),
                },
                trail: vec!["deliver x".into()],
                history: "0: Decide(...)\n".into(),
            }],
            ..Default::default()
        };
        let s = report.to_string();
        assert!(s.contains("violations=1"));
        assert!(s.contains("boom"));
        assert!(s.contains("deliver x"));
        assert!(!report.clean());
    }
}
