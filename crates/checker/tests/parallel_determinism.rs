//! The parallel checker must be a pure optimization: for every
//! configuration the experiments run, the report at `threads = 4` (and
//! an oversubscribed `threads = 7`) must equal the `threads = 1` report
//! field-for-field — state counts, terminal statistics, and the full
//! canonicalized counterexample list including representative trails.

use acp_check::{check, CheckConfig, CheckReport};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy};

/// Compare every observable field of two reports.
fn assert_identical(a: &CheckReport, b: &CheckReport, what: &str) {
    assert_eq!(a.states_explored, b.states_explored, "{what}: states_explored");
    assert_eq!(a.terminal_states, b.terminal_states, "{what}: terminal_states");
    assert_eq!(
        a.terminal_states_fully_forgotten, b.terminal_states_fully_forgotten,
        "{what}: terminal_states_fully_forgotten"
    );
    assert_eq!(
        a.max_terminal_table, b.max_terminal_table,
        "{what}: max_terminal_table"
    );
    assert_eq!(a.truncated, b.truncated, "{what}: truncated");
    assert_eq!(
        a.counterexamples.len(),
        b.counterexamples.len(),
        "{what}: counterexample count"
    );
    for (i, (ca, cb)) in a.counterexamples.iter().zip(&b.counterexamples).enumerate() {
        assert_eq!(ca.violation, cb.violation, "{what}: counterexample {i} violation");
        assert_eq!(ca.trail, cb.trail, "{what}: counterexample {i} trail");
        assert_eq!(ca.history, cb.history, "{what}: counterexample {i} history");
        assert_eq!(ca.count, cb.count, "{what}: counterexample {i} count");
    }
    // Belt and braces: the rendered forms must be byte-identical too.
    assert_eq!(a.to_string(), b.to_string(), "{what}: Display");
}

fn run_all_thread_counts(kind: CoordinatorKind, what: &str) {
    let base = CheckConfig::new(kind, &[ProtocolKind::PrA, ProtocolKind::PrC]);
    let serial = check(&base.clone().with_threads(1));
    for threads in [4, 7] {
        let parallel = check(&base.clone().with_threads(threads));
        assert_identical(&serial, &parallel, &format!("{what} threads={threads}"));
    }
}

#[test]
fn u2pc_prn_report_is_thread_count_independent() {
    run_all_thread_counts(CoordinatorKind::U2pc(ProtocolKind::PrN), "U2PC/PrN");
}

#[test]
fn u2pc_prc_report_is_thread_count_independent() {
    run_all_thread_counts(CoordinatorKind::U2pc(ProtocolKind::PrC), "U2PC/PrC");
}

#[test]
fn c2pc_report_is_thread_count_independent() {
    run_all_thread_counts(CoordinatorKind::C2pc(ProtocolKind::PrN), "C2PC/PrN");
}

#[test]
fn prany_report_is_thread_count_independent() {
    run_all_thread_counts(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        "PrAny/PaperStrict",
    );
}

/// The default (auto) thread count must also match — this is what the
/// experiment binaries actually run with.
#[test]
fn auto_threads_matches_serial() {
    let base = CheckConfig::new(
        CoordinatorKind::U2pc(ProtocolKind::PrC),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    let serial = check(&base.clone().with_threads(1));
    let auto = check(&base);
    assert_identical(&serial, &auto, "auto threads");
}
