//! Lock-free per-protocol cost metrics.
//!
//! A [`MetricsRegistry`] is a fixed 2-D grid of [`AtomicU64`] counters
//! indexed by ([`ProtoLabel`], [`Counter`]). Recording an event is a
//! handful of relaxed atomic adds — no locks, no allocation — so the
//! registry can be shared by every thread of a campaign (`Arc` it into
//! a [`CountingSink`](crate::sink::CountingSink)) and the totals are
//! identical regardless of scheduling, because addition commutes.
//!
//! The counter set *subsumes* `acp-types`' per-transaction
//! [`CostCounters`]: [`MetricsRegistry::cost_counters`] projects a
//! protocol's row onto that legacy shape, and extends it with received
//! messages, votes/decisions as protocol events, GC activity and GC
//! latency in sim-time — the quantities the paper's operational-
//! correctness argument (Definition 1, Theorem 2) is about.

use crate::event::{ProtoLabel, ProtocolEvent};
use acp_types::CostCounters;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// One metric dimension of the registry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Counter {
    /// Forced (synchronous) log writes.
    ForcedWrites,
    /// Non-forced (lazy) log writes.
    LazyWrites,
    /// Messages handed to the network.
    MsgsSent,
    /// Messages delivered.
    MsgsRecv,
    /// `prepare` messages sent.
    Prepares,
    /// `vote` messages sent.
    Votes,
    /// `decision` messages sent.
    Decisions,
    /// `ack` messages sent.
    Acks,
    /// Recovery `inquiry` messages sent.
    Inquiries,
    /// `inquiry-response` messages sent.
    Responses,
    /// Votes fixed by participants (protocol events, not messages).
    VotesCast,
    /// Decisions reached by coordinators.
    DecisionsReached,
    /// Garbage-collection runs that reclaimed at least one record.
    GcRuns,
    /// Log records reclaimed by GC.
    GcRecordsReleased,
    /// Sum of decision-to-GC latencies (microseconds of sim-time).
    GcLatencyUsSum,
    /// Number of GC runs with a known decision-to-GC latency.
    GcLatencySamples,
    /// Inquiry retries scheduled with backoff (attempt ≥ 1).
    InquiryRetries,
    /// Decision re-sends scheduled with backoff (attempt ≥ 1).
    DecisionResends,
    /// Observed site crashes.
    Crashes,
    /// Observed site recoveries.
    Recoveries,
    /// Group-commit batches with occupancy ≥ 2: forced writes that a
    /// single physical force served for several transactions at once.
    BatchedForces,
    /// Total occupancy of those batches (forced appends amortized into
    /// shared forces). `BatchOccupancy / BatchedForces` is the mean
    /// multi-transaction batch size.
    BatchOccupancy,
    /// Peak occupancy observed in any single shard of the coordinator's
    /// protocol table (a high-water mark fed with
    /// [`MetricsRegistry::set_max`], not an accumulating sum). Reactor
    /// hosts sample it per tick; the E14 report uses it to show table
    /// load stays balanced across reactor shards.
    TablePeakShardOccupancy,
    /// Transactions refused at the door by the admission controller
    /// (bounded in-flight / mailbox-depth shedding) before any
    /// protocol work. A counted rejection, never a silent drop: the
    /// overload campaign's evidence that load past the knee was shed,
    /// not queued.
    AdmissionShed,
    /// Outbound wire frames the socket backend shed because a peer's
    /// bounded write queue overflowed (transport backpressure). Fed
    /// from [`crate::wire::WireSnapshot::backpressure_drops`] with
    /// [`MetricsRegistry::set_max`] at snapshot points, so the grid
    /// surfaces transport overload next to protocol-level shedding.
    BackpressureDrops,
}

impl Counter {
    /// All counters, in JSON-dump order.
    pub const ALL: [Counter; 25] = [
        Counter::ForcedWrites,
        Counter::LazyWrites,
        Counter::MsgsSent,
        Counter::MsgsRecv,
        Counter::Prepares,
        Counter::Votes,
        Counter::Decisions,
        Counter::Acks,
        Counter::Inquiries,
        Counter::Responses,
        Counter::VotesCast,
        Counter::DecisionsReached,
        Counter::GcRuns,
        Counter::GcRecordsReleased,
        Counter::GcLatencyUsSum,
        Counter::GcLatencySamples,
        Counter::InquiryRetries,
        Counter::DecisionResends,
        Counter::Crashes,
        Counter::Recoveries,
        Counter::BatchedForces,
        Counter::BatchOccupancy,
        Counter::TablePeakShardOccupancy,
        Counter::AdmissionShed,
        Counter::BackpressureDrops,
    ];

    /// Stable snake_case name (JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::ForcedWrites => "forced_writes",
            Counter::LazyWrites => "lazy_writes",
            Counter::MsgsSent => "msgs_sent",
            Counter::MsgsRecv => "msgs_recv",
            Counter::Prepares => "prepares",
            Counter::Votes => "votes",
            Counter::Decisions => "decisions",
            Counter::Acks => "acks",
            Counter::Inquiries => "inquiries",
            Counter::Responses => "responses",
            Counter::VotesCast => "votes_cast",
            Counter::DecisionsReached => "decisions_reached",
            Counter::GcRuns => "gc_runs",
            Counter::GcRecordsReleased => "gc_records_released",
            Counter::GcLatencyUsSum => "gc_latency_us_sum",
            Counter::GcLatencySamples => "gc_latency_samples",
            Counter::InquiryRetries => "inquiry_retries",
            Counter::DecisionResends => "decision_resends",
            Counter::Crashes => "crashes",
            Counter::Recoveries => "recoveries",
            Counter::BatchedForces => "batched_forces",
            Counter::BatchOccupancy => "batch_occupancy",
            Counter::TablePeakShardOccupancy => "table_peak_shard_occupancy",
            Counter::AdmissionShed => "admission_shed",
            Counter::BackpressureDrops => "backpressure_drops",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("counter in ALL")
    }
}

const N_PROTOS: usize = ProtoLabel::ALL.len();
const N_COUNTERS: usize = Counter::ALL.len();

/// The lock-free registry: one atomic cell per (protocol, counter).
#[derive(Debug)]
pub struct MetricsRegistry {
    cells: [[AtomicU64; N_COUNTERS]; N_PROTOS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            cells: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Add `n` to one counter.
    pub fn add(&self, proto: ProtoLabel, counter: Counter, n: u64) {
        self.cells[proto.index()][counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Read one counter.
    #[must_use]
    pub fn get(&self, proto: ProtoLabel, counter: Counter) -> u64 {
        self.cells[proto.index()][counter.index()].load(Ordering::Relaxed)
    }

    /// Raise one counter to at least `v` (atomic `fetch_max`). For
    /// high-water-mark counters like
    /// [`Counter::TablePeakShardOccupancy`], where the registry cell
    /// records the largest value ever observed rather than a sum.
    pub fn set_max(&self, proto: ProtoLabel, counter: Counter, v: u64) {
        self.cells[proto.index()][counter.index()].fetch_max(v, Ordering::Relaxed);
    }

    /// Absorb one event into the grid.
    pub fn record(&self, ev: &ProtocolEvent) {
        let p = ev.proto();
        match ev {
            ProtocolEvent::ForceWrite { .. } => self.add(p, Counter::ForcedWrites, 1),
            ProtocolEvent::NonForcedWrite { .. } => self.add(p, Counter::LazyWrites, 1),
            ProtocolEvent::MsgSend { kind, .. } => {
                self.add(p, Counter::MsgsSent, 1);
                if let Some(c) = kind_counter(kind) {
                    self.add(p, c, 1);
                }
            }
            ProtocolEvent::MsgRecv { .. } => self.add(p, Counter::MsgsRecv, 1),
            ProtocolEvent::VoteCast { .. } => self.add(p, Counter::VotesCast, 1),
            ProtocolEvent::DecisionReached { .. } => self.add(p, Counter::DecisionsReached, 1),
            ProtocolEvent::LogGc {
                records_released,
                since_decision_us,
                ..
            } => {
                self.add(p, Counter::GcRuns, 1);
                self.add(p, Counter::GcRecordsReleased, *records_released);
                if let Some(lat) = since_decision_us {
                    self.add(p, Counter::GcLatencyUsSum, *lat);
                    self.add(p, Counter::GcLatencySamples, 1);
                }
            }
            ProtocolEvent::RetryScheduled { purpose, .. } => match *purpose {
                "inquiry-retry" => self.add(p, Counter::InquiryRetries, 1),
                "ack-resend" => self.add(p, Counter::DecisionResends, 1),
                // Other purposes (e.g. a gateway apply retry) are not
                // separately bucketed.
                _ => {}
            },
            ProtocolEvent::BatchCommit { occupancy, .. } => {
                self.add(p, Counter::BatchedForces, 1);
                self.add(p, Counter::BatchOccupancy, *occupancy);
            }
            ProtocolEvent::AdmissionShed { .. } => self.add(p, Counter::AdmissionShed, 1),
            ProtocolEvent::CrashObserved { .. } => self.add(p, Counter::Crashes, 1),
            ProtocolEvent::RecoveryStep { .. } => self.add(p, Counter::Recoveries, 1),
        }
    }

    /// Project one protocol's row onto the legacy per-transaction
    /// counter shape of `acp-types` (the subsumption guarantee: every
    /// quantity `CostCounters` tracks is recoverable from the registry).
    #[must_use]
    pub fn cost_counters(&self, proto: ProtoLabel) -> CostCounters {
        let g = |c| self.get(proto, c);
        CostCounters {
            forced_writes: g(Counter::ForcedWrites),
            log_records: g(Counter::ForcedWrites) + g(Counter::LazyWrites),
            prepares: g(Counter::Prepares),
            votes: g(Counter::Votes),
            decisions: g(Counter::Decisions),
            acks: g(Counter::Acks),
            inquiries: g(Counter::Inquiries),
            responses: g(Counter::Responses),
            // The registry's counter grid predates Paxos Commit and its
            // goldens pin the exact counter set; Paxos message tallies
            // live in the engines' own `CostCounters`, not here.
            paxos: 0,
        }
    }

    /// Is every counter of this protocol's row zero?
    #[must_use]
    pub fn is_zero(&self, proto: ProtoLabel) -> bool {
        Counter::ALL.iter().all(|&c| self.get(proto, c) == 0)
    }

    /// Render the registry as a pretty-printed JSON object:
    ///
    /// ```json
    /// {
    ///   "experiment": "E5",
    ///   "protocols": {
    ///     "PrAny": { "forced_writes": 3, ... }
    ///   }
    /// }
    /// ```
    ///
    /// All-zero protocol rows are omitted; key order is fixed, so two
    /// registries with equal counts render byte-identically.
    #[must_use]
    pub fn to_json(&self, experiment: &str) -> String {
        format!(
            "{{\n  \"experiment\": \"{}\",\n  \"protocols\": {}\n}}\n",
            crate::json::escape(experiment),
            self.protocols_json(1)
        )
    }

    /// Render just the per-protocol counter object (the `"protocols"`
    /// value of [`MetricsRegistry::to_json`]), indented as if nested
    /// `depth` levels deep (2 spaces per level). Experiment binaries use
    /// this to embed several registries in one JSON document.
    #[must_use]
    pub fn protocols_json(&self, depth: usize) -> String {
        let pad = "  ".repeat(depth);
        let mut s = String::from("{");
        let mut first = true;
        for &p in &ProtoLabel::ALL {
            if self.is_zero(p) {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n{pad}  \"{}\": {{", p.name());
            for (i, &c) in Counter::ALL.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(s, "{sep}\n{pad}    \"{}\": {}", c.name(), self.get(p, c));
            }
            let _ = write!(s, "\n{pad}  }}");
        }
        let _ = write!(s, "\n{pad}}}");
        s
    }
}

/// A point-in-time copy of the registry's full counter grid, stamped
/// with the host's clock. Snapshots are plain values: compare them,
/// subtract them, or render curves from a sequence of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Host time (microseconds since run start) the snapshot was taken.
    pub at_us: u64,
    counts: [[u64; N_COUNTERS]; N_PROTOS],
}

impl MetricsSnapshot {
    /// Read one cell.
    #[must_use]
    pub fn get(&self, proto: ProtoLabel, counter: Counter) -> u64 {
        self.counts[proto.index()][counter.index()]
    }

    /// Sum one counter across every protocol row.
    #[must_use]
    pub fn total(&self, counter: Counter) -> u64 {
        ProtoLabel::ALL.iter().map(|&p| self.get(p, counter)).sum()
    }
}

impl MetricsRegistry {
    /// Copy the whole grid at the host's current clock. One relaxed
    /// load per cell — cheap enough to call every few reactor ticks.
    /// Counters are monotone, so a snapshot taken while other threads
    /// record is a consistent *lower bound* per cell; under the
    /// single-threaded reactor it is exact.
    #[must_use]
    pub fn snapshot(&self, at_us: u64) -> MetricsSnapshot {
        let mut counts = [[0u64; N_COUNTERS]; N_PROTOS];
        for (pi, row) in counts.iter_mut().enumerate() {
            for (ci, cell) in row.iter_mut().enumerate() {
                *cell = self.cells[pi][ci].load(Ordering::Relaxed);
            }
        }
        MetricsSnapshot { at_us, counts }
    }
}

/// A shared, append-only sequence of [`MetricsSnapshot`]s: the live
/// metrics surface. Long-running hosts (the reactor) push a snapshot
/// every N ticks / M transactions; campaign binaries read the sequence
/// afterwards (or concurrently) and stream cost curves — forces per
/// committed transaction over time — instead of one exit aggregate.
#[derive(Debug, Default)]
pub struct MetricsTimeline {
    snaps: std::sync::Mutex<Vec<MetricsSnapshot>>,
}

impl MetricsTimeline {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a snapshot.
    pub fn push(&self, snap: MetricsSnapshot) {
        self.snaps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(snap);
    }

    /// Number of snapshots recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snaps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Is the timeline empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out every snapshot recorded so far, in push order.
    #[must_use]
    pub fn snapshots(&self) -> Vec<MetricsSnapshot> {
        self.snaps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Merge several per-reactor timelines into one deterministic
    /// sequence, each snapshot tagged with the index of the timeline it
    /// came from. Order is total and stable: ascending `at_us`, ties
    /// broken by timeline index, then by push order within a timeline —
    /// so N reactors whose clocks coincide always interleave the same
    /// way, and re-merging the same timelines is byte-identical. This is
    /// the multi-reactor report's metrics surface: per-shard registries
    /// snapshot independently, one merged timeline comes out.
    #[must_use]
    pub fn merged(timelines: &[&MetricsTimeline]) -> Vec<(usize, MetricsSnapshot)> {
        let mut all: Vec<(usize, usize, MetricsSnapshot)> = Vec::new();
        for (ti, tl) in timelines.iter().enumerate() {
            for (pi, snap) in tl.snapshots().into_iter().enumerate() {
                all.push((ti, pi, snap));
            }
        }
        all.sort_by(|a, b| {
            a.2.at_us
                .cmp(&b.2.at_us)
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        all.into_iter().map(|(ti, _, snap)| (ti, snap)).collect()
    }
}

fn kind_counter(kind: &str) -> Option<Counter> {
    match kind {
        "prepare" => Some(Counter::Prepares),
        "vote" => Some(Counter::Votes),
        "decision" => Some(Counter::Decisions),
        "ack" => Some(Counter::Acks),
        "inquiry" => Some(Counter::Inquiries),
        "inquiry-response" => Some(Counter::Responses),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn force(site: u32, proto: ProtoLabel) -> ProtocolEvent {
        ProtocolEvent::ForceWrite {
            at_us: 0,
            site,
            proto,
            record: "commit",
            txn: Some(1),
        }
    }

    #[test]
    fn records_are_bucketed_by_protocol() {
        let r = MetricsRegistry::new();
        r.record(&force(0, ProtoLabel::PrAny));
        r.record(&force(1, ProtoLabel::PrA));
        r.record(&force(1, ProtoLabel::PrA));
        assert_eq!(r.get(ProtoLabel::PrAny, Counter::ForcedWrites), 1);
        assert_eq!(r.get(ProtoLabel::PrA, Counter::ForcedWrites), 2);
        assert_eq!(r.get(ProtoLabel::PrC, Counter::ForcedWrites), 0);
    }

    #[test]
    fn message_kinds_feed_the_cost_projection() {
        let r = MetricsRegistry::new();
        for kind in ["prepare", "vote", "decision", "ack", "inquiry", "inquiry-response"] {
            r.record(&ProtocolEvent::MsgSend {
                at_us: 0,
                site: 0,
                proto: ProtoLabel::PrN,
                to: 1,
                kind,
                txn: None,
            });
        }
        let c = r.cost_counters(ProtoLabel::PrN);
        assert_eq!(c.messages(), 6);
        assert_eq!(c.prepares, 1);
        assert_eq!(c.responses, 1);
        assert_eq!(r.get(ProtoLabel::PrN, Counter::MsgsSent), 6);
    }

    #[test]
    fn gc_latency_accumulates() {
        let r = MetricsRegistry::new();
        r.record(&ProtocolEvent::LogGc {
            at_us: 10,
            site: 0,
            proto: ProtoLabel::PrAny,
            released_up_to: 4,
            records_released: 4,
            since_decision_us: Some(700),
        });
        r.record(&ProtocolEvent::LogGc {
            at_us: 20,
            site: 0,
            proto: ProtoLabel::PrAny,
            released_up_to: 8,
            records_released: 2,
            since_decision_us: None,
        });
        assert_eq!(r.get(ProtoLabel::PrAny, Counter::GcRuns), 2);
        assert_eq!(r.get(ProtoLabel::PrAny, Counter::GcRecordsReleased), 6);
        assert_eq!(r.get(ProtoLabel::PrAny, Counter::GcLatencyUsSum), 700);
        assert_eq!(r.get(ProtoLabel::PrAny, Counter::GcLatencySamples), 1);
    }

    #[test]
    fn retries_are_bucketed_by_purpose() {
        let r = MetricsRegistry::new();
        for (purpose, attempt) in [("inquiry-retry", 1), ("inquiry-retry", 2), ("ack-resend", 1)] {
            r.record(&ProtocolEvent::RetryScheduled {
                at_us: 0,
                site: 1,
                proto: ProtoLabel::PrC,
                purpose,
                attempt,
                txn: None,
            });
        }
        assert_eq!(r.get(ProtoLabel::PrC, Counter::InquiryRetries), 2);
        assert_eq!(r.get(ProtoLabel::PrC, Counter::DecisionResends), 1);
        // Unbucketed purposes count nowhere.
        r.record(&ProtocolEvent::RetryScheduled {
            at_us: 0,
            site: 1,
            proto: ProtoLabel::Gateway,
            purpose: "apply-retry",
            attempt: 1,
            txn: None,
        });
        assert!(r.is_zero(ProtoLabel::Gateway));
    }

    #[test]
    fn batch_commits_feed_both_amortization_counters() {
        let r = MetricsRegistry::new();
        r.record(&ProtocolEvent::BatchCommit {
            at_us: 10,
            site: 0,
            proto: ProtoLabel::PrAny,
            occupancy: 4,
        });
        r.record(&ProtocolEvent::BatchCommit {
            at_us: 20,
            site: 0,
            proto: ProtoLabel::PrAny,
            occupancy: 2,
        });
        assert_eq!(r.get(ProtoLabel::PrAny, Counter::BatchedForces), 2);
        assert_eq!(r.get(ProtoLabel::PrAny, Counter::BatchOccupancy), 6);
    }

    #[test]
    fn snapshots_capture_the_grid_and_totals() {
        let r = MetricsRegistry::new();
        r.record(&force(0, ProtoLabel::PrAny));
        let s1 = r.snapshot(100);
        r.record(&force(1, ProtoLabel::PrA));
        r.record(&force(1, ProtoLabel::PrA));
        let s2 = r.snapshot(200);
        assert_eq!(s1.get(ProtoLabel::PrAny, Counter::ForcedWrites), 1);
        assert_eq!(s1.total(Counter::ForcedWrites), 1);
        assert_eq!(s2.get(ProtoLabel::PrA, Counter::ForcedWrites), 2);
        assert_eq!(s2.total(Counter::ForcedWrites), 3);
        assert_eq!(s1.at_us, 100);

        let tl = MetricsTimeline::new();
        assert!(tl.is_empty());
        tl.push(s1.clone());
        tl.push(s2);
        let snaps = tl.snapshots();
        assert_eq!(tl.len(), 2);
        assert_eq!(snaps[0], s1);
        assert!(snaps[1].at_us > snaps[0].at_us);
    }

    #[test]
    fn set_max_is_a_high_water_mark() {
        let r = MetricsRegistry::new();
        let c = Counter::TablePeakShardOccupancy;
        r.set_max(ProtoLabel::PrAny, c, 3);
        r.set_max(ProtoLabel::PrAny, c, 7);
        r.set_max(ProtoLabel::PrAny, c, 5); // lower sample does not regress the peak
        assert_eq!(r.get(ProtoLabel::PrAny, c), 7);
    }

    #[test]
    fn merged_timelines_order_by_time_then_timeline_then_push() {
        let r = MetricsRegistry::new();
        let a = MetricsTimeline::new();
        let b = MetricsTimeline::new();
        a.push(r.snapshot(100));
        a.push(r.snapshot(300));
        b.push(r.snapshot(100)); // at_us tie with a's first snapshot
        b.push(r.snapshot(200));
        let merged = MetricsTimeline::merged(&[&a, &b]);
        let order: Vec<(usize, u64)> = merged.iter().map(|(ti, s)| (*ti, s.at_us)).collect();
        // Tie at 100 µs resolves to timeline 0 first; the rest by time.
        assert_eq!(order, vec![(0, 100), (1, 100), (1, 200), (0, 300)]);
        // Re-merging is byte-identical (determinism).
        assert_eq!(MetricsTimeline::merged(&[&a, &b]), merged);
    }

    #[test]
    fn json_omits_zero_rows_and_is_deterministic() {
        let r = MetricsRegistry::new();
        r.record(&force(0, ProtoLabel::PrC));
        let a = r.to_json("unit");
        let b = r.to_json("unit");
        assert_eq!(a, b);
        assert!(a.contains("\"PrC\""));
        assert!(!a.contains("\"PrA\""));
        assert!(a.contains("\"forced_writes\": 1"));
    }
}
