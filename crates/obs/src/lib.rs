//! # acp-obs
//!
//! Protocol observability for the Presumed Any workspace: a typed
//! event stream, pluggable trace sinks, a lock-free per-protocol
//! metrics registry, and schedule renderers that regenerate the paper's
//! figures from live runs.
//!
//! The paper's results *are* observability claims: each 2PC variant is
//! characterized by how many log writes it forces, which messages and
//! acknowledgments it exchanges, and when it may garbage-collect
//! (Definition 1's operational correctness). This crate makes those
//! quantities first-class:
//!
//! * [`event::ProtocolEvent`] — one variant per observable step:
//!   `ForceWrite`, `NonForcedWrite`, `MsgSend`, `MsgRecv`, `VoteCast`,
//!   `DecisionReached`, `LogGc`, `CrashObserved`, `RecoveryStep`.
//! * [`sink::TraceSink`] — where events go: collect them
//!   ([`sink::VecSink`]), keep the recent tail ([`sink::RingBufferSink`]),
//!   stream them as JSON lines ([`sink::JsonLinesSink`]), count them
//!   ([`sink::CountingSink`]), or all at once ([`sink::FanoutSink`]).
//! * [`metrics::MetricsRegistry`] — an atomic grid of per-protocol cost
//!   counters that subsumes `acp-types`' `CostCounters` and adds GC
//!   latency in sim-time.
//! * [`render`] — replay an event stream into the paper's figure format
//!   (ASCII schedule tables and Mermaid sequence diagrams); the
//!   `exp_figures` binary uses it to regenerate Figures 1–4 under
//!   `results/figures/`, pinned byte-for-byte by a golden test.
//!
//! Emission points live in the hosts, not the engines: the scenario
//! harness (`acp-core::harness`), the deterministic simulator's world
//! loop (`acp-sim`), the threaded runtime (`acp-net`) and the WAL
//! wrapper (`acp-wal::observe::ObservedLog`) all feed the same sink
//! trait, so one experiment can trace the simulator and the threaded
//! cluster with identical tooling.
//!
//! This crate depends only on `acp-types`; timestamps are raw
//! microseconds (virtual sim-time or elapsed wall-time) so no runtime
//! concern leaks in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod render;
pub mod sink;
pub mod wire;

pub use event::{ProtoLabel, ProtocolEvent};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use json::{event_to_json, parse_flat_json, JsonValue};
pub use metrics::{Counter, MetricsRegistry, MetricsSnapshot, MetricsTimeline};
pub use render::{render_ascii, render_mermaid};
pub use sink::{CountingSink, FanoutSink, JsonLinesSink, NullSink, RingBufferSink, TraceSink, VecSink};
pub use wire::{WireMetrics, WireSnapshot};
