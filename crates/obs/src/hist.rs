//! Log-bucketed latency histograms.
//!
//! The overload campaign (E17) needs commit-latency tails — p50, p99,
//! p999 — not means: past the saturation knee the mean stays polite
//! while the tail explodes. A [`LatencyHistogram`] is 64 atomic
//! power-of-two buckets over microseconds, so recording is one
//! `leading_zeros` and one relaxed `fetch_add` (safe on the reactor's
//! hot path), resolution is a constant relative error (each bucket is
//! at most 2× its predecessor), and the range covers a microsecond to
//! centuries with no configuration.
//!
//! Like the counter grid, histograms aggregate commutatively: a
//! [`HistogramSnapshot`] is a plain value and [`HistogramSnapshot::merge`]
//! adds bucket-wise, so per-reactor histograms merge into one cluster
//! histogram exactly the way [`MetricsTimeline::merged`] combines
//! per-reactor snapshot sequences — shard first, merge at report time,
//! no cross-thread contention while running.
//!
//! [`MetricsTimeline::merged`]: crate::metrics::MetricsTimeline::merged

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `i` is the set of samples with bit
/// length `i` (so bucket `i > 0` spans `[2^(i-1), 2^i)`), with bucket
/// 0 for `v == 0`. Bit lengths run 0..=64, hence 65 buckets.
const N_BUCKETS: usize = 65;

/// A lock-free histogram of `u64` samples (microseconds, by
/// convention) in logarithmic buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index of sample `v`: its bit length (0 for 0), so
/// bucket `i > 0` spans `[2^(i-1), 2^i)`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The inclusive upper bound reported for bucket `i` (`2^i - 1`): the
/// quantile estimate errs toward the pessimistic edge of its bucket.
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i).wrapping_sub(1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the bucket counts out as a plain value.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; N_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]: a plain value that
/// merges, compares and renders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; N_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; N_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity of [`HistogramSnapshot::merge`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Absorb another snapshot bucket-wise. Addition commutes, so
    /// merging per-reactor histograms in any order yields the same
    /// cluster histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// The upper bound of the bucket containing quantile `q` in
    /// `[0, 1]` — a conservative (over-)estimate with at most 2×
    /// relative error. `None` when the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // The rank of the quantile sample, 1-based; q = 0 gives the
        // smallest sample's bucket, q = 1 the largest.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        Some(bucket_upper(N_BUCKETS - 1))
    }

    /// Median estimate (`quantile(0.5)`).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 99th percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    #[must_use]
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        // Rank 3 of 6 at q=0.5 lands in bucket_of(3) = 2 → upper 3.
        assert_eq!(s.p50(), Some(3));
        // The largest sample (1000) has bit length 10 → upper 1023.
        assert_eq!(s.p99(), Some(1023));
        assert_eq!(s.p999(), Some(1023));
        assert_eq!(s.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p999(), None);
    }

    #[test]
    fn merge_commutes_and_matches_a_single_histogram() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let whole = LatencyHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 { a.record(v * 7) } else { b.record(v * 7) }
            whole.record(v * 7);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole.snapshot());
        assert_eq!(ab.count(), 1000);
        assert_eq!(ab.p50(), whole.snapshot().p50());
    }

    #[test]
    fn quantile_estimate_bounds_the_true_value_within_2x() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p99 = s.p99().unwrap();
        // True p99 is 9900; the bucket upper bound may overshoot by
        // at most 2× and never undershoots below the true value's
        // bucket lower bound.
        assert!(p99 >= 9900 / 2 && p99 <= 9900 * 2, "p99 estimate {p99}");
    }
}
