//! Minimal hand-rolled JSON emission.
//!
//! The workspace builds fully offline with no serialization dependency,
//! so the trace and metrics dumps assemble their JSON by hand. Only the
//! small subset the observability layer needs is implemented: string
//! escaping and ordered objects of scalar/nested values.

use crate::event::ProtocolEvent;
use std::fmt::Write as _;

/// Escape `s` for inclusion in a JSON string literal (quotes not
/// included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one event as a single JSON object (one line, no trailing
/// newline) for the JSON-lines trace format.
#[must_use]
pub fn event_to_json(ev: &ProtocolEvent) -> String {
    let mut s = format!(
        "{{\"type\":\"{}\",\"at_us\":{},\"site\":{},\"proto\":\"{}\"",
        ev.tag(),
        ev.at_us(),
        ev.site(),
        ev.proto().name()
    );
    match ev {
        ProtocolEvent::ForceWrite { record, txn, .. }
        | ProtocolEvent::NonForcedWrite { record, txn, .. } => {
            let _ = write!(s, ",\"record\":\"{}\"", escape(record));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::MsgSend { to, kind, txn, .. } => {
            let _ = write!(s, ",\"to\":{},\"kind\":\"{}\"", to, escape(kind));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::MsgRecv { from, kind, txn, .. } => {
            let _ = write!(s, ",\"from\":{},\"kind\":\"{}\"", from, escape(kind));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::VoteCast { vote, txn, .. } => {
            let _ = write!(s, ",\"vote\":\"{}\"", escape(vote));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::DecisionReached { outcome, txn, .. } => {
            let _ = write!(s, ",\"outcome\":\"{}\"", escape(outcome));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::LogGc {
            released_up_to,
            records_released,
            since_decision_us,
            ..
        } => {
            let _ = write!(
                s,
                ",\"released_up_to\":{released_up_to},\"records_released\":{records_released}"
            );
            if let Some(lat) = since_decision_us {
                let _ = write!(s, ",\"since_decision_us\":{lat}");
            }
        }
        ProtocolEvent::RetryScheduled {
            purpose,
            attempt,
            txn,
            ..
        } => {
            let _ = write!(
                s,
                ",\"purpose\":\"{}\",\"attempt\":{attempt}",
                escape(purpose)
            );
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::BatchCommit { occupancy, .. } => {
            let _ = write!(s, ",\"occupancy\":{occupancy}");
        }
        ProtocolEvent::AdmissionShed {
            txn,
            inflight,
            limit,
            ..
        } => {
            push_txn(&mut s, *txn);
            let _ = write!(s, ",\"inflight\":{inflight},\"limit\":{limit}");
        }
        ProtocolEvent::CrashObserved { .. } => {}
        ProtocolEvent::RecoveryStep { detail, .. } => {
            let _ = write!(s, ",\"detail\":\"{}\"", escape(detail));
        }
    }
    s.push('}');
    s
}

fn push_txn(s: &mut String, txn: Option<u64>) {
    if let Some(t) = txn {
        let _ = write!(s, ",\"txn\":{t}");
    }
}

/// A scalar value of a flat trace-line object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// An unsigned integer (the only number shape the trace format
    /// emits).
    Num(u64),
    /// A string, unescaped.
    Str(String),
}

impl JsonValue {
    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            JsonValue::Str(_) => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Num(_) => None,
            JsonValue::Str(s) => Some(s),
        }
    }
}

/// Parse one *flat* JSON object line — the exact subset
/// [`event_to_json`] emits: string keys mapped to unsigned integers or
/// strings, no nesting, no arrays, no floats. This is the trace
/// replayer's inverse of the emission above; keeping both in this
/// module keeps the dialect honest without a serialization dependency.
///
/// Returns `None` on anything outside that subset (malformed input, a
/// nested value, a negative number).
#[must_use]
pub fn parse_flat_json(line: &str) -> Option<std::collections::BTreeMap<String, JsonValue>> {
    let mut out = std::collections::BTreeMap::new();
    let mut chars = line.trim().chars().peekable();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
        if chars.next()? != '"' {
            return None;
        }
        let mut s = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(s),
                '\\' => match chars.next()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + chars.next()?.to_digit(16)?;
                        }
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => s.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        skip_ws(&mut chars);
        return chars.next().is_none().then_some(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(u64::from(d))?;
                    chars.next();
                }
                JsonValue::Num(n)
            }
            _ => return None, // nested / non-scalar: outside the dialect
        };
        out.insert(key, value);
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => {}
            '}' => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProtoLabel;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn event_lines_are_valid_objects() {
        let e = ProtocolEvent::MsgSend {
            at_us: 1200,
            site: 0,
            proto: ProtoLabel::PrAny,
            to: 2,
            kind: "prepare",
            txn: Some(1),
        };
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"msg_send\",\"at_us\":1200,\"site\":0,\"proto\":\"PrAny\",\
             \"to\":2,\"kind\":\"prepare\",\"txn\":1}"
        );
    }

    #[test]
    fn parse_round_trips_emitted_events() {
        let e = ProtocolEvent::RecoveryStep {
            at_us: 42,
            site: 1,
            proto: ProtoLabel::PrC,
            detail: "answer inquiry t7: \"abort\"\n".to_string(),
        };
        let m = parse_flat_json(&event_to_json(&e)).expect("parse");
        assert_eq!(m["type"].as_str(), Some("recovery_step"));
        assert_eq!(m["at_us"].as_u64(), Some(42));
        assert_eq!(m["detail"].as_str(), Some("answer inquiry t7: \"abort\"\n"));
    }

    #[test]
    fn parse_rejects_out_of_dialect_input() {
        assert!(parse_flat_json("{}").is_some());
        assert!(parse_flat_json("not json").is_none());
        assert!(parse_flat_json("{\"a\":1} trailing").is_none());
        assert!(parse_flat_json("{\"a\":{\"nested\":1}}").is_none());
        assert!(parse_flat_json("{\"a\":-1}").is_none());
        assert!(parse_flat_json("{\"a\":[1]}").is_none());
        assert!(parse_flat_json("{\"a\"").is_none());
    }

    #[test]
    fn gc_event_carries_latency() {
        let e = ProtocolEvent::LogGc {
            at_us: 5000,
            site: 0,
            proto: ProtoLabel::PrN,
            released_up_to: 4,
            records_released: 3,
            since_decision_us: Some(800),
        };
        let line = event_to_json(&e);
        assert!(line.contains("\"records_released\":3"));
        assert!(line.contains("\"since_decision_us\":800"));
    }
}
