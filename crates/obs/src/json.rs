//! Minimal hand-rolled JSON emission.
//!
//! The workspace builds fully offline with no serialization dependency,
//! so the trace and metrics dumps assemble their JSON by hand. Only the
//! small subset the observability layer needs is implemented: string
//! escaping and ordered objects of scalar/nested values.

use crate::event::ProtocolEvent;
use std::fmt::Write as _;

/// Escape `s` for inclusion in a JSON string literal (quotes not
/// included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one event as a single JSON object (one line, no trailing
/// newline) for the JSON-lines trace format.
#[must_use]
pub fn event_to_json(ev: &ProtocolEvent) -> String {
    let mut s = format!(
        "{{\"type\":\"{}\",\"at_us\":{},\"site\":{},\"proto\":\"{}\"",
        ev.tag(),
        ev.at_us(),
        ev.site(),
        ev.proto().name()
    );
    match ev {
        ProtocolEvent::ForceWrite { record, txn, .. }
        | ProtocolEvent::NonForcedWrite { record, txn, .. } => {
            let _ = write!(s, ",\"record\":\"{}\"", escape(record));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::MsgSend { to, kind, txn, .. } => {
            let _ = write!(s, ",\"to\":{},\"kind\":\"{}\"", to, escape(kind));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::MsgRecv { from, kind, txn, .. } => {
            let _ = write!(s, ",\"from\":{},\"kind\":\"{}\"", from, escape(kind));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::VoteCast { vote, txn, .. } => {
            let _ = write!(s, ",\"vote\":\"{}\"", escape(vote));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::DecisionReached { outcome, txn, .. } => {
            let _ = write!(s, ",\"outcome\":\"{}\"", escape(outcome));
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::LogGc {
            released_up_to,
            records_released,
            since_decision_us,
            ..
        } => {
            let _ = write!(
                s,
                ",\"released_up_to\":{released_up_to},\"records_released\":{records_released}"
            );
            if let Some(lat) = since_decision_us {
                let _ = write!(s, ",\"since_decision_us\":{lat}");
            }
        }
        ProtocolEvent::RetryScheduled {
            purpose,
            attempt,
            txn,
            ..
        } => {
            let _ = write!(
                s,
                ",\"purpose\":\"{}\",\"attempt\":{attempt}",
                escape(purpose)
            );
            push_txn(&mut s, *txn);
        }
        ProtocolEvent::BatchCommit { occupancy, .. } => {
            let _ = write!(s, ",\"occupancy\":{occupancy}");
        }
        ProtocolEvent::CrashObserved { .. } => {}
        ProtocolEvent::RecoveryStep { detail, .. } => {
            let _ = write!(s, ",\"detail\":\"{}\"", escape(detail));
        }
    }
    s.push('}');
    s
}

fn push_txn(s: &mut String, txn: Option<u64>) {
    if let Some(t) = txn {
        let _ = write!(s, ",\"txn\":{t}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProtoLabel;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn event_lines_are_valid_objects() {
        let e = ProtocolEvent::MsgSend {
            at_us: 1200,
            site: 0,
            proto: ProtoLabel::PrAny,
            to: 2,
            kind: "prepare",
            txn: Some(1),
        };
        assert_eq!(
            event_to_json(&e),
            "{\"type\":\"msg_send\",\"at_us\":1200,\"site\":0,\"proto\":\"PrAny\",\
             \"to\":2,\"kind\":\"prepare\",\"txn\":1}"
        );
    }

    #[test]
    fn gc_event_carries_latency() {
        let e = ProtocolEvent::LogGc {
            at_us: 5000,
            site: 0,
            proto: ProtoLabel::PrN,
            released_up_to: 4,
            records_released: 3,
            since_decision_us: Some(800),
        };
        let line = event_to_json(&e);
        assert!(line.contains("\"records_released\":3"));
        assert!(line.contains("\"since_decision_us\":800"));
    }
}
