//! Pluggable trace sinks.
//!
//! A [`TraceSink`] receives every [`ProtocolEvent`] a host emits. Sinks
//! take `&self` and are `Send + Sync`, so one `Arc<dyn TraceSink>` can
//! be shared by the single-threaded simulator, a `parallel_map` sweep
//! and the threaded actor runtime alike; implementations use interior
//! mutability (a mutex around a buffer, or plain atomics).

use crate::event::ProtocolEvent;
use crate::json::event_to_json;
use crate::metrics::MetricsRegistry;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A consumer of protocol events.
pub trait TraceSink: Send + Sync {
    /// Observe one event. Must be cheap and must not panic — sinks run
    /// inside protocol hosts.
    fn record(&self, ev: &ProtocolEvent);
}

/// Discards everything (the default sink).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: &ProtocolEvent) {}
}

/// Collects every event into a vector.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<ProtocolEvent>>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy out everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Vec<ProtocolEvent> {
        self.events.lock().expect("VecSink poisoned").clone()
    }

    /// Drain the recorded events, leaving the sink empty.
    #[must_use]
    pub fn take(&self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut *self.events.lock().expect("VecSink poisoned"))
    }
}

impl TraceSink for VecSink {
    fn record(&self, ev: &ProtocolEvent) {
        self.events.lock().expect("VecSink poisoned").push(ev.clone());
    }
}

/// Keeps only the most recent `capacity` events — a flight recorder for
/// long campaigns where the full stream would be too large.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<ProtocolEvent>>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (capacity 0 records
    /// nothing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// The retained tail of the stream, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<ProtocolEvent> {
        self.buf
            .lock()
            .expect("RingBufferSink poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, ev: &ProtocolEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut buf = self.buf.lock().expect("RingBufferSink poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// Streams events as JSON lines to any writer (a file, a `Vec<u8>`, …).
///
/// Each event becomes one self-contained JSON object per line; hosts
/// can interleave their own metadata lines via [`JsonLinesSink::meta`]
/// (e.g. to delimit runs within one trace file).
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    w: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap a writer.
    #[must_use]
    pub fn new(w: W) -> Self {
        JsonLinesSink { w: Mutex::new(w) }
    }

    /// Write one raw metadata line (callers supply valid JSON).
    pub fn meta(&self, line: &str) {
        let mut w = self.w.lock().expect("JsonLinesSink poisoned");
        let _ = writeln!(w, "{line}");
    }

    /// Flush and unwrap the writer.
    ///
    /// # Panics
    /// Panics if the sink's mutex was poisoned.
    #[must_use]
    pub fn into_inner(self) -> W {
        let mut w = self.w.into_inner().expect("JsonLinesSink poisoned");
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, ev: &ProtocolEvent) {
        let mut w = self.w.lock().expect("JsonLinesSink poisoned");
        // I/O errors are swallowed by design: observability must never
        // alter protocol execution.
        let _ = writeln!(w, "{}", event_to_json(ev));
    }
}

/// Feeds a shared [`MetricsRegistry`] — the "counting" sink.
#[derive(Clone, Debug)]
pub struct CountingSink {
    registry: Arc<MetricsRegistry>,
}

impl CountingSink {
    /// Count into `registry`.
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        CountingSink { registry }
    }

    /// The registry this sink feeds.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl TraceSink for CountingSink {
    fn record(&self, ev: &ProtocolEvent) {
        self.registry.record(ev);
    }
}

/// Broadcasts each event to several sinks in order.
#[derive(Clone, Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Fan out to `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn record(&self, ev: &ProtocolEvent) {
        for s in &self.sinks {
            s.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProtoLabel;
    use crate::metrics::Counter;

    fn ev(at_us: u64) -> ProtocolEvent {
        ProtocolEvent::ForceWrite {
            at_us,
            site: 0,
            proto: ProtoLabel::PrN,
            record: "commit",
            txn: Some(1),
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let s = VecSink::new();
        s.record(&ev(1));
        s.record(&ev(2));
        let got = s.take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].at_us(), 1);
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let s = RingBufferSink::new(2);
        for t in 1..=5 {
            s.record(&ev(t));
        }
        let got = s.snapshot();
        assert_eq!(got.iter().map(ProtocolEvent::at_us).collect::<Vec<_>>(), [4, 5]);
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let s = JsonLinesSink::new(Vec::new());
        s.meta("{\"run\":\"unit\"}");
        s.record(&ev(9));
        let bytes = s.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"run\":\"unit\"}");
        assert!(lines[1].contains("\"type\":\"force_write\""));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let vec = Arc::new(VecSink::new());
        let reg = Arc::new(MetricsRegistry::new());
        let fan = FanoutSink::new(vec![
            Arc::clone(&vec) as Arc<dyn TraceSink>,
            Arc::new(CountingSink::new(Arc::clone(&reg))),
        ]);
        fan.record(&ev(3));
        assert_eq!(vec.snapshot().len(), 1);
        assert_eq!(reg.get(ProtoLabel::PrN, Counter::ForcedWrites), 1);
    }
}
