//! Transport-level counters for the socket runtime.
//!
//! The protocol-cost grid ([`crate::metrics::MetricsRegistry`]) counts
//! *protocol* quantities — forces, messages, acks — whose values are
//! pinned by committed goldens and must not depend on the transport.
//! The socket backend's own health (bytes moved, frames framed,
//! reconnect churn, backpressure sheds) is a different axis, so it
//! lives in its own lock-free struct rather than one grid row per
//! transport quantity. The single exception is overload evidence:
//! [`WireSnapshot::surface_into`] mirrors `backpressure_drops` into
//! [`crate::metrics::Counter::BackpressureDrops`] so a metrics
//! snapshot shows transport shedding next to the admission
//! controller's protocol-level `admission_shed` — overload must be
//! observable on the one surface campaigns already read. Clean runs
//! never shed, so the surfaced cell stays zero everywhere a golden
//! pins it.
//!
//! One [`WireMetrics`] instance describes one node (one event loop);
//! clone the `Arc` into tests or reports and read a coherent-enough
//! [`WireSnapshot`] at any time (relaxed atomics — counters, not a
//! consistency protocol).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! wire_counters {
    ($($(#[doc = $doc:literal])+ $name:ident),+ $(,)?) => {
        /// Lock-free transport counters for one socket node.
        #[derive(Debug, Default)]
        pub struct WireMetrics {
            $($(#[doc = $doc])+ pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`WireMetrics`].
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct WireSnapshot {
            $($(#[doc = $doc])+ pub $name: u64,)+
        }

        impl WireMetrics {
            /// A zeroed counter set.
            #[must_use]
            pub fn new() -> Self {
                Self::default()
            }

            /// Copy every counter (relaxed loads).
            #[must_use]
            pub fn snapshot(&self) -> WireSnapshot {
                WireSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl WireSnapshot {
            /// Render as one flat JSON object (the repo's hand-rolled
            /// trace dialect: stable key order, numbers only).
            #[must_use]
            pub fn to_json(&self) -> String {
                let mut out = String::from("{");
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    let _ = first;
                    out.push_str(concat!("\"", stringify!($name), "\":"));
                    out.push_str(&self.$name.to_string());
                )+
                out.push('}');
                out
            }
        }
    };
}

wire_counters! {
    /// Frames serialized and handed to a connection's write queue.
    frames_sent,
    /// Frames decoded from inbound connections.
    frames_recv,
    /// Payload bytes written to sockets (frame bytes, post-encoding).
    bytes_sent,
    /// Bytes read off sockets (pre-decoding).
    bytes_recv,
    /// Outbound connection attempts (first dials and redials).
    dials,
    /// Outbound connections that reached the established state.
    connects,
    /// Inbound connections accepted.
    accepts,
    /// Established connections lost (EOF, reset, write error) — each
    /// one schedules a backed-off redial, so `dials - connects` plus
    /// this approximates retry churn.
    disconnects,
    /// Frames dropped because a connection's bounded write queue was
    /// full (backpressure shed = omission failure).
    backpressure_drops,
    /// Frames dropped by injected faults.
    fault_drops,
    /// Frames delayed by injected faults (released later).
    fault_delays,
    /// Inbound connections dropped because a frame failed CRC/framing
    /// validation (corruption = connection-level omission).
    decode_errors,
    /// Frames that arrived with a sequence number at or below the
    /// connection's previous one — evidence of frame-level reordering
    /// (possible only via fault injection; TCP itself is FIFO).
    seq_regressions,
}

impl WireMetrics {
    /// Bump a counter by one (relaxed).
    pub fn inc(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n` (relaxed).
    pub fn add(&self, c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }
}

impl WireSnapshot {
    /// Mirror this node's transport overload evidence into the
    /// protocol-cost grid: raise
    /// [`crate::metrics::Counter::BackpressureDrops`] (attributed to
    /// [`crate::event::ProtoLabel::Other`] — the transport is not a
    /// protocol) to the drop count of this snapshot. Uses
    /// [`crate::metrics::MetricsRegistry::set_max`] because the wire
    /// counter is already cumulative; surfacing twice must not double
    /// count.
    pub fn surface_into(&self, registry: &crate::metrics::MetricsRegistry) {
        registry.set_max(
            crate::event::ProtoLabel::Other,
            crate::metrics::Counter::BackpressureDrops,
            self.backpressure_drops,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_and_json_is_stable() {
        let m = WireMetrics::new();
        m.inc(&m.frames_sent);
        m.add(&m.bytes_sent, 120);
        let s = m.snapshot();
        assert_eq!(s.frames_sent, 1);
        assert_eq!(s.bytes_sent, 120);
        let json = s.to_json();
        assert!(json.starts_with("{\"frames_sent\":1,"));
        assert!(json.contains("\"bytes_sent\":120"));
        assert!(json.ends_with("\"seq_regressions\":0}"));
        // The flat-JSON parser used by the trace tooling reads it back.
        let parsed = crate::json::parse_flat_json(&json).expect("flat json");
        assert_eq!(parsed["frames_sent"].as_u64(), Some(1));
    }
}
