//! The typed protocol event stream.
//!
//! Every cost-relevant step a protocol engine or its host takes is
//! modelled as one [`ProtocolEvent`] variant. The paper's analysis
//! (§1, §5 and Table/Figure comparisons) turns entirely on four
//! observable quantities — forced log writes, coordination messages,
//! acknowledgment rounds and garbage-collection points — so those are
//! exactly the event vocabulary, plus the failure events (crash /
//! recovery-step) that the theorems quantify over.

use acp_types::{CoordinatorKind, ProtocolKind};
use std::fmt;

/// Which 2PC variant the emitting site runs.
///
/// This is the attribution key of the metrics registry: one bucket per
/// label, so per-protocol cost comparisons (the paper's whole point)
/// fall out of a run for free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ProtoLabel {
    /// Presumed nothing (basic 2PC, Figure 2).
    PrN,
    /// Presumed abort (Figure 3).
    PrA,
    /// Presumed commit (Figure 4).
    PrC,
    /// Union 2PC coordinator (§2, atomicity-violating).
    U2pc,
    /// Conservative 2PC coordinator (§3, not operationally correct).
    C2pc,
    /// Presumed Any coordinator (§4).
    PrAny,
    /// Paxos Commit acceptor/leader (replicated coordinator).
    Paxos,
    /// A gateway fronting a legacy system (Figure 5's non-externalized
    /// branch).
    Gateway,
    /// Attribution unknown (e.g. transport-level events at an
    /// unlabelled site).
    Other,
}

impl ProtoLabel {
    /// All labels, in the fixed order used by the metrics registry and
    /// every JSON dump.
    pub const ALL: [ProtoLabel; 9] = [
        ProtoLabel::PrN,
        ProtoLabel::PrA,
        ProtoLabel::PrC,
        ProtoLabel::U2pc,
        ProtoLabel::C2pc,
        ProtoLabel::PrAny,
        ProtoLabel::Paxos,
        ProtoLabel::Gateway,
        ProtoLabel::Other,
    ];

    /// Stable display name (used in JSON keys and rendered figures).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtoLabel::PrN => "PrN",
            ProtoLabel::PrA => "PrA",
            ProtoLabel::PrC => "PrC",
            ProtoLabel::U2pc => "U2PC",
            ProtoLabel::C2pc => "C2PC",
            ProtoLabel::PrAny => "PrAny",
            ProtoLabel::Paxos => "paxos",
            ProtoLabel::Gateway => "gateway",
            ProtoLabel::Other => "other",
        }
    }

    /// Index into the metrics registry's per-protocol rows.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ProtoLabel::PrN => 0,
            ProtoLabel::PrA => 1,
            ProtoLabel::PrC => 2,
            ProtoLabel::U2pc => 3,
            ProtoLabel::C2pc => 4,
            ProtoLabel::PrAny => 5,
            ProtoLabel::Paxos => 6,
            ProtoLabel::Gateway => 7,
            ProtoLabel::Other => 8,
        }
    }

    /// The label for a participant running `p`.
    #[must_use]
    pub fn of_participant(p: ProtocolKind) -> Self {
        match p {
            ProtocolKind::PrN => ProtoLabel::PrN,
            ProtocolKind::PrA => ProtoLabel::PrA,
            ProtocolKind::PrC => ProtoLabel::PrC,
        }
    }

    /// The label for a coordinator of kind `k`. Straw-man integrations
    /// are attributed to their integration (U2PC/C2PC), not their base
    /// protocol — the base is recoverable from the scenario.
    #[must_use]
    pub fn of_coordinator(k: CoordinatorKind) -> Self {
        match k {
            CoordinatorKind::Single(p) => Self::of_participant(p),
            CoordinatorKind::U2pc(_) => ProtoLabel::U2pc,
            CoordinatorKind::C2pc(_) => ProtoLabel::C2pc,
            CoordinatorKind::PrAny(_) => ProtoLabel::PrAny,
        }
    }
}

impl fmt::Display for ProtoLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observable step of a protocol execution.
///
/// Timestamps are raw microseconds: virtual [`SimTime`] micros under the
/// deterministic simulator, elapsed-since-start micros under the
/// threaded runtime (`acp-net`). Sites are raw [`SiteId`] values and
/// transactions raw [`TxnId`] values so this crate depends only on
/// `acp-types`.
///
/// [`SimTime`]: https://docs.rs/acp-sim
/// [`SiteId`]: acp_types::SiteId
/// [`TxnId`]: acp_types::TxnId
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolEvent {
    /// A forced (synchronous) log write — the unit the paper counts.
    ForceWrite {
        /// Event time in microseconds.
        at_us: u64,
        /// Emitting site.
        site: u32,
        /// The protocol the site runs.
        proto: ProtoLabel,
        /// Log record kind (`LogPayload::kind_name`).
        record: &'static str,
        /// The transaction, when the record belongs to one.
        txn: Option<u64>,
    },
    /// A non-forced (lazy, buffered) log write.
    NonForcedWrite {
        /// Event time in microseconds.
        at_us: u64,
        /// Emitting site.
        site: u32,
        /// The protocol the site runs.
        proto: ProtoLabel,
        /// Log record kind.
        record: &'static str,
        /// The transaction, when the record belongs to one.
        txn: Option<u64>,
    },
    /// A coordination message handed to the network.
    MsgSend {
        /// Event time in microseconds.
        at_us: u64,
        /// Sending site.
        site: u32,
        /// The protocol the sender runs.
        proto: ProtoLabel,
        /// Destination site.
        to: u32,
        /// Payload kind (`Payload::kind_name`).
        kind: &'static str,
        /// The transaction the message belongs to.
        txn: Option<u64>,
    },
    /// A coordination message delivered to its destination.
    MsgRecv {
        /// Event time in microseconds.
        at_us: u64,
        /// Receiving site.
        site: u32,
        /// The protocol the receiver runs.
        proto: ProtoLabel,
        /// Originating site.
        from: u32,
        /// Payload kind.
        kind: &'static str,
        /// The transaction the message belongs to.
        txn: Option<u64>,
    },
    /// A participant fixed its vote for a transaction.
    VoteCast {
        /// Event time in microseconds.
        at_us: u64,
        /// Voting site.
        site: u32,
        /// The protocol the voter runs.
        proto: ProtoLabel,
        /// The vote (`yes` / `no` / `read-only`).
        vote: &'static str,
        /// The transaction voted on.
        txn: Option<u64>,
    },
    /// The coordinator reached a decision.
    DecisionReached {
        /// Event time in microseconds.
        at_us: u64,
        /// Deciding site.
        site: u32,
        /// The protocol the coordinator runs.
        proto: ProtoLabel,
        /// `commit` or `abort`.
        outcome: &'static str,
        /// The decided transaction.
        txn: Option<u64>,
    },
    /// A stable-log prefix was garbage collected (the observable form of
    /// Definition 1's operational correctness).
    LogGc {
        /// Event time in microseconds.
        at_us: u64,
        /// Collecting site.
        site: u32,
        /// The protocol the site runs.
        proto: ProtoLabel,
        /// New low-water mark: records below this LSN are gone.
        released_up_to: u64,
        /// How many records this collection reclaimed.
        records_released: u64,
        /// Time since the site's most recent decision, when one is
        /// known — the "GC latency" metric.
        since_decision_us: Option<u64>,
    },
    /// An engine re-armed a retry timer with exponential backoff: the
    /// previous attempt fired without resolving (a decision re-send
    /// whose acknowledgments are still owed, an inquiry that went
    /// unanswered). Emitted only for genuine retries (`attempt > 0`),
    /// so clean runs carry none of these and their traces are
    /// unchanged; under message loss the per-protocol retry counts
    /// quantify how hard each protocol worked to terminate.
    RetryScheduled {
        /// Event time in microseconds.
        at_us: u64,
        /// Retrying site.
        site: u32,
        /// The protocol the site runs.
        proto: ProtoLabel,
        /// Timer purpose (display form, e.g. `inquiry-retry`).
        purpose: &'static str,
        /// The attempt number just scheduled (1 = first retry).
        attempt: u32,
        /// The transaction, when the host knows it.
        txn: Option<u64>,
    },
    /// A group-commit batch closed with more than one member: a single
    /// physical force served `occupancy` forced appends from concurrent
    /// transactions. Batches of one are *not* emitted — a batch of one
    /// is indistinguishable from an unbatched force, which keeps clean
    /// single-transaction traces byte-identical with batching enabled.
    BatchCommit {
        /// Event time in microseconds.
        at_us: u64,
        /// The site whose log closed the batch.
        site: u32,
        /// The protocol the site runs.
        proto: ProtoLabel,
        /// Forced appends the single physical force covered.
        occupancy: u64,
    },
    /// An overloaded host refused a new transaction at the door: the
    /// admission controller found the in-flight population or the
    /// mailbox backlog above its bound and shed the commit request
    /// before any protocol work (no votes, no forces, no messages).
    /// The rejection is counted and observable — never a silent drop —
    /// so the load generator can feed it back into its retry policy.
    AdmissionShed {
        /// Event time in microseconds.
        at_us: u64,
        /// The shedding site (the coordinator's host).
        site: u32,
        /// The protocol the coordinator runs.
        proto: ProtoLabel,
        /// The refused transaction.
        txn: Option<u64>,
        /// In-flight transactions at the moment of refusal.
        inflight: u64,
        /// The admission bound that was exceeded.
        limit: u64,
    },
    /// A site fail-stopped.
    CrashObserved {
        /// Event time in microseconds.
        at_us: u64,
        /// The crashed site.
        site: u32,
        /// The protocol the site runs.
        proto: ProtoLabel,
    },
    /// A step of a site's restart procedure (§4.2) — the transport-level
    /// "site back up" plus protocol-level inquiries and presumption
    /// answers.
    RecoveryStep {
        /// Event time in microseconds.
        at_us: u64,
        /// The recovering (or answering) site.
        site: u32,
        /// The protocol the site runs.
        proto: ProtoLabel,
        /// Human-readable description of the step.
        detail: String,
    },
}

impl ProtocolEvent {
    /// Event time in microseconds.
    #[must_use]
    pub fn at_us(&self) -> u64 {
        match self {
            ProtocolEvent::ForceWrite { at_us, .. }
            | ProtocolEvent::NonForcedWrite { at_us, .. }
            | ProtocolEvent::MsgSend { at_us, .. }
            | ProtocolEvent::MsgRecv { at_us, .. }
            | ProtocolEvent::VoteCast { at_us, .. }
            | ProtocolEvent::DecisionReached { at_us, .. }
            | ProtocolEvent::LogGc { at_us, .. }
            | ProtocolEvent::RetryScheduled { at_us, .. }
            | ProtocolEvent::BatchCommit { at_us, .. }
            | ProtocolEvent::AdmissionShed { at_us, .. }
            | ProtocolEvent::CrashObserved { at_us, .. }
            | ProtocolEvent::RecoveryStep { at_us, .. } => *at_us,
        }
    }

    /// The emitting site.
    #[must_use]
    pub fn site(&self) -> u32 {
        match self {
            ProtocolEvent::ForceWrite { site, .. }
            | ProtocolEvent::NonForcedWrite { site, .. }
            | ProtocolEvent::MsgSend { site, .. }
            | ProtocolEvent::MsgRecv { site, .. }
            | ProtocolEvent::VoteCast { site, .. }
            | ProtocolEvent::DecisionReached { site, .. }
            | ProtocolEvent::LogGc { site, .. }
            | ProtocolEvent::RetryScheduled { site, .. }
            | ProtocolEvent::BatchCommit { site, .. }
            | ProtocolEvent::AdmissionShed { site, .. }
            | ProtocolEvent::CrashObserved { site, .. }
            | ProtocolEvent::RecoveryStep { site, .. } => *site,
        }
    }

    /// The protocol attribution of the event.
    #[must_use]
    pub fn proto(&self) -> ProtoLabel {
        match self {
            ProtocolEvent::ForceWrite { proto, .. }
            | ProtocolEvent::NonForcedWrite { proto, .. }
            | ProtocolEvent::MsgSend { proto, .. }
            | ProtocolEvent::MsgRecv { proto, .. }
            | ProtocolEvent::VoteCast { proto, .. }
            | ProtocolEvent::DecisionReached { proto, .. }
            | ProtocolEvent::LogGc { proto, .. }
            | ProtocolEvent::RetryScheduled { proto, .. }
            | ProtocolEvent::BatchCommit { proto, .. }
            | ProtocolEvent::AdmissionShed { proto, .. }
            | ProtocolEvent::CrashObserved { proto, .. }
            | ProtocolEvent::RecoveryStep { proto, .. } => *proto,
        }
    }

    /// Stable snake_case tag for the variant (JSON `type` field).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            ProtocolEvent::ForceWrite { .. } => "force_write",
            ProtocolEvent::NonForcedWrite { .. } => "non_forced_write",
            ProtocolEvent::MsgSend { .. } => "msg_send",
            ProtocolEvent::MsgRecv { .. } => "msg_recv",
            ProtocolEvent::VoteCast { .. } => "vote_cast",
            ProtocolEvent::DecisionReached { .. } => "decision_reached",
            ProtocolEvent::LogGc { .. } => "log_gc",
            ProtocolEvent::RetryScheduled { .. } => "retry_scheduled",
            ProtocolEvent::BatchCommit { .. } => "batch_commit",
            ProtocolEvent::AdmissionShed { .. } => "admission_shed",
            ProtocolEvent::CrashObserved { .. } => "crash_observed",
            ProtocolEvent::RecoveryStep { .. } => "recovery_step",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_index() {
        for (i, l) in ProtoLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn coordinator_labels() {
        assert_eq!(
            ProtoLabel::of_coordinator(CoordinatorKind::Single(ProtocolKind::PrA)),
            ProtoLabel::PrA
        );
        assert_eq!(
            ProtoLabel::of_coordinator(CoordinatorKind::U2pc(ProtocolKind::PrC)),
            ProtoLabel::U2pc
        );
    }

    #[test]
    fn accessors_agree_with_fields() {
        let e = ProtocolEvent::ForceWrite {
            at_us: 7,
            site: 3,
            proto: ProtoLabel::PrC,
            record: "commit",
            txn: Some(1),
        };
        assert_eq!(e.at_us(), 7);
        assert_eq!(e.site(), 3);
        assert_eq!(e.proto(), ProtoLabel::PrC);
        assert_eq!(e.tag(), "force_write");
    }
}
