//! Schedule renderers: replay a trace into the paper's figure format.
//!
//! The paper's Figures 1–4 are *schedules*: per-site columns of forced
//! writes, message exchanges and decisions. [`render_ascii`] reproduces
//! that as a time-ordered table with a per-site log-write summary (the
//! exact sequence of `force:`/`write:` steps each figure annotates);
//! [`render_mermaid`] emits the same schedule as a Mermaid sequence
//! diagram for rendered documentation. Both are pure functions of the
//! event stream, so deterministic traces render byte-identically.

use crate::event::ProtocolEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Display name for `site`, falling back to `site N`.
fn label(labels: &BTreeMap<u32, String>, site: u32) -> String {
    labels
        .get(&site)
        .cloned()
        .unwrap_or_else(|| format!("site {site}"))
}

/// One-line human description of an event (peer sites resolved through
/// `labels`).
#[must_use]
pub fn describe(ev: &ProtocolEvent, labels: &BTreeMap<u32, String>) -> String {
    match ev {
        ProtocolEvent::ForceWrite { record, txn, .. } => {
            format!("force-write {record}{}", txn_suffix(*txn))
        }
        ProtocolEvent::NonForcedWrite { record, txn, .. } => {
            format!("write {record} (lazy){}", txn_suffix(*txn))
        }
        ProtocolEvent::MsgSend { to, kind, txn, .. } => {
            format!("send {kind} -> {}{}", label(labels, *to), txn_suffix(*txn))
        }
        ProtocolEvent::MsgRecv { from, kind, txn, .. } => {
            format!("recv {kind} <- {}{}", label(labels, *from), txn_suffix(*txn))
        }
        ProtocolEvent::VoteCast { vote, txn, .. } => {
            format!("cast vote {vote}{}", txn_suffix(*txn))
        }
        ProtocolEvent::DecisionReached { outcome, txn, .. } => {
            format!("DECIDE {}{}", outcome.to_uppercase(), txn_suffix(*txn))
        }
        ProtocolEvent::LogGc {
            released_up_to,
            records_released,
            since_decision_us,
            ..
        } => {
            let mut s = format!("gc: reclaim {records_released} records (lsn < {released_up_to})");
            if let Some(lat) = since_decision_us {
                let _ = write!(s, " {lat}us after decision");
            }
            s
        }
        ProtocolEvent::RetryScheduled {
            purpose,
            attempt,
            txn,
            ..
        } => format!("retry {purpose} #{attempt}{}", txn_suffix(*txn)),
        ProtocolEvent::BatchCommit { occupancy, .. } => {
            format!("group-commit force ({occupancy} records)")
        }
        ProtocolEvent::AdmissionShed {
            txn,
            inflight,
            limit,
            ..
        } => format!("SHED at door ({inflight}/{limit} in flight){}", txn_suffix(*txn)),
        ProtocolEvent::CrashObserved { .. } => "CRASH".to_string(),
        ProtocolEvent::RecoveryStep { detail, .. } => format!("recover: {detail}"),
    }
}

fn txn_suffix(txn: Option<u64>) -> String {
    txn.map(|t| format!(" [t{t}]")).unwrap_or_default()
}

/// The per-site log-write schedule: `force:<kind>` / `write:<kind>`
/// tags in order — the annotation each paper figure carries next to a
/// site's time line.
#[must_use]
pub fn log_write_schedule(events: &[ProtocolEvent], site: u32) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.site() == site)
        .filter_map(|e| match e {
            ProtocolEvent::ForceWrite { record, .. } => Some(format!("force:{record}")),
            ProtocolEvent::NonForcedWrite { record, .. } => Some(format!("write:{record}")),
            _ => None,
        })
        .collect()
}

fn sites_of(events: &[ProtocolEvent], labels: &BTreeMap<u32, String>) -> Vec<u32> {
    let mut sites: Vec<u32> = labels.keys().copied().collect();
    for e in events {
        if !sites.contains(&e.site()) {
            sites.push(e.site());
        }
    }
    sites.sort_unstable();
    sites
}

/// Render the schedule as a time-ordered ASCII table with a log-write
/// summary footer — the repository's replayable form of the paper's
/// figures.
#[must_use]
pub fn render_ascii(
    title: &str,
    events: &[ProtocolEvent],
    labels: &BTreeMap<u32, String>,
) -> String {
    let sites = sites_of(events, labels);
    let site_w = sites
        .iter()
        .map(|&s| label(labels, s).len())
        .chain(std::iter::once("site".len()))
        .max()
        .unwrap_or(4);

    let mut out = String::new();
    let _ = writeln!(out, "==== {title} ====");
    out.push('\n');
    let _ = writeln!(out, "{:>9}  {:<site_w$}  event", "t(us)", "site");
    let _ = writeln!(out, "{:->9}  {:-<site_w$}  {:-<40}", "", "", "");
    for e in events {
        let _ = writeln!(
            out,
            "{:>9}  {:<site_w$}  {}",
            e.at_us(),
            label(labels, e.site()),
            describe(e, labels)
        );
    }
    out.push('\n');
    let _ = writeln!(out, "log-write schedule:");
    for &s in &sites {
        let tags = log_write_schedule(events, s);
        let _ = writeln!(
            out,
            "  {:<site_w$}  {}",
            label(labels, s),
            if tags.is_empty() {
                "(none)".to_string()
            } else {
                tags.join(" ")
            }
        );
    }
    out
}

/// Render the schedule as a Mermaid sequence diagram. Message receipts
/// are implied by the arrows, so only sends, log writes, votes,
/// decisions, GC and failures become diagram statements.
#[must_use]
pub fn render_mermaid(
    title: &str,
    events: &[ProtocolEvent],
    labels: &BTreeMap<u32, String>,
) -> String {
    let sites = sites_of(events, labels);
    let mut out = String::new();
    let _ = writeln!(out, "%% {title}");
    let _ = writeln!(out, "sequenceDiagram");
    for &s in &sites {
        let _ = writeln!(out, "    participant S{s} as {}", label(labels, s));
    }
    for e in events {
        let s = e.site();
        match e {
            ProtocolEvent::ForceWrite { record, .. } => {
                let _ = writeln!(out, "    Note over S{s}: force-write {record}");
            }
            ProtocolEvent::NonForcedWrite { record, .. } => {
                let _ = writeln!(out, "    Note over S{s}: lazy-write {record}");
            }
            ProtocolEvent::MsgSend { to, kind, .. } => {
                let _ = writeln!(out, "    S{s}->>S{to}: {kind}");
            }
            ProtocolEvent::MsgRecv { .. } => {}
            ProtocolEvent::VoteCast { vote, .. } => {
                let _ = writeln!(out, "    Note over S{s}: vote {vote}");
            }
            ProtocolEvent::DecisionReached { outcome, .. } => {
                let _ = writeln!(out, "    Note over S{s}: decide {}", outcome.to_uppercase());
            }
            ProtocolEvent::LogGc {
                records_released, ..
            } => {
                let _ = writeln!(out, "    Note over S{s}: gc reclaims {records_released} records");
            }
            ProtocolEvent::RetryScheduled {
                purpose, attempt, ..
            } => {
                let _ = writeln!(out, "    Note over S{s}: retry {purpose} #{attempt}");
            }
            ProtocolEvent::BatchCommit { occupancy, .. } => {
                let _ = writeln!(out, "    Note over S{s}: group-commit x{occupancy}");
            }
            ProtocolEvent::AdmissionShed {
                inflight, limit, ..
            } => {
                let _ = writeln!(out, "    Note over S{s}: shed ({inflight}/{limit} in flight)");
            }
            ProtocolEvent::CrashObserved { .. } => {
                let _ = writeln!(out, "    Note over S{s}: CRASH");
            }
            ProtocolEvent::RecoveryStep { detail, .. } => {
                let _ = writeln!(out, "    Note over S{s}: recover ({detail})");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProtoLabel;

    fn sample() -> (Vec<ProtocolEvent>, BTreeMap<u32, String>) {
        let p = ProtoLabel::PrAny;
        let events = vec![
            ProtocolEvent::ForceWrite {
                at_us: 1000,
                site: 0,
                proto: p,
                record: "initiation",
                txn: Some(1),
            },
            ProtocolEvent::MsgSend {
                at_us: 1000,
                site: 0,
                proto: p,
                to: 1,
                kind: "prepare",
                txn: Some(1),
            },
            ProtocolEvent::MsgRecv {
                at_us: 1200,
                site: 1,
                proto: ProtoLabel::PrA,
                from: 0,
                kind: "prepare",
                txn: Some(1),
            },
            ProtocolEvent::VoteCast {
                at_us: 1200,
                site: 1,
                proto: ProtoLabel::PrA,
                vote: "yes",
                txn: Some(1),
            },
            ProtocolEvent::DecisionReached {
                at_us: 1400,
                site: 0,
                proto: p,
                outcome: "commit",
                txn: Some(1),
            },
        ];
        let mut labels = BTreeMap::new();
        labels.insert(0, "coordinator (PrAny)".to_string());
        labels.insert(1, "site 1 (PrA)".to_string());
        (events, labels)
    }

    #[test]
    fn ascii_lists_every_event_and_the_schedule() {
        let (events, labels) = sample();
        let out = render_ascii("Figure test", &events, &labels);
        assert!(out.contains("==== Figure test ===="));
        assert!(out.contains("force-write initiation [t1]"));
        assert!(out.contains("send prepare -> site 1 (PrA) [t1]"));
        assert!(out.contains("DECIDE COMMIT [t1]"));
        assert!(out.contains("log-write schedule:"));
        assert!(out.contains("force:initiation"));
    }

    #[test]
    fn mermaid_has_participants_and_arrows() {
        let (events, labels) = sample();
        let out = render_mermaid("Figure test", &events, &labels);
        assert!(out.starts_with("%% Figure test\nsequenceDiagram\n"));
        assert!(out.contains("participant S0 as coordinator (PrAny)"));
        assert!(out.contains("S0->>S1: prepare"));
        assert!(out.contains("Note over S0: decide COMMIT"));
        // Receives are implied by arrows, not duplicated.
        assert!(!out.contains("recv"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let (events, labels) = sample();
        assert_eq!(
            render_ascii("t", &events, &labels),
            render_ascii("t", &events, &labels)
        );
        assert_eq!(
            render_mermaid("t", &events, &labels),
            render_mermaid("t", &events, &labels)
        );
    }

    #[test]
    fn schedule_extraction_filters_by_site() {
        let (events, _) = sample();
        assert_eq!(log_write_schedule(&events, 0), ["force:initiation"]);
        assert!(log_write_schedule(&events, 1).is_empty());
    }
}
