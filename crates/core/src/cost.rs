//! Analytic cost model for commit processing (experiment E8).
//!
//! For a failure-free execution in which every participant votes "Yes"
//! (and, in the abort case, the coordinator then decides abort — the
//! situation of the paper's figures), the model predicts the exact
//! number of forced log writes, total log records and messages each
//! protocol incurs. The predictions are derived from the same
//! [`CommitPlan`] the engine executes, and the E8 experiment asserts
//! measured executions match them record-for-record.
//!
//! One deliberate implementation deviation is visible here: whenever a
//! transaction wrote *any* log record, the coordinator finishes it with
//! a **non-forced** end record even if the protocol expects no
//! acknowledgments (pure-PrC commits). The paper's figures omit that
//! record; we write it as a zero-force GC marker so every log can be
//! reclaimed uniformly. The model (and DESIGN.md) accounts for it
//! explicitly.

use crate::coordinator::plan::{AckRule, CommitPlan};
use acp_types::{CoordinatorKind, Outcome, ParticipantEntry, ProtocolKind, SiteId};

/// A participant population, summarized by protocol counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Population {
    /// Number of PrN participants.
    pub prn: usize,
    /// Number of PrA participants.
    pub pra: usize,
    /// Number of PrC participants.
    pub prc: usize,
}

impl Population {
    /// Build a population.
    #[must_use]
    pub fn new(prn: usize, pra: usize, prc: usize) -> Self {
        Population { prn, pra, prc }
    }

    /// Total participants.
    #[must_use]
    pub fn total(&self) -> usize {
        self.prn + self.pra + self.prc
    }

    /// Participants whose protocol acknowledges `outcome`.
    #[must_use]
    pub fn ackers(&self, outcome: Outcome) -> usize {
        match outcome {
            Outcome::Commit => self.prn + self.pra,
            Outcome::Abort => self.prn + self.prc,
        }
    }

    /// Expand into concrete participant entries at sites 1..=n (PrN
    /// first, then PrA, then PrC) — matching the harness layout.
    #[must_use]
    pub fn entries(&self) -> Vec<ParticipantEntry> {
        let mut v = Vec::with_capacity(self.total());
        let mut site = 1u32;
        for (count, proto) in [
            (self.prn, ProtocolKind::PrN),
            (self.pra, ProtocolKind::PrA),
            (self.prc, ProtocolKind::PrC),
        ] {
            for _ in 0..count {
                v.push(ParticipantEntry::new(SiteId::new(site), proto));
                site += 1;
            }
        }
        v
    }

    /// Summarize concrete entries into counts.
    #[must_use]
    pub fn from_entries(entries: &[ParticipantEntry]) -> Self {
        let mut p = Population::default();
        for e in entries {
            match e.protocol {
                ProtocolKind::PrN => p.prn += 1,
                ProtocolKind::PrA => p.pra += 1,
                ProtocolKind::PrC => p.prc += 1,
            }
        }
        p
    }
}

/// Predicted costs for one transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictedCosts {
    /// Coordinator forced log writes.
    pub coord_forces: u64,
    /// Coordinator total log records (forced + lazy, incl. the GC end
    /// marker).
    pub coord_records: u64,
    /// Sum of forced log writes across all participants.
    pub part_forces: u64,
    /// Sum of log records across all participants.
    pub part_records: u64,
    /// Total coordination messages (prepares + votes + decisions +
    /// acks).
    pub messages: u64,
}

impl PredictedCosts {
    /// Total forced writes in the system.
    #[must_use]
    pub fn total_forces(&self) -> u64 {
        self.coord_forces + self.part_forces
    }

    /// Total log records in the system.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.coord_records + self.part_records
    }
}

/// Predict the costs of one failure-free, all-"Yes" transaction.
#[must_use]
pub fn predict(kind: CoordinatorKind, outcome: Outcome, population: Population) -> PredictedCosts {
    let entries = population.entries();
    let plan = CommitPlan::derive(kind, &entries);
    let n = population.total() as u64;

    // ---- coordinator log ----
    let mut coord_forces = 0u64;
    let mut coord_records = 0u64;
    if plan.write_initiation {
        coord_forces += 1;
        coord_records += 1;
    }
    if let Some(forced) = plan.decision_record(outcome) {
        coord_records += 1;
        if forced {
            coord_forces += 1;
        }
    }
    if coord_records > 0 {
        coord_records += 1; // the non-forced end / GC marker
    }

    // ---- participant logs ----
    // Each participant: forced prepared + decision record (forced iff it
    // acks this outcome) + lazy end marker.
    let part_ack_forces = population.ackers(outcome) as u64;
    let part_forces = n + part_ack_forces;
    let part_records = 3 * n;

    // ---- messages ----
    // prepares + votes + decisions + acks actually sent. The acks *sent*
    // are determined by the participants' protocols, independent of how
    // many the coordinator waits for (C2PC waits for acks that never
    // come — that changes state retention, not traffic).
    let acks_sent = match plan.ack_rule(outcome) {
        AckRule::None | AckRule::ByParticipantProtocol | AckRule::AllRecipients => {
            population.ackers(outcome) as u64
        }
    };
    let messages = n + n + n + acks_sent;

    PredictedCosts {
        coord_forces,
        coord_records,
        part_forces,
        part_records,
        messages,
    }
}

/// Predicted costs for `n_txns` concurrent transactions committed
/// through a group-commit log.
///
/// The model: every per-transaction force slot (the coordinator's
/// initiation and decision forces, each participant's prepared and
/// decision forces) batches *independently across transactions* — a
/// slot is one site's forced write at one protocol step, and concurrent
/// transactions reach the same step together, so one physical force
/// serves up to `batch` of them. Forces at different steps (or sites)
/// never share a sync.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchedPrediction {
    /// Forced writes the protocols *request*: `n_txns ×` the
    /// per-transaction total. Unchanged by batching — batching changes
    /// how many syncs serve them, not how many records are forced.
    pub logical_forces: u64,
    /// Physical forces (fsyncs) performed: one per slot per batch of up
    /// to `batch` transactions.
    pub physical_forces: u64,
    /// Number of distinct force slots per transaction.
    pub slots_per_txn: u64,
}

impl BatchedPrediction {
    /// Physical forces per transaction, fixed-point ×1000 (the
    /// workspace's cost arithmetic is float-free).
    #[must_use]
    pub fn forces_per_txn_x1000(&self, n_txns: u64) -> u64 {
        if n_txns == 0 {
            0
        } else {
            self.physical_forces * 1000 / n_txns
        }
    }

    /// Amortization factor ×1000: logical forces per physical force.
    /// 1000 means no saving; `batch × 1000` is the ideal.
    #[must_use]
    pub fn amortization_x1000(&self) -> u64 {
        if self.physical_forces == 0 {
            0
        } else {
            self.logical_forces * 1000 / self.physical_forces
        }
    }
}

/// Predicted costs for one failure-free Paxos Commit transaction,
/// split by role (experiment E16 extends the E8 table with these rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PaxosPredictedCosts {
    /// Leader (acceptor rank 0) forced log writes: one bundled
    /// `paxos-accept` per transaction.
    pub leader_forces: u64,
    /// Leader total log records (the bundle + the lazy end marker).
    pub leader_records: u64,
    /// Forced writes summed across the `2f` remote acceptors.
    pub acceptor_forces: u64,
    /// Log records summed across the `2f` remote acceptors.
    pub acceptor_records: u64,
    /// Forced writes summed across the `n` participants.
    pub part_forces: u64,
    /// Log records summed across the `n` participants.
    pub part_records: u64,
    /// Total coordination messages (see the flow table in
    /// [`crate::paxos`]): `4n + 8f` for both outcomes.
    pub messages: u64,
}

impl PaxosPredictedCosts {
    /// Total forced writes in the system.
    #[must_use]
    pub fn total_forces(&self) -> u64 {
        self.leader_forces + self.acceptor_forces + self.part_forces
    }

    /// The coordinator-side slice of the prediction as a
    /// [`PredictedCosts`], for comparing the `f = 0` degeneracy against
    /// `predict(Single(PrN), ..)` field-for-field.
    #[must_use]
    pub fn as_predicted(&self) -> PredictedCosts {
        PredictedCosts {
            coord_forces: self.leader_forces,
            coord_records: self.leader_records,
            part_forces: self.part_forces,
            part_records: self.part_records,
            messages: self.messages,
        }
    }
}

/// Predict the costs of one failure-free Paxos Commit transaction over
/// `n` participants with tolerance `f`, where every participant votes
/// "Yes" (for the abort case the client then requests abort — the same
/// situation the E8 figures measure).
///
/// Paxos runs the *same* consensus round for both outcomes (an abort is
/// an all-Aborted bundle), so unlike the presumption protocols the two
/// columns are identical — the price of non-blocking termination. At
/// `f = 0` the prediction collapses onto
/// `predict(Single(PrN), outcome, ..)` exactly: 2PC is the degenerate
/// case, record for record and message for message.
#[must_use]
pub fn predict_paxos(n: usize, f: usize, _outcome: Outcome) -> PaxosPredictedCosts {
    let n = n as u64;
    let f = f as u64;
    PaxosPredictedCosts {
        // One bundled paxos-accept force, then the lazy end marker.
        leader_forces: 1,
        leader_records: 2,
        // Each remote acceptor mirrors the leader's log shape.
        acceptor_forces: 2 * f,
        acceptor_records: 4 * f,
        // Participants are plain PrN: forced prepared + forced decision
        // + lazy end marker each.
        part_forces: 2 * n,
        part_records: 3 * n,
        // begin 2f + prepare n + vote n + phase2a 2f + phase2b 2f
        // + decision n + ack n + forget 2f.
        messages: 4 * n + 8 * f,
    }
}

/// Predict the batched cost of `n_txns` identical concurrent
/// transactions with group-commit batches of at most `batch`
/// transactions per slot.
///
/// `batch = 1` degenerates to the unbatched model exactly
/// (`physical_forces == logical_forces`); `batch >= n_txns` is the
/// fully-amortized floor of one physical force per slot. The sim
/// harness measures the `batch = n_txns` point: with a deterministic
/// batch window, concurrent transactions' same-slot forces land at the
/// same instant and coalesce completely.
#[must_use]
pub fn predict_batched(
    kind: CoordinatorKind,
    outcome: Outcome,
    population: Population,
    n_txns: u64,
    batch: u64,
) -> BatchedPrediction {
    let per_txn = predict(kind, outcome, population);
    let slots = per_txn.total_forces();
    let batch = batch.max(1);
    let batches_per_slot = n_txns.div_ceil(batch);
    BatchedPrediction {
        logical_forces: slots * n_txns,
        physical_forces: slots * batches_per_slot,
        slots_per_txn: slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::SelectionPolicy;

    fn single(p: ProtocolKind) -> CoordinatorKind {
        CoordinatorKind::Single(p)
    }

    #[test]
    fn prn_costs_match_figure_2() {
        let pop = Population::new(2, 0, 0);
        let c = predict(single(ProtocolKind::PrN), Outcome::Commit, pop);
        assert_eq!(c.coord_forces, 1);
        assert_eq!(c.coord_records, 2);
        assert_eq!(c.part_forces, 4); // prepared + decision, each site
        assert_eq!(c.messages, 8); // 4 rounds × 2 sites

        let a = predict(single(ProtocolKind::PrN), Outcome::Abort, pop);
        assert_eq!(a, c, "PrN treats both outcomes uniformly");
    }

    #[test]
    fn pra_abort_is_free_for_the_coordinator() {
        let pop = Population::new(0, 2, 0);
        let c = predict(single(ProtocolKind::PrA), Outcome::Abort, pop);
        assert_eq!(c.coord_forces, 0);
        assert_eq!(
            c.coord_records, 0,
            "no records at all — not even an end marker"
        );
        assert_eq!(c.part_forces, 2, "prepared only; abort record is lazy");
        assert_eq!(c.messages, 6, "no acks");
    }

    #[test]
    fn prc_commit_saves_participant_forces_and_acks() {
        let pop = Population::new(0, 0, 2);
        let c = predict(single(ProtocolKind::PrC), Outcome::Commit, pop);
        assert_eq!(c.coord_forces, 2, "initiation + commit");
        assert_eq!(c.coord_records, 3, "+ end marker");
        assert_eq!(c.part_forces, 2, "prepared only");
        assert_eq!(c.messages, 6, "no acks");

        let a = predict(single(ProtocolKind::PrC), Outcome::Abort, pop);
        assert_eq!(a.coord_forces, 1, "initiation only");
        assert_eq!(a.part_forces, 4, "abort records are forced");
        assert_eq!(a.messages, 8);
    }

    #[test]
    fn prany_mixed_costs() {
        let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
        let pop = Population::new(1, 1, 1);
        let c = predict(kind, Outcome::Commit, pop);
        assert_eq!(c.coord_forces, 2, "initiation + commit");
        assert_eq!(c.coord_records, 3);
        // Participants: 3 prepared forces + PrN,PrA forced commits.
        assert_eq!(c.part_forces, 5);
        // 3 prepares + 3 votes + 3 decisions + 2 acks (PrN + PrA).
        assert_eq!(c.messages, 11);

        let a = predict(kind, Outcome::Abort, pop);
        assert_eq!(a.coord_forces, 1, "no abort record");
        assert_eq!(a.messages, 11, "acks now from PrN + PrC");
    }

    #[test]
    fn prany_homogeneous_matches_native_protocol() {
        let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
        for p in ProtocolKind::ALL {
            let pop = match p {
                ProtocolKind::PrN => Population::new(3, 0, 0),
                ProtocolKind::PrA => Population::new(0, 3, 0),
                ProtocolKind::PrC => Population::new(0, 0, 3),
            };
            for o in [Outcome::Commit, Outcome::Abort] {
                assert_eq!(predict(kind, o, pop), predict(single(p), o, pop), "{p} {o}");
            }
        }
    }

    #[test]
    fn optimized_selection_saves_the_initiation_force_on_prn_pra_mixes() {
        let strict = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
        let opt = CoordinatorKind::PrAny(SelectionPolicy::Optimized);
        let pop = Population::new(1, 1, 0);
        let s = predict(strict, Outcome::Commit, pop);
        let o = predict(opt, Outcome::Commit, pop);
        assert_eq!(s.coord_forces, 2);
        assert_eq!(o.coord_forces, 1, "no initiation record in PrA mode");
        assert_eq!(s.messages, o.messages);
    }

    #[test]
    fn batch_of_one_is_the_unbatched_model() {
        let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
        let pop = Population::new(1, 1, 1);
        for o in [Outcome::Commit, Outcome::Abort] {
            let per_txn = predict(kind, o, pop);
            let b = predict_batched(kind, o, pop, 8, 1);
            assert_eq!(b.physical_forces, b.logical_forces);
            assert_eq!(b.logical_forces, 8 * per_txn.total_forces());
            assert_eq!(b.amortization_x1000(), 1000, "no saving at batch 1");
        }
    }

    #[test]
    fn full_batch_amortizes_to_one_force_per_slot() {
        let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
        let pop = Population::new(1, 1, 1);
        let per_txn = predict(kind, Outcome::Commit, pop);
        let b = predict_batched(kind, Outcome::Commit, pop, 16, 16);
        assert_eq!(b.physical_forces, per_txn.total_forces());
        assert_eq!(b.forces_per_txn_x1000(16), per_txn.total_forces() * 1000 / 16);
        assert_eq!(b.amortization_x1000(), 16_000, "ideal 16× amortization");
    }

    #[test]
    fn partial_batches_round_up() {
        let kind = CoordinatorKind::Single(ProtocolKind::PrN);
        let pop = Population::new(2, 0, 0);
        // 10 txns in batches of 4 → 3 batches per slot.
        let b = predict_batched(kind, Outcome::Commit, pop, 10, 4);
        let slots = predict(kind, Outcome::Commit, pop).total_forces();
        assert_eq!(b.physical_forces, slots * 3);
        // Monotone: larger batches never cost more syncs.
        let mut last = u64::MAX;
        for batch in 1..=10 {
            let p = predict_batched(kind, Outcome::Commit, pop, 10, batch).physical_forces;
            assert!(p <= last);
            last = p;
        }
    }

    #[test]
    fn paxos_f0_is_exactly_prn() {
        // Gray & Lamport: 2PC is Paxos Commit with one acceptor. The
        // analytic tables must agree record-for-record at f = 0.
        for n in 1..=4 {
            let pop = Population::new(n, 0, 0);
            for o in [Outcome::Commit, Outcome::Abort] {
                let paxos = predict_paxos(n, 0, o);
                assert_eq!(paxos.acceptor_forces, 0);
                assert_eq!(paxos.acceptor_records, 0);
                assert_eq!(
                    paxos.as_predicted(),
                    predict(single(ProtocolKind::PrN), o, pop),
                    "n={n} {o}"
                );
            }
        }
    }

    #[test]
    fn paxos_fault_tolerance_costs_8f_messages_and_2f_forces() {
        for n in 1..=3 {
            for f in 0..=2 {
                let c = predict_paxos(n, f, Outcome::Commit);
                let base = predict_paxos(n, 0, Outcome::Commit);
                assert_eq!(c.messages, base.messages + 8 * f as u64);
                assert_eq!(c.total_forces(), base.total_forces() + 2 * f as u64);
                // Both outcomes cost the same: abort also runs consensus.
                assert_eq!(c, predict_paxos(n, f, Outcome::Abort));
            }
        }
    }

    #[test]
    fn population_roundtrip() {
        let pop = Population::new(2, 1, 3);
        assert_eq!(Population::from_entries(&pop.entries()), pop);
        assert_eq!(pop.total(), 6);
        assert_eq!(pop.ackers(Outcome::Commit), 3);
        assert_eq!(pop.ackers(Outcome::Abort), 5);
    }
}
