//! The participant-side state machine for PrN, PrA and PrC.
//!
//! A participant follows *its own site's* protocol regardless of what
//! the coordinator runs — that is the premise of the whole paper: in a
//! multidatabase system each autonomous site keeps its protocol, and the
//! coordinator must cope.
//!
//! Behaviour per the figures:
//!
//! | protocol | on commit decision            | on abort decision            |
//! |----------|-------------------------------|------------------------------|
//! | PrN      | force commit record, **ack**  | force abort record, **ack**  |
//! | PrA      | force commit record, **ack**  | lazy abort record, no ack    |
//! | PrC      | lazy commit record, no ack    | force abort record, **ack**  |
//!
//! All three force-write a prepared record before voting "Yes". A
//! participant that voted "No" (or read-only) drops out with no stable
//! trace. After a crash, prepared-but-undecided transactions are
//! *in doubt*: the participant holds their locks and periodically
//! inquires at the coordinator (§4.2).

use crate::action::{Action, TimerPurpose};
use acp_acta::ActaEvent;
use acp_types::{CostCounters, LogPayload, Outcome, Payload, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::{GcTracker, StableLog};
use std::collections::BTreeMap;

/// Maximum inquiry retries before the participant stops actively
/// retrying (it stays blocked and would resume on any new stimulus; the
/// bound guarantees simulated runs quiesce).
pub const MAX_INQUIRY_RETRIES: u32 = 64;

/// Volatile per-transaction participant state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum PartState {
    /// Voted "Yes", awaiting the decision; must not unilaterally abort.
    Prepared {
        coordinator: SiteId,
        inquiries_sent: u32,
    },
}

/// A participant site's commit-protocol engine.
///
/// # Example
///
/// ```
/// use acp_core::participant::Participant;
/// use acp_types::{Outcome, Payload, ProtocolKind, SiteId, TxnId};
/// use acp_wal::MemLog;
///
/// let coordinator = SiteId::new(0);
/// let mut p = Participant::new(SiteId::new(1), ProtocolKind::PrC, MemLog::new());
///
/// let txn = TxnId::new(1);
/// p.on_message(coordinator, &Payload::Prepare { txn });
/// assert!(p.in_doubt(txn)); // prepared record forced, "Yes" vote sent
///
/// p.on_message(coordinator, &Payload::Decision { txn, outcome: Outcome::Commit });
/// assert_eq!(p.enforced(txn), Some(Outcome::Commit));
/// assert!(!p.in_doubt(txn)); // PrC: lazy commit record, no ack, forgotten
/// ```
#[derive(Clone, Debug)]
pub struct Participant<L: StableLog> {
    site: SiteId,
    protocol: ProtocolKind,
    log: L,
    /// Volatile protocol state (cleared on crash).
    active: BTreeMap<TxnId, PartState>,
    /// How this site will vote per transaction (application intent).
    /// Defaults to `Yes`. Conceptually part of the application, not the
    /// protocol, so it survives crashes.
    intents: BTreeMap<TxnId, Vote>,
    /// Observational record of enforced outcomes (mirrors what the data
    /// engine would hold after redo; used by tests and the atomicity
    /// experiments).
    enforced: BTreeMap<TxnId, Outcome>,
    /// GC bookkeeping over the own log.
    gc: GcTracker,
    /// Volatile timer-token bookkeeping.
    timers: BTreeMap<u64, TxnId>,
    next_token: u64,
    /// Eager timer retirement for hosts with a real timer wheel; off by
    /// default so the simulator/checker keep lazy expiry (see
    /// `Coordinator` for the rationale).
    track_cancellations: bool,
    /// Retired timer tokens not yet drained by the host.
    cancelled: Vec<u64>,
    /// Per-transaction cost accounting (observational).
    costs: BTreeMap<TxnId, CostCounters>,
}

impl<L: StableLog> Participant<L> {
    /// Create a participant for `site` speaking `protocol`, over the
    /// given stable log.
    pub fn new(site: SiteId, protocol: ProtocolKind, log: L) -> Self {
        Participant {
            site,
            protocol,
            log,
            active: BTreeMap::new(),
            intents: BTreeMap::new(),
            enforced: BTreeMap::new(),
            gc: GcTracker::new(),
            timers: BTreeMap::new(),
            next_token: 0,
            track_cancellations: false,
            cancelled: Vec::new(),
            costs: BTreeMap::new(),
        }
    }

    /// Enable (or disable) eager retirement of inquiry timers once the
    /// decision is learned; retired tokens surface through
    /// [`Participant::take_cancelled_timers`]. Default off.
    pub fn set_track_cancellations(&mut self, on: bool) {
        self.track_cancellations = on;
    }

    /// Drain the timer tokens retired since the last call (empty unless
    /// [`Participant::set_track_cancellations`] enabled tracking).
    pub fn take_cancelled_timers(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.cancelled)
    }

    fn retire_timers(&mut self, txn: TxnId) {
        if !self.track_cancellations {
            return;
        }
        let tokens: Vec<u64> = self
            .timers
            .iter()
            .filter(|(_, t)| **t == txn)
            .map(|(tok, _)| *tok)
            .collect();
        for tok in tokens {
            self.timers.remove(&tok);
            self.cancelled.push(tok);
        }
    }

    /// This site's id.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// This site's commit protocol.
    #[must_use]
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Set how this participant will vote for `txn` (default `Yes`).
    pub fn set_intent(&mut self, txn: TxnId, vote: Vote) {
        self.intents.insert(txn, vote);
    }

    /// The outcome this participant enforced for `txn`, if any.
    #[must_use]
    pub fn enforced(&self, txn: TxnId) -> Option<Outcome> {
        self.enforced.get(&txn).copied()
    }

    /// All enforced outcomes (for atomicity assertions).
    #[must_use]
    pub fn enforced_all(&self) -> &BTreeMap<TxnId, Outcome> {
        &self.enforced
    }

    /// Is the participant in doubt about `txn` (prepared, no decision)?
    #[must_use]
    pub fn in_doubt(&self, txn: TxnId) -> bool {
        matches!(self.active.get(&txn), Some(PartState::Prepared { .. }))
    }

    /// Transactions currently in doubt.
    #[must_use]
    pub fn in_doubt_txns(&self) -> Vec<TxnId> {
        self.active.keys().copied().collect()
    }

    /// Transactions still pinning this site's log.
    #[must_use]
    pub fn log_pinned(&self) -> Vec<TxnId> {
        self.gc.pinned()
    }

    /// Borrow the stable log (for assertions and GC inspection).
    #[must_use]
    pub fn log(&self) -> &L {
        &self.log
    }

    /// Mutable access to the stable log, for hosts that drive log-level
    /// machinery outside the engine's own actions (group-commit ticks
    /// and batch commits). Protocol records must still go through the
    /// engine, never be appended here directly.
    pub fn log_mut(&mut self) -> &mut L {
        &mut self.log
    }

    /// Per-transaction costs measured at this site.
    #[must_use]
    pub fn costs(&self, txn: TxnId) -> CostCounters {
        self.costs.get(&txn).copied().unwrap_or_default()
    }

    /// Canonical semantic-state rendering for the model checker (see
    /// `Coordinator::fingerprint`).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut s = format!("part:{:?};", self.protocol);
        for (txn, st) in &self.active {
            s.push_str(&format!("{txn}={st:?};"));
        }
        s.push('|');
        for (txn, o) in &self.enforced {
            s.push_str(&format!("{txn}>{o};"));
        }
        s.push('|');
        for rec in self.log.records().expect("records") {
            s.push_str(&format!("{};", rec.payload));
        }
        s.push('|');
        for (tok, txn) in &self.timers {
            s.push_str(&format!("{tok}:{txn};"));
        }
        s
    }

    /// Hash the same semantic state as [`Participant::fingerprint`]
    /// directly into `h` without rendering strings or cloning the log
    /// (the model checker's hot path; see `Coordinator::hash_state`).
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.protocol.hash(h);
        for (txn, st) in &self.active {
            txn.hash(h);
            st.hash(h);
        }
        0xB1u8.hash(h);
        for (txn, o) in &self.enforced {
            (txn, o).hash(h);
        }
        0xB2u8.hash(h);
        self.log
            .for_each_record(&mut |rec| rec.payload.hash(h))
            .expect("records");
        0xB3u8.hash(h);
        for (tok, txn) in &self.timers {
            (tok, txn).hash(h);
        }
    }

    // -- internals ----------------------------------------------------

    fn append(&mut self, txn: TxnId, payload: LogPayload, force: bool, out: &mut Vec<Action>) {
        let kind = payload.kind_name();
        let lsn = self.log.next_lsn();
        self.gc.note(lsn, &payload);
        self.log
            .append(payload, force)
            .expect("participant log append");
        self.costs.entry(txn).or_default().count_log_write(force);
        out.push(Action::Acta(ActaEvent::LogWrite {
            site: self.site,
            txn,
            kind,
            forced: force,
        }));
    }

    fn send(&mut self, txn: TxnId, to: SiteId, payload: Payload, out: &mut Vec<Action>) {
        self.costs
            .entry(txn)
            .or_default()
            .count_message_kind(payload.kind_name());
        out.push(Action::Send { to, payload });
    }

    fn arm_inquiry_timer(&mut self, txn: TxnId, attempt: u32, out: &mut Vec<Action>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, txn);
        out.push(Action::SetTimer {
            token,
            purpose: TimerPurpose::InquiryRetry,
            attempt,
        });
    }

    // -- protocol input handlers ---------------------------------------

    /// Handle a `Prepare` request from the coordinator.
    pub fn on_prepare(&mut self, coordinator: SiteId, txn: TxnId) -> Vec<Action> {
        let mut out = Vec::new();
        if self.enforced.contains_key(&txn) {
            // Already terminated here (e.g. duplicate prepare after a
            // slow network). Nothing sensible to vote; stay silent — the
            // coordinator's vote timeout covers it.
            return out;
        }
        if let Some(PartState::Prepared { coordinator: c, .. }) = self.active.get(&txn) {
            // Duplicate prepare while prepared: re-vote Yes.
            let c = *c;
            self.send(
                txn,
                c,
                Payload::Vote {
                    txn,
                    vote: Vote::Yes,
                },
                &mut out,
            );
            return out;
        }
        match self.intents.get(&txn).copied().unwrap_or(Vote::Yes) {
            Vote::Yes => {
                self.append(
                    txn,
                    LogPayload::Prepared { txn, coordinator },
                    true,
                    &mut out,
                );
                out.push(Action::Acta(ActaEvent::Prepared {
                    participant: self.site,
                    txn,
                }));
                self.active.insert(
                    txn,
                    PartState::Prepared {
                        coordinator,
                        inquiries_sent: 0,
                    },
                );
                self.send(
                    txn,
                    coordinator,
                    Payload::Vote {
                        txn,
                        vote: Vote::Yes,
                    },
                    &mut out,
                );
                self.arm_inquiry_timer(txn, 0, &mut out);
            }
            Vote::No => {
                // Unilateral abort: no stable trace, no second phase.
                self.enforced.insert(txn, Outcome::Abort);
                out.push(Action::Enforce {
                    txn,
                    outcome: Outcome::Abort,
                });
                self.send(
                    txn,
                    coordinator,
                    Payload::Vote {
                        txn,
                        vote: Vote::No,
                    },
                    &mut out,
                );
                out.push(Action::Acta(ActaEvent::ForgetPart {
                    participant: self.site,
                    txn,
                }));
            }
            Vote::ReadOnly => {
                // Read-only optimization: vote and drop out of phase two.
                self.send(
                    txn,
                    coordinator,
                    Payload::Vote {
                        txn,
                        vote: Vote::ReadOnly,
                    },
                    &mut out,
                );
                out.push(Action::Acta(ActaEvent::ForgetPart {
                    participant: self.site,
                    txn,
                }));
            }
        }
        out
    }

    /// Handle a final decision (or an inquiry response, which carries the
    /// same information).
    pub fn on_decision(&mut self, txn: TxnId, outcome: Outcome) -> Vec<Action> {
        let mut out = Vec::new();
        match self.active.remove(&txn) {
            Some(PartState::Prepared { coordinator, .. }) => {
                // The decision resolves the in-doubt state; any pending
                // inquiry retry for this transaction is obsolete.
                self.retire_timers(txn);
                let force = self.protocol.forces_decision(outcome);
                self.append(
                    txn,
                    LogPayload::PartDecision { txn, outcome },
                    force,
                    &mut out,
                );
                self.enforced.insert(txn, outcome);
                out.push(Action::Enforce { txn, outcome });
                out.push(Action::Acta(ActaEvent::Enforce {
                    participant: self.site,
                    txn,
                    outcome,
                }));
                if self.protocol.acks(outcome) {
                    self.send(txn, coordinator, Payload::Ack { txn }, &mut out);
                }
                self.append(txn, LogPayload::PartEnd { txn }, false, &mut out);
                out.push(Action::Acta(ActaEvent::ForgetPart {
                    participant: self.site,
                    txn,
                }));
            }
            None => {
                // No memory of the transaction. The footnote-5 ack needs
                // the sender's address, which only `on_message` has — it
                // handles that case before calling here; a direct caller
                // hitting this branch simply gets no actions.
            }
        }
        out
    }

    /// Route any incoming message to the right handler.
    pub fn on_message(&mut self, from: SiteId, payload: &Payload) -> Vec<Action> {
        match payload {
            Payload::Prepare { txn } => self.on_prepare(from, *txn),
            Payload::Decision { txn, outcome } | Payload::InquiryResponse { txn, outcome } => {
                if self.active.contains_key(txn) {
                    // The decision's sender is the coordinator of record
                    // from here on: under Paxos Commit a failover leader
                    // (not the coordinator logged in the prepared
                    // record) may deliver the decision, and the ack must
                    // reach the site that is still collecting acks. For
                    // the classic protocols sender and logged
                    // coordinator coincide, so this is a no-op.
                    if let Some(PartState::Prepared { coordinator, .. }) =
                        self.active.get_mut(txn)
                    {
                        *coordinator = from;
                    }
                    self.on_decision(*txn, *outcome)
                } else {
                    // No memory (already enforced & forgotten, or never
                    // prepared): footnote 5 — just acknowledge.
                    let mut out = Vec::new();
                    if self.protocol.acks(*outcome) && matches!(payload, Payload::Decision { .. }) {
                        self.send(*txn, from, Payload::Ack { txn: *txn }, &mut out);
                    }
                    out
                }
            }
            Payload::Vote { .. }
            | Payload::Ack { .. }
            | Payload::Inquiry { .. }
            | Payload::PaxosBegin { .. }
            | Payload::Phase1a { .. }
            | Payload::Phase1b { .. }
            | Payload::Phase2a { .. }
            | Payload::Phase2b { .. }
            | Payload::PaxosForget { .. } => {
                // Coordinator/acceptor-side messages; a participant
                // ignores them (§2: violations are ignored).
                Vec::new()
            }
        }
    }

    /// Timer callback.
    pub fn on_timer(&mut self, token: u64) -> Vec<Action> {
        let mut out = Vec::new();
        let Some(txn) = self.timers.remove(&token) else {
            return out;
        };
        if let Some(PartState::Prepared {
            coordinator,
            inquiries_sent,
        }) = self.active.get_mut(&txn)
        {
            let coordinator = *coordinator;
            *inquiries_sent += 1;
            let attempts = *inquiries_sent;
            out.push(Action::Acta(ActaEvent::Inquire {
                participant: self.site,
                txn,
                protocol: self.protocol,
            }));
            let protocol = self.protocol;
            self.send(
                txn,
                coordinator,
                Payload::Inquiry { txn, protocol },
                &mut out,
            );
            if attempts < MAX_INQUIRY_RETRIES {
                self.arm_inquiry_timer(txn, attempts, &mut out);
            }
        }
        out
    }

    /// The site fail-stops: volatile state and unflushed log records are
    /// lost.
    pub fn crash(&mut self) {
        self.active.clear();
        self.timers.clear();
        self.cancelled.clear();
        self.log.lose_unflushed().expect("log crash");
        // Rebuild GC view from what actually survived.
        self.gc = GcTracker::from_records(&self.log.records().expect("records"));
    }

    /// Restart: analyze the log; re-enter the prepared state for
    /// in-doubt transactions and inquire at their coordinators; close
    /// out transactions whose decision is on record but whose end record
    /// was lost.
    pub fn recover(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        let records = self.log.records().expect("records");
        self.gc = GcTracker::from_records(&records);
        let summaries = acp_wal::scan::analyze(&records);
        for (txn, s) in summaries {
            if s.part_ended {
                continue;
            }
            if s.in_doubt() {
                let coordinator = s.prepared.expect("in_doubt implies prepared");
                self.active.insert(
                    txn,
                    PartState::Prepared {
                        coordinator,
                        inquiries_sent: 1,
                    },
                );
                out.push(Action::Acta(ActaEvent::Inquire {
                    participant: self.site,
                    txn,
                    protocol: self.protocol,
                }));
                let protocol = self.protocol;
                self.send(
                    txn,
                    coordinator,
                    Payload::Inquiry { txn, protocol },
                    &mut out,
                );
                self.arm_inquiry_timer(txn, 1, &mut out);
            } else if let Some(outcome) = s.part_decision {
                // Decision durable but end record lost in the crash: the
                // data engine re-enforces via redo; protocol-wise, close
                // out. A lost ack is re-triggered by the coordinator's
                // decision re-send (we will answer per footnote 5).
                self.enforced.entry(txn).or_insert(outcome);
                self.append(txn, LogPayload::PartEnd { txn }, false, &mut out);
                out.push(Action::Acta(ActaEvent::ForgetPart {
                    participant: self.site,
                    txn,
                }));
            }
        }
        out
    }

    /// Garbage-collect the releasable log prefix. Returns the number of
    /// records reclaimed.
    pub fn collect_garbage(&mut self) -> usize {
        let releasable = self.gc.releasable();
        if releasable > self.log.low_water_mark() {
            // The releasable point may cover lazy records still in the
            // volatile buffer; make them durable before truncating.
            self.log.flush().expect("flush before gc");
            let before = self.log.stats().truncated;
            self.log.truncate_prefix(releasable).expect("truncate");
            self.gc.reclaimed(releasable);
            (self.log.stats().truncated - before) as usize
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_wal::MemLog;

    fn participant(p: ProtocolKind) -> Participant<MemLog> {
        Participant::new(SiteId::new(1), p, MemLog::new())
    }

    fn coord() -> SiteId {
        SiteId::new(0)
    }

    fn t() -> TxnId {
        TxnId::new(7)
    }

    fn log_kinds(p: &Participant<MemLog>) -> Vec<(String, bool)> {
        p.log()
            .all_records()
            .iter()
            .map(|r| (r.payload.kind_name().to_string(), r.forced))
            .collect()
    }

    #[test]
    fn yes_vote_forces_prepared_record_first() {
        let mut p = participant(ProtocolKind::PrA);
        let actions = p.on_prepare(coord(), t());
        let sends = crate::action::sent_payloads(&actions);
        assert_eq!(sends.len(), 1);
        assert!(matches!(
            sends[0].1,
            Payload::Vote {
                vote: Vote::Yes,
                ..
            }
        ));
        assert_eq!(log_kinds(&p), vec![("prepared".to_string(), true)]);
        assert!(p.in_doubt(t()));
    }

    #[test]
    fn no_vote_leaves_no_stable_trace() {
        let mut p = participant(ProtocolKind::PrN);
        p.set_intent(t(), Vote::No);
        let actions = p.on_prepare(coord(), t());
        let sends = crate::action::sent_payloads(&actions);
        assert!(matches!(sends[0].1, Payload::Vote { vote: Vote::No, .. }));
        assert!(log_kinds(&p).is_empty());
        assert_eq!(p.enforced(t()), Some(Outcome::Abort));
        assert!(!p.in_doubt(t()));
    }

    #[test]
    fn read_only_vote_drops_out_without_logging() {
        let mut p = participant(ProtocolKind::PrC);
        p.set_intent(t(), Vote::ReadOnly);
        let actions = p.on_prepare(coord(), t());
        let sends = crate::action::sent_payloads(&actions);
        assert!(matches!(
            sends[0].1,
            Payload::Vote {
                vote: Vote::ReadOnly,
                ..
            }
        ));
        assert!(log_kinds(&p).is_empty());
        assert_eq!(p.enforced(t()), None);
    }

    /// The full ack/force matrix of the three protocols (Figures 2–4).
    #[test]
    fn decision_handling_matrix() {
        for (proto, outcome, expect_ack, expect_force) in [
            (ProtocolKind::PrN, Outcome::Commit, true, true),
            (ProtocolKind::PrN, Outcome::Abort, true, true),
            (ProtocolKind::PrA, Outcome::Commit, true, true),
            (ProtocolKind::PrA, Outcome::Abort, false, false),
            (ProtocolKind::PrC, Outcome::Commit, false, false),
            (ProtocolKind::PrC, Outcome::Abort, true, true),
        ] {
            let mut p = participant(proto);
            p.on_prepare(coord(), t());
            let actions = p.on_message(coord(), &Payload::Decision { txn: t(), outcome });
            let acked = crate::action::sent_payloads(&actions)
                .iter()
                .any(|(_, pl)| matches!(pl, Payload::Ack { .. }));
            assert_eq!(acked, expect_ack, "{proto} {outcome} ack");
            let kinds = log_kinds(&p);
            // prepared + decision + end
            assert_eq!(kinds.len(), 3, "{proto} {outcome}: {kinds:?}");
            assert_eq!(kinds[1].1, expect_force, "{proto} {outcome} force");
            assert_eq!(p.enforced(t()), Some(outcome));
            assert!(!p.in_doubt(t()));
        }
    }

    #[test]
    fn unknown_decision_is_acked_per_footnote_5() {
        let mut p = participant(ProtocolKind::PrN);
        let actions = p.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        let sends = crate::action::sent_payloads(&actions);
        assert_eq!(sends.len(), 1);
        assert!(matches!(sends[0].1, Payload::Ack { .. }));
        assert!(
            log_kinds(&p).is_empty(),
            "no new records for a forgotten txn"
        );
    }

    #[test]
    fn unknown_decision_not_acked_when_protocol_never_acks_it() {
        // A PrC participant never acks commits, even per footnote 5.
        let mut p = participant(ProtocolKind::PrC);
        let actions = p.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        assert!(crate::action::sent_payloads(&actions).is_empty());
    }

    #[test]
    fn prepared_timer_sends_inquiry_with_own_protocol() {
        let mut p = participant(ProtocolKind::PrC);
        let actions = p.on_prepare(coord(), t());
        let token = actions
            .iter()
            .find_map(|a| match a {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::InquiryRetry,
                    ..
                } => Some(*token),
                _ => None,
            })
            .expect("inquiry timer armed");
        let actions = p.on_timer(token);
        let sends = crate::action::sent_payloads(&actions);
        assert!(
            matches!(
                sends[0].1,
                Payload::Inquiry {
                    protocol: ProtocolKind::PrC,
                    ..
                }
            ),
            "{sends:?}"
        );
        // Re-armed for the next retry.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                purpose: TimerPurpose::InquiryRetry,
                ..
            }
        )));
    }

    #[test]
    fn crash_in_prepared_state_recovers_in_doubt() {
        let mut p = participant(ProtocolKind::PrA);
        p.on_prepare(coord(), t());
        p.crash();
        assert!(!p.in_doubt(t()), "volatile state cleared");
        let actions = p.recover();
        assert!(p.in_doubt(t()), "log analysis re-entered prepared state");
        let sends = crate::action::sent_payloads(&actions);
        assert!(matches!(sends[0].1, Payload::Inquiry { .. }));
        assert_eq!(
            sends[0].0,
            coord(),
            "inquiry goes to the logged coordinator"
        );
    }

    #[test]
    fn crash_before_prepared_force_leaves_nothing() {
        // The prepared record is forced, so this can only happen if the
        // crash lands before the handler ran — i.e. the prepare message
        // was effectively lost. Simulate: no prepare processed, crash,
        // recover: no in-doubt state, no inquiry.
        let mut p = participant(ProtocolKind::PrN);
        p.crash();
        let actions = p.recover();
        assert!(actions.is_empty());
        assert!(p.in_doubt_txns().is_empty());
    }

    #[test]
    fn crash_after_decision_closes_out_on_recovery() {
        let mut p = participant(ProtocolKind::PrA);
        p.on_prepare(coord(), t());
        p.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        // The lazy PartEnd is still buffered; the crash loses it.
        p.crash();
        let kinds = log_kinds(&p);
        assert_eq!(kinds.len(), 2, "end record lost: {kinds:?}");
        let actions = p.recover();
        assert!(crate::action::sent_payloads(&actions).is_empty());
        let kinds = log_kinds(&p);
        assert_eq!(kinds.last().unwrap().0, "part-end", "end re-written");
        assert_eq!(p.enforced(t()), Some(Outcome::Commit));
    }

    #[test]
    fn inquiry_response_terminates_in_doubt_transaction() {
        let mut p = participant(ProtocolKind::PrC);
        p.on_prepare(coord(), t());
        p.crash();
        p.recover();
        let actions = p.on_message(
            coord(),
            &Payload::InquiryResponse {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        assert_eq!(p.enforced(t()), Some(Outcome::Commit));
        assert!(!p.in_doubt(t()));
        // PrC does not ack commits — not even ones learned by inquiry.
        assert!(crate::action::sent_payloads(&actions).is_empty());
    }

    #[test]
    fn garbage_collection_reclaims_ended_transactions() {
        let mut p = participant(ProtocolKind::PrN);
        p.on_prepare(coord(), t());
        p.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        assert!(!p.log_pinned().contains(&t()));
        // Flush the lazy end record, then GC.
        // (collect_garbage only truncates durable prefixes.)
        let reclaimed = {
            // force durability of the lazy tail via another txn's force
            let t2 = TxnId::new(8);
            p.on_prepare(coord(), t2);
            p.collect_garbage()
        };
        assert_eq!(reclaimed, 3, "prepared+decision+end reclaimed");
    }

    #[test]
    fn duplicate_prepare_revotes_yes() {
        let mut p = participant(ProtocolKind::PrA);
        p.on_prepare(coord(), t());
        let actions = p.on_prepare(coord(), t());
        let sends = crate::action::sent_payloads(&actions);
        assert_eq!(sends.len(), 1);
        assert!(matches!(
            sends[0].1,
            Payload::Vote {
                vote: Vote::Yes,
                ..
            }
        ));
        assert_eq!(log_kinds(&p).len(), 1, "prepared record not duplicated");
    }

    #[test]
    fn costs_count_forces_and_messages() {
        let mut p = participant(ProtocolKind::PrN);
        p.on_prepare(coord(), t());
        p.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        let c = p.costs(t());
        assert_eq!(c.forced_writes, 2); // prepared + commit
        assert_eq!(c.log_records, 3); // + lazy end
        assert_eq!(c.votes, 1);
        assert_eq!(c.acks, 1);
    }
}
