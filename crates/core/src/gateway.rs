//! Simulated prepared state: integrating a *non-externalized* legacy
//! site (Figure 5's right subtree).
//!
//! The paper's appendix classifies sites that do not expose a commit
//! protocol at all, and the techniques for including them in global
//! transactions anyway. This module implements the **commitment-after
//! (redo)** family: a *gateway* in front of the legacy system
//!
//! 1. buffers the transaction's writes,
//! 2. at prepare time takes an **exclusive right reservation** on the
//!    written items (so no other *global* transaction can interleave)
//!    and force-writes the redo information and a prepared record to its
//!    own stable log — this *simulates* the prepared state the legacy
//!    system cannot hold,
//! 3. votes "Yes" and thereafter speaks its declared 2PC dialect on the
//!    wire (any of PrN/PrA/PrC — the coordinator cannot tell a gateway
//!    from a native participant),
//! 4. on commit, **retries** the buffered writes against the legacy
//!    system until they succeed (the system may be temporarily down —
//!    the redo log makes the outcome durable at the gateway
//!    regardless), releasing the reservation only when applied.
//!
//! The guarantee is *traditional* atomicity with respect to every
//! transaction routed through the gateway; purely local users of the
//! legacy system can observe the pre-commit state during the retry
//! window — the classical weakness of the approach, which the taxonomy
//! acknowledges by distinguishing semantic from traditional atomicity.

use crate::action::{Action, TimerPurpose};
use acp_acta::ActaEvent;
use acp_types::{CostCounters, LogPayload, Outcome, Payload, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::{GcTracker, StableLog};
use std::collections::BTreeMap;

/// A legacy data system: auto-commit key-value writes, no transactions,
/// no prepare state, and intermittent availability. A separate failure
/// domain from the gateway (it does not lose state when the gateway
/// crashes).
#[derive(Clone, Debug, Default)]
pub struct LegacyStore {
    data: BTreeMap<Vec<u8>, Vec<u8>>,
    available: bool,
}

impl LegacyStore {
    /// An empty, available store.
    #[must_use]
    pub fn new() -> Self {
        LegacyStore {
            data: BTreeMap::new(),
            available: true,
        }
    }

    /// Toggle availability (simulates the legacy system's own outages).
    pub fn set_available(&mut self, available: bool) {
        self.available = available;
    }

    /// Is the system currently reachable?
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.available
    }

    /// Auto-commit write. Fails (without effect) when unavailable.
    pub fn write(&mut self, key: &[u8], value: &[u8]) -> Result<(), Unavailable> {
        if !self.available {
            return Err(Unavailable);
        }
        self.data.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    /// Read (available systems only; local reads are out of scope).
    #[must_use]
    pub fn read(&self, key: &[u8]) -> Option<&[u8]> {
        self.data.get(key).map(Vec::as_slice)
    }

    /// Snapshot all entries (reporting/assertions).
    #[must_use]
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.data
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Error: the legacy system is down; retry later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unavailable;

/// Per-transaction gateway state.
#[derive(Clone, Debug, PartialEq, Eq)]
enum GatewayPhase {
    /// Buffering writes; nothing stable yet.
    Collecting,
    /// Redo info + prepared record forced; reservation held; waiting for
    /// the decision.
    SimulatedPrepared {
        coordinator: SiteId,
        inquiries_sent: u32,
    },
    /// Commit decided (durably); retrying the writes against the legacy
    /// system until they stick.
    Applying { next_write: usize },
}

#[derive(Clone, Debug)]
struct GatewayTxn {
    phase: GatewayPhase,
    writes: Vec<(Vec<u8>, Vec<u8>)>,
}

/// A participant-shaped adapter that lets a [`LegacyStore`] take part in
/// any of the 2PC variants.
///
/// # Example
///
/// ```
/// use acp_core::gateway::{GatewayParticipant, LegacyStore};
/// use acp_types::{Outcome, Payload, ProtocolKind, SiteId, TxnId};
/// use acp_wal::MemLog;
///
/// let mut g = GatewayParticipant::new(
///     SiteId::new(1),
///     ProtocolKind::PrA, // the dialect it speaks on the wire
///     MemLog::new(),
///     LegacyStore::new(),
/// );
/// let txn = TxnId::new(1);
/// g.stage_write(txn, b"order", b"42");
///
/// let coordinator = SiteId::new(0);
/// g.on_message(coordinator, &Payload::Prepare { txn }); // simulated prepared state
/// assert_eq!(g.legacy().read(b"order"), None); // nothing applied yet
///
/// g.on_message(coordinator, &Payload::Decision { txn, outcome: Outcome::Commit });
/// assert_eq!(g.legacy().read(b"order"), Some(b"42".as_slice()));
/// ```
#[derive(Clone, Debug)]
pub struct GatewayParticipant<L: StableLog> {
    site: SiteId,
    /// The 2PC dialect the gateway externalizes.
    declared: ProtocolKind,
    log: L,
    legacy: LegacyStore,
    /// Exclusive right reservations: keys pinned by simulated-prepared
    /// or applying transactions.
    reservations: BTreeMap<Vec<u8>, TxnId>,
    txns: BTreeMap<TxnId, GatewayTxn>,
    /// Observational enforcement record (as in `Participant`).
    enforced: BTreeMap<TxnId, Outcome>,
    gc: GcTracker,
    timers: BTreeMap<u64, TxnId>,
    next_token: u64,
    costs: BTreeMap<TxnId, CostCounters>,
}

impl<L: StableLog> GatewayParticipant<L> {
    /// Wrap a legacy system, externalizing the given protocol.
    pub fn new(site: SiteId, declared: ProtocolKind, log: L, legacy: LegacyStore) -> Self {
        GatewayParticipant {
            site,
            declared,
            log,
            legacy,
            reservations: BTreeMap::new(),
            txns: BTreeMap::new(),
            enforced: BTreeMap::new(),
            gc: GcTracker::new(),
            timers: BTreeMap::new(),
            next_token: 0,
            costs: BTreeMap::new(),
        }
    }

    /// The protocol this gateway speaks on the wire.
    #[must_use]
    pub fn declared_protocol(&self) -> ProtocolKind {
        self.declared
    }

    /// The wrapped legacy system (e.g. to toggle availability in tests).
    pub fn legacy_mut(&mut self) -> &mut LegacyStore {
        &mut self.legacy
    }

    /// Read-through to the legacy system's committed data.
    #[must_use]
    pub fn legacy(&self) -> &LegacyStore {
        &self.legacy
    }

    /// Outcome enforced for `txn`, if any.
    #[must_use]
    pub fn enforced(&self, txn: TxnId) -> Option<Outcome> {
        self.enforced.get(&txn).copied()
    }

    /// Transactions whose writes are still awaiting application to the
    /// legacy system.
    #[must_use]
    pub fn applying(&self) -> Vec<TxnId> {
        self.txns
            .iter()
            .filter(|(_, t)| matches!(t.phase, GatewayPhase::Applying { .. }))
            .map(|(t, _)| *t)
            .collect()
    }

    /// Buffer a write for `txn` (the MDBS routes the operation through
    /// the gateway instead of the legacy interface — the "rerouting"
    /// leaf of the taxonomy).
    pub fn stage_write(&mut self, txn: TxnId, key: &[u8], value: &[u8]) {
        let t = self.txns.entry(txn).or_insert(GatewayTxn {
            phase: GatewayPhase::Collecting,
            writes: Vec::new(),
        });
        if t.phase == GatewayPhase::Collecting {
            t.writes.push((key.to_vec(), value.to_vec()));
        }
    }

    fn append(&mut self, txn: TxnId, payload: LogPayload, force: bool, out: &mut Vec<Action>) {
        let kind = payload.kind_name();
        let lsn = self.log.next_lsn();
        self.gc.note(lsn, &payload);
        self.log.append(payload, force).expect("gateway log append");
        self.costs.entry(txn).or_default().count_log_write(force);
        out.push(Action::Acta(ActaEvent::LogWrite {
            site: self.site,
            txn,
            kind,
            forced: force,
        }));
    }

    fn send(&mut self, txn: TxnId, to: SiteId, payload: Payload, out: &mut Vec<Action>) {
        self.costs
            .entry(txn)
            .or_default()
            .count_message_kind(payload.kind_name());
        out.push(Action::Send { to, payload });
    }

    fn arm_timer(&mut self, txn: TxnId, purpose: TimerPurpose, attempt: u32, out: &mut Vec<Action>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, txn);
        out.push(Action::SetTimer {
            token,
            purpose,
            attempt,
        });
    }

    /// Handle a prepare request: take the reservation, force the redo
    /// information, vote.
    fn on_prepare(&mut self, coordinator: SiteId, txn: TxnId) -> Vec<Action> {
        let mut out = Vec::new();
        let Some(state) = self.txns.get(&txn) else {
            // No staged writes: read-only from the gateway's view.
            self.send(
                txn,
                coordinator,
                Payload::Vote {
                    txn,
                    vote: Vote::ReadOnly,
                },
                &mut out,
            );
            return out;
        };
        match &state.phase {
            GatewayPhase::Collecting => {}
            GatewayPhase::SimulatedPrepared { .. } => {
                self.send(
                    txn,
                    coordinator,
                    Payload::Vote {
                        txn,
                        vote: Vote::Yes,
                    },
                    &mut out,
                );
                return out;
            }
            GatewayPhase::Applying { .. } => return out,
        }
        // Exclusive right reservation: refuse if any written key is
        // reserved by another transaction.
        let conflict = state.writes.iter().any(|(k, _)| {
            self.reservations
                .get(k)
                .is_some_and(|holder| *holder != txn)
        });
        if conflict {
            self.txns.remove(&txn);
            self.enforced.insert(txn, Outcome::Abort);
            out.push(Action::Enforce {
                txn,
                outcome: Outcome::Abort,
            });
            self.send(
                txn,
                coordinator,
                Payload::Vote {
                    txn,
                    vote: Vote::No,
                },
                &mut out,
            );
            out.push(Action::Acta(ActaEvent::ForgetPart {
                participant: self.site,
                txn,
            }));
            return out;
        }
        // Reserve, force redo info + prepared record, vote Yes.
        let writes = state.writes.clone();
        for (k, _) in &writes {
            self.reservations.insert(k.clone(), txn);
        }
        for (key, value) in &writes {
            self.append(
                txn,
                LogPayload::Update {
                    txn,
                    key: key.clone(),
                    before: None,
                    after: Some(value.clone()),
                },
                false,
                &mut out,
            );
        }
        self.append(
            txn,
            LogPayload::Prepared { txn, coordinator },
            true,
            &mut out,
        );
        out.push(Action::Acta(ActaEvent::Prepared {
            participant: self.site,
            txn,
        }));
        self.txns.get_mut(&txn).expect("present").phase = GatewayPhase::SimulatedPrepared {
            coordinator,
            inquiries_sent: 0,
        };
        self.send(
            txn,
            coordinator,
            Payload::Vote {
                txn,
                vote: Vote::Yes,
            },
            &mut out,
        );
        self.arm_timer(txn, TimerPurpose::InquiryRetry, 0, &mut out);
        out
    }

    /// Try to push a committed transaction's writes into the legacy
    /// system; reschedule on unavailability.
    fn try_apply(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let Some(state) = self.txns.get_mut(&txn) else {
            return;
        };
        let GatewayPhase::Applying { next_write } = &mut state.phase else {
            return;
        };
        while *next_write < state.writes.len() {
            let (k, v) = &state.writes[*next_write];
            match self.legacy.write(k, v) {
                Ok(()) => *next_write += 1,
                Err(Unavailable) => {
                    // Commitment-after/redo: keep retrying. Availability
                    // is binary, so the retry interval stays flat
                    // (attempt 0) rather than backing off.
                    self.arm_timer(txn, TimerPurpose::ApplyRetry, 0, out);
                    return;
                }
            }
        }
        // Fully applied: release reservations, close out.
        let state = self.txns.remove(&txn).expect("present");
        for (k, _) in &state.writes {
            self.reservations.remove(k);
        }
        self.append(txn, LogPayload::PartEnd { txn }, false, out);
        out.push(Action::Acta(ActaEvent::ForgetPart {
            participant: self.site,
            txn,
        }));
    }

    fn on_decision(&mut self, from: SiteId, txn: TxnId, outcome: Outcome) -> Vec<Action> {
        let mut out = Vec::new();
        let Some(state) = self.txns.get_mut(&txn) else {
            // Footnote 5: no memory ⇒ already enforced; just acknowledge.
            if self.declared.acks(outcome) {
                self.send(txn, from, Payload::Ack { txn }, &mut out);
            }
            return out;
        };
        let GatewayPhase::SimulatedPrepared { coordinator, .. } = state.phase else {
            return out;
        };
        // Durable decision record: forced exactly when the declared
        // dialect acknowledges (the ack promises stability — same rule
        // as a native participant).
        let force = self.declared.forces_decision(outcome);
        self.append(
            txn,
            LogPayload::PartDecision { txn, outcome },
            force,
            &mut out,
        );
        self.enforced.insert(txn, outcome);
        out.push(Action::Enforce { txn, outcome });
        out.push(Action::Acta(ActaEvent::Enforce {
            participant: self.site,
            txn,
            outcome,
        }));
        if self.declared.acks(outcome) {
            self.send(txn, coordinator, Payload::Ack { txn }, &mut out);
        }
        match outcome {
            Outcome::Commit => {
                // The redo log makes the commit durable here; the legacy
                // application happens (and retries) asynchronously.
                self.txns.get_mut(&txn).expect("present").phase =
                    GatewayPhase::Applying { next_write: 0 };
                self.try_apply(txn, &mut out);
            }
            Outcome::Abort => {
                let state = self.txns.remove(&txn).expect("present");
                for (k, _) in &state.writes {
                    self.reservations.remove(k);
                }
                self.append(txn, LogPayload::PartEnd { txn }, false, &mut out);
                out.push(Action::Acta(ActaEvent::ForgetPart {
                    participant: self.site,
                    txn,
                }));
            }
        }
        out
    }

    /// Route an incoming message.
    pub fn on_message(&mut self, from: SiteId, payload: &Payload) -> Vec<Action> {
        match payload {
            Payload::Prepare { txn } => self.on_prepare(from, *txn),
            Payload::Decision { txn, outcome } | Payload::InquiryResponse { txn, outcome } => {
                self.on_decision(from, *txn, *outcome)
            }
            Payload::Vote { .. }
            | Payload::Ack { .. }
            | Payload::Inquiry { .. }
            | Payload::PaxosBegin { .. }
            | Payload::Phase1a { .. }
            | Payload::Phase1b { .. }
            | Payload::Phase2a { .. }
            | Payload::Phase2b { .. }
            | Payload::PaxosForget { .. } => Vec::new(),
        }
    }

    /// Timer callback: inquiry retries while simulated-prepared, apply
    /// retries while applying.
    pub fn on_timer(&mut self, token: u64) -> Vec<Action> {
        let mut out = Vec::new();
        let Some(txn) = self.timers.remove(&token) else {
            return out;
        };
        match self.txns.get_mut(&txn).map(|t| &mut t.phase) {
            Some(GatewayPhase::SimulatedPrepared {
                coordinator,
                inquiries_sent,
            }) => {
                let coordinator = *coordinator;
                *inquiries_sent += 1;
                let attempts = *inquiries_sent;
                out.push(Action::Acta(ActaEvent::Inquire {
                    participant: self.site,
                    txn,
                    protocol: self.declared,
                }));
                let protocol = self.declared;
                self.send(
                    txn,
                    coordinator,
                    Payload::Inquiry { txn, protocol },
                    &mut out,
                );
                if attempts < crate::participant::MAX_INQUIRY_RETRIES {
                    self.arm_timer(txn, TimerPurpose::InquiryRetry, attempts, &mut out);
                }
            }
            Some(GatewayPhase::Applying { .. }) => self.try_apply(txn, &mut out),
            _ => {}
        }
        out
    }

    /// Gateway crash: volatile state lost; the legacy system is a
    /// separate failure domain and keeps its data.
    pub fn crash(&mut self) {
        self.txns.clear();
        self.reservations.clear();
        self.timers.clear();
        self.log.lose_unflushed().expect("log crash");
        self.gc = GcTracker::from_records(&self.log.records().expect("records"));
    }

    /// Recovery: rebuild simulated-prepared and applying transactions
    /// from the redo log.
    pub fn recover(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        let records = self.log.records().expect("records");
        self.gc = GcTracker::from_records(&records);
        let summaries = acp_wal::scan::analyze(&records);
        for (txn, s) in summaries {
            if s.part_ended {
                continue;
            }
            let writes: Vec<(Vec<u8>, Vec<u8>)> = s
                .updates
                .iter()
                .filter_map(|(k, _, after)| after.clone().map(|v| (k.clone(), v)))
                .collect();
            if s.in_doubt() {
                let coordinator = s.prepared.expect("in doubt implies prepared");
                for (k, _) in &writes {
                    self.reservations.insert(k.clone(), txn);
                }
                self.txns.insert(
                    txn,
                    GatewayTxn {
                        phase: GatewayPhase::SimulatedPrepared {
                            coordinator,
                            inquiries_sent: 1,
                        },
                        writes,
                    },
                );
                out.push(Action::Acta(ActaEvent::Inquire {
                    participant: self.site,
                    txn,
                    protocol: self.declared,
                }));
                let protocol = self.declared;
                self.send(
                    txn,
                    coordinator,
                    Payload::Inquiry { txn, protocol },
                    &mut out,
                );
                self.arm_timer(txn, TimerPurpose::InquiryRetry, 1, &mut out);
            } else if let Some(outcome) = s.part_decision {
                self.enforced.entry(txn).or_insert(outcome);
                if outcome == Outcome::Commit {
                    // Resume the redo application (idempotent: blind
                    // writes re-applied from position 0).
                    for (k, _) in &writes {
                        self.reservations.insert(k.clone(), txn);
                    }
                    self.txns.insert(
                        txn,
                        GatewayTxn {
                            phase: GatewayPhase::Applying { next_write: 0 },
                            writes,
                        },
                    );
                    self.try_apply(txn, &mut out);
                } else {
                    self.append(txn, LogPayload::PartEnd { txn }, false, &mut out);
                    out.push(Action::Acta(ActaEvent::ForgetPart {
                        participant: self.site,
                        txn,
                    }));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::sent_payloads;
    use acp_wal::MemLog;

    fn coord() -> SiteId {
        SiteId::new(0)
    }

    fn t() -> TxnId {
        TxnId::new(1)
    }

    fn gateway(declared: ProtocolKind) -> GatewayParticipant<MemLog> {
        GatewayParticipant::new(SiteId::new(1), declared, MemLog::new(), LegacyStore::new())
    }

    #[test]
    fn prepare_forces_redo_info_and_votes_yes() {
        let mut g = gateway(ProtocolKind::PrA);
        g.stage_write(t(), b"k", b"v");
        let a = g.on_message(coord(), &Payload::Prepare { txn: t() });
        let sends = sent_payloads(&a);
        assert!(matches!(
            sends[0].1,
            Payload::Vote {
                vote: Vote::Yes,
                ..
            }
        ));
        // Redo update record + forced prepared record are durable.
        let kinds: Vec<_> = g
            .log
            .records()
            .unwrap()
            .iter()
            .map(|r| r.payload.kind_name().to_string())
            .collect();
        assert_eq!(kinds, vec!["update", "prepared"]);
        // Nothing applied to the legacy system yet.
        assert_eq!(g.legacy().read(b"k"), None);
    }

    #[test]
    fn commit_applies_to_legacy_and_releases_reservation() {
        let mut g = gateway(ProtocolKind::PrA);
        g.stage_write(t(), b"k", b"v");
        g.on_message(coord(), &Payload::Prepare { txn: t() });
        let a = g.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        assert!(sent_payloads(&a)
            .iter()
            .any(|(_, p)| matches!(p, Payload::Ack { .. })));
        assert_eq!(g.legacy().read(b"k"), Some(b"v".as_slice()));
        assert!(g.applying().is_empty());
        assert_eq!(g.enforced(t()), Some(Outcome::Commit));
        // A new transaction can reserve the key again.
        let t2 = TxnId::new(2);
        g.stage_write(t2, b"k", b"w");
        let a = g.on_message(coord(), &Payload::Prepare { txn: t2 });
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::Vote {
                vote: Vote::Yes,
                ..
            }
        ));
    }

    #[test]
    fn abort_discards_without_touching_legacy() {
        let mut g = gateway(ProtocolKind::PrC);
        g.stage_write(t(), b"k", b"v");
        g.on_message(coord(), &Payload::Prepare { txn: t() });
        let a = g.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Abort,
            },
        );
        // PrC dialect acks aborts.
        assert!(sent_payloads(&a)
            .iter()
            .any(|(_, p)| matches!(p, Payload::Ack { .. })));
        assert_eq!(g.legacy().read(b"k"), None);
        assert_eq!(g.enforced(t()), Some(Outcome::Abort));
    }

    #[test]
    fn commit_while_legacy_down_acks_then_retries_until_up() {
        let mut g = gateway(ProtocolKind::PrA);
        g.stage_write(t(), b"k", b"v");
        g.on_message(coord(), &Payload::Prepare { txn: t() });
        g.legacy_mut().set_available(false);
        let a = g.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        // The ack goes out immediately — the redo log made the commit
        // durable at the gateway.
        assert!(sent_payloads(&a)
            .iter()
            .any(|(_, p)| matches!(p, Payload::Ack { .. })));
        assert_eq!(g.legacy().read(b"k"), None, "not applied yet");
        assert_eq!(g.applying(), vec![t()]);
        // A retry timer was armed.
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::ApplyRetry,
                    ..
                } => Some(*token),
                _ => None,
            })
            .expect("retry armed");
        // Retry while still down: re-arms.
        let a = g.on_timer(token);
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::ApplyRetry,
                    ..
                } => Some(*token),
                _ => None,
            })
            .expect("re-armed");
        // Legacy comes back; retry succeeds.
        g.legacy_mut().set_available(true);
        g.on_timer(token);
        assert_eq!(g.legacy().read(b"k"), Some(b"v".as_slice()));
        assert!(g.applying().is_empty());
    }

    #[test]
    fn reservation_conflicts_vote_no() {
        let mut g = gateway(ProtocolKind::PrA);
        g.stage_write(t(), b"k", b"v1");
        g.on_message(coord(), &Payload::Prepare { txn: t() });
        let t2 = TxnId::new(2);
        g.stage_write(t2, b"k", b"v2");
        let a = g.on_message(coord(), &Payload::Prepare { txn: t2 });
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::Vote { vote: Vote::No, .. }
        ));
        assert_eq!(g.enforced(t2), Some(Outcome::Abort));
    }

    #[test]
    fn no_staged_writes_votes_read_only() {
        let mut g = gateway(ProtocolKind::PrN);
        let a = g.on_message(coord(), &Payload::Prepare { txn: t() });
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::Vote {
                vote: Vote::ReadOnly,
                ..
            }
        ));
    }

    #[test]
    fn gateway_crash_in_simulated_prepared_recovers_and_inquires() {
        let mut g = gateway(ProtocolKind::PrA);
        g.stage_write(t(), b"k", b"v");
        g.on_message(coord(), &Payload::Prepare { txn: t() });
        g.crash();
        let a = g.recover();
        let sends = sent_payloads(&a);
        assert!(matches!(
            sends[0].1,
            Payload::Inquiry {
                protocol: ProtocolKind::PrA,
                ..
            }
        ));
        // The inquiry response commits it; the redo info survived the
        // crash, so the legacy write still happens.
        g.on_message(
            coord(),
            &Payload::InquiryResponse {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        assert_eq!(g.legacy().read(b"k"), Some(b"v".as_slice()));
    }

    #[test]
    fn gateway_crash_mid_apply_resumes_redo() {
        let mut g = gateway(ProtocolKind::PrN);
        g.stage_write(t(), b"a", b"1");
        g.stage_write(t(), b"b", b"2");
        g.on_message(coord(), &Payload::Prepare { txn: t() });
        g.legacy_mut().set_available(false);
        g.on_message(
            coord(),
            &Payload::Decision {
                txn: t(),
                outcome: Outcome::Commit,
            },
        );
        // Crash before any write applied. The decision record was forced
        // (PrN acks commits), so recovery resumes applying.
        g.crash();
        g.legacy_mut().set_available(true);
        let a = g.recover();
        let _ = a;
        assert_eq!(g.legacy().read(b"a"), Some(b"1".as_slice()));
        assert_eq!(g.legacy().read(b"b"), Some(b"2".as_slice()));
        assert!(g.applying().is_empty());
    }

    /// End-to-end: a coordinator, one native PrC participant and one
    /// PrA-dialect gateway commit a transaction together — the
    /// coordinator cannot tell the difference.
    #[test]
    fn interoperates_with_native_participants_under_prany() {
        use crate::coordinator::Coordinator;
        use crate::participant::Participant;
        use acp_types::{CoordinatorKind, SelectionPolicy};

        let mut c = Coordinator::new(
            coord(),
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            MemLog::new(),
        );
        c.register_site(SiteId::new(1), ProtocolKind::PrA); // the gateway's dialect
        c.register_site(SiteId::new(2), ProtocolKind::PrC);
        let mut g = gateway(ProtocolKind::PrA);
        let mut p = Participant::new(SiteId::new(2), ProtocolKind::PrC, MemLog::new());

        g.stage_write(t(), b"order", b"42");

        // Message pump: route every Send action to its destination.
        let mut queue: Vec<(SiteId, SiteId, Payload)> = Vec::new();
        let push = |from: SiteId, actions: Vec<Action>, queue: &mut Vec<_>| {
            for a in actions {
                if let Action::Send { to, payload } = a {
                    queue.push((from, to, payload));
                }
            }
        };
        let a = c.begin_commit(t(), &[SiteId::new(1), SiteId::new(2)]);
        push(coord(), a, &mut queue);
        let mut hops = 0;
        while let Some((from, to, payload)) = queue.pop() {
            hops += 1;
            assert!(hops < 100, "message storm");
            let actions = match to.raw() {
                0 => c.on_message(from, &payload),
                1 => g.on_message(from, &payload),
                2 => p.on_message(from, &payload),
                _ => unreachable!(),
            };
            push(to, actions, &mut queue);
        }
        assert_eq!(c.decided(t()), Some(Outcome::Commit));
        assert_eq!(g.enforced(t()), Some(Outcome::Commit));
        assert_eq!(p.enforced(t()), Some(Outcome::Commit));
        assert_eq!(g.legacy().read(b"order"), Some(b"42".as_slice()));
        assert_eq!(c.protocol_table_size(), 0, "coordinator forgot");
    }
}
