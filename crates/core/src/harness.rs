//! Scenario harness: runs the protocol engines inside the deterministic
//! simulator and hands the resulting ACTA history, trace and final
//! garbage-collection state to the correctness checkers.
//!
//! This is the main entry point for experiments, integration tests and
//! examples: describe a [`Scenario`] (coordinator kind, participant
//! protocols, transactions with votes, network model, failure
//! schedule), call [`run_scenario`], and inspect the
//! [`ScenarioOutcome`].

use crate::action::{Action, TimerPurpose};
use crate::coordinator::Coordinator;
use crate::participant::Participant;
use acp_acta::{ActaEvent, FinalState, History};
use acp_obs::{FanoutSink, NullSink, ProtoLabel, ProtocolEvent, TraceSink, VecSink};
use acp_sim::{Context, FailureSchedule, NetworkConfig, Process, SimTime, Trace, World};
use acp_types::{
    CoordinatorKind, CostCounters, Message, Outcome, Payload, ProtocolKind, SiteId, TxnId, Vote,
};
use acp_wal::{GroupCommitLog, GroupCommitStats, MemLog};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// Timer delays used by the harness.
///
/// Each purpose has a *base* delay; retries back off exponentially from
/// it (`base << attempt`, capped at `max_backoff`). Bounded backoff is
/// what lets the engines terminate under sustained message loss without
/// hammering a lossy link: every re-send is spaced further apart, but
/// never further than `max_backoff`, so progress resumes within a
/// bounded delay of the loss clearing.
#[derive(Clone, Copy, Debug)]
pub struct TimerDelays {
    /// Coordinator vote-collection timeout.
    pub vote_timeout: SimTime,
    /// Decision re-send interval.
    pub ack_resend: SimTime,
    /// In-doubt participant inquiry interval.
    pub inquiry_retry: SimTime,
    /// Gateway legacy-apply retry interval.
    pub apply_retry: SimTime,
    /// Paxos acceptor completion watchdog (leader-failover trigger).
    pub paxos_completion: SimTime,
    /// Upper bound on any backed-off delay.
    pub max_backoff: SimTime,
}

impl Default for TimerDelays {
    fn default() -> Self {
        TimerDelays {
            vote_timeout: SimTime::from_millis(50),
            ack_resend: SimTime::from_millis(20),
            inquiry_retry: SimTime::from_millis(30),
            apply_retry: SimTime::from_millis(25),
            paxos_completion: SimTime::from_millis(80),
            max_backoff: SimTime::from_millis(500),
        }
    }
}

/// Doublings beyond which the exponential backoff stops growing (the
/// shift is clamped so `base << shift` cannot overflow; `max_backoff`
/// caps the result well before this in any sane configuration).
const BACKOFF_SHIFT_CAP: u32 = 16;

impl TimerDelays {
    /// The base (attempt-0) delay for a purpose.
    #[must_use]
    pub fn base(&self, purpose: TimerPurpose) -> SimTime {
        match purpose {
            TimerPurpose::VoteTimeout => self.vote_timeout,
            TimerPurpose::AckResend => self.ack_resend,
            TimerPurpose::InquiryRetry => self.inquiry_retry,
            TimerPurpose::ApplyRetry => self.apply_retry,
            TimerPurpose::PaxosCompletion => self.paxos_completion,
        }
    }

    /// The concrete delay for the `attempt`-th arming of a purpose:
    /// `min(base << attempt, max_backoff)` (never below `base`).
    #[must_use]
    pub fn delay(&self, purpose: TimerPurpose, attempt: u32) -> SimTime {
        let base = self.base(purpose);
        let shifted = base.as_micros() << attempt.min(BACKOFF_SHIFT_CAP);
        SimTime::from_micros(shifted.min(self.max_backoff.as_micros()).max(base.as_micros()))
    }

    /// Like [`delay`](Self::delay), but retries (`attempt > 0`) are
    /// spread by a deterministic ±12.5% jitter derived from `salt`
    /// (site/timer identity). After a crash, every in-doubt participant
    /// arms its inquiry retry at the same instant; without jitter each
    /// backoff round arrives as a synchronized burst at the recovering
    /// coordinator. Attempt-0 armings are returned *exactly* — clean
    /// (no-retry) schedules stay byte-identical with jitter enabled.
    #[must_use]
    pub fn delay_jittered(&self, purpose: TimerPurpose, attempt: u32, salt: u64) -> SimTime {
        let d = self.delay(purpose, attempt);
        if attempt == 0 {
            return d;
        }
        let us = d.as_micros();
        let span = us / 4; // total jitter window: d/4, centred on d
        if span == 0 {
            return d;
        }
        let offset = jitter_hash(salt, purpose as u64, u64::from(attempt)) % (span + 1);
        let jittered = us - span / 2 + offset;
        SimTime::from_micros(jittered.max(self.base(purpose).as_micros()))
    }
}

/// Deterministic 64-bit mix (splitmix64 over the xor-folded inputs) —
/// the jitter source for retry backoff. Pure function of its inputs, so
/// a re-run of the same schedule jitters identically.
#[must_use]
pub fn jitter_hash(salt: u64, purpose: u64, attempt: u64) -> u64 {
    let mut z = salt
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(purpose.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(attempt.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One transaction in a scenario.
#[derive(Clone, Debug)]
pub struct TxnSpec {
    /// The transaction id.
    pub txn: TxnId,
    /// When the coordinator starts commit processing.
    pub start_at: SimTime,
    /// Participant sites (all of them must be in the scenario).
    pub participants: Vec<SiteId>,
    /// Per-site votes; sites not listed vote `Yes`.
    pub votes: BTreeMap<SiteId, Vote>,
    /// Client abort request at this time (used to produce the figures'
    /// abort case where *every* participant is prepared).
    pub abort_at: Option<SimTime>,
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The coordinator variant under test (always at site 0).
    pub kind: CoordinatorKind,
    /// Participant protocols; site ids are assigned 1..=n in order.
    pub participant_protocols: Vec<ProtocolKind>,
    /// The workload.
    pub txns: Vec<TxnSpec>,
    /// Network model.
    pub network: NetworkConfig,
    /// RNG seed (drives latencies, loss).
    pub seed: u64,
    /// Planned crashes/recoveries.
    pub failures: FailureSchedule,
    /// Timer configuration.
    pub delays: TimerDelays,
    /// Safety valve for the event loop.
    pub max_events: u64,
    /// Group-commit batch window in sim microseconds. `None` (the
    /// default) disables batching entirely — bit-for-bit the historical
    /// behavior. `Some(w)` wraps every site's log in a deterministic
    /// batch-window accountant: forced writes landing within `w` µs of
    /// a window opener coalesce into one counted physical force
    /// (`Some(0)` coalesces only same-instant forces — the natural
    /// choice for concurrent-transaction campaigns, since a reliable
    /// network lands same-slot forces at identical sim times).
    /// Durability semantics are unchanged either way, so crash sweeps
    /// hold under any window.
    pub batch_window: Option<u64>,
}

impl Scenario {
    /// A scenario with the given coordinator kind and participants, no
    /// transactions yet, a reliable 200us network and no failures.
    #[must_use]
    pub fn new(kind: CoordinatorKind, participant_protocols: &[ProtocolKind]) -> Self {
        Scenario {
            kind,
            participant_protocols: participant_protocols.to_vec(),
            txns: Vec::new(),
            network: NetworkConfig::reliable(SimTime::from_micros(200)),
            seed: 0,
            failures: FailureSchedule::none(),
            delays: TimerDelays::default(),
            max_events: 1_000_000,
            batch_window: None,
        }
    }

    /// The coordinator's site id (always 0).
    #[must_use]
    pub fn coordinator_site(&self) -> SiteId {
        SiteId::new(0)
    }

    /// Participant site ids, in declaration order.
    #[must_use]
    pub fn participant_sites(&self) -> Vec<SiteId> {
        (1..=self.participant_protocols.len() as u32)
            .map(SiteId::new)
            .collect()
    }

    /// Add a transaction across *all* participants, started at
    /// `start_at`, with every site voting `Yes`.
    pub fn add_txn(&mut self, txn: TxnId, start_at: SimTime) -> &mut TxnSpec {
        let spec = TxnSpec {
            txn,
            start_at,
            participants: self.participant_sites(),
            votes: BTreeMap::new(),
            abort_at: None,
        };
        self.txns.push(spec);
        self.txns.last_mut().expect("just pushed")
    }

    /// Add a transaction with an explicit vote at one site.
    pub fn add_txn_with_vote(&mut self, txn: TxnId, start_at: SimTime, site: SiteId, vote: Vote) {
        let spec = self.add_txn(txn, start_at);
        spec.votes.insert(site, vote);
    }
}

/// What a scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The complete ACTA history.
    pub history: History,
    /// The simulator trace (messages, crashes, protocol notes).
    pub trace: Trace,
    /// End-of-run GC state for the operational-correctness checker.
    pub final_state: FinalState,
    /// Outcomes enforced per (site, txn).
    pub enforced: BTreeMap<(SiteId, TxnId), Outcome>,
    /// Decisions the coordinator made.
    pub decided: BTreeMap<TxnId, Outcome>,
    /// Coordinator protocol-table size at the end of the run.
    pub coordinator_table_size: usize,
    /// Records retained in the coordinator's log at the end of the run.
    pub coordinator_log_retained: usize,
    /// Bytes retained in the coordinator's log.
    pub coordinator_log_retained_bytes: u64,
    /// Per-transaction coordinator costs.
    pub coordinator_costs: BTreeMap<TxnId, CostCounters>,
    /// Per-transaction, per-participant costs.
    pub participant_costs: BTreeMap<(SiteId, TxnId), CostCounters>,
    /// Events the simulator processed.
    pub events_processed: u64,
    /// Aggregate group-commit accounting across every site's log:
    /// `batches` is the number of physical forces a batching backend
    /// would have performed, `batched_appends` the logical forced
    /// writes they served. With `batch_window: None` everything is
    /// zero (batching off).
    pub group_commit: GroupCommitStats,
    /// The complete typed protocol-event stream of the run (also fanned
    /// out to the caller's sink in [`run_scenario_with_sink`]); feed it
    /// to `acp_obs::render` to reproduce the paper's figures.
    pub events: Vec<ProtocolEvent>,
}

impl ScenarioOutcome {
    /// Aggregate cost of one transaction across the whole system.
    #[must_use]
    pub fn total_costs(&self, txn: TxnId) -> CostCounters {
        let mut total = self
            .coordinator_costs
            .get(&txn)
            .copied()
            .unwrap_or_default();
        for ((_, t), c) in &self.participant_costs {
            if *t == txn {
                total += *c;
            }
        }
        total
    }
}

/// A site process: either the coordinator or a participant, wrapping the
/// sans-IO engine and translating its actions into simulator effects.
pub struct SiteProc {
    inner: Inner,
    history: Rc<RefCell<History>>,
    delays: TimerDelays,
    /// Observability sink; protocol-level events (log writes, votes,
    /// decisions, GC) are emitted here as they happen.
    sink: Arc<dyn TraceSink>,
    /// The label under which this site's events are attributed.
    proto: ProtoLabel,
    /// When this site last reached a decision (drives the GC-latency
    /// metric: `LogGc::since_decision_us`).
    last_decision: Option<SimTime>,
    /// Harness timer-token → engine token or deferred transaction start.
    timer_map: BTreeMap<u64, HarnessTimer>,
    /// Client requests not yet submitted. These model *clients*, not
    /// coordinator state: they survive coordinator crashes (a crashed
    /// server does not make the requests queued behind it disappear) and
    /// are re-armed by `on_recover`, since the simulator invalidates all
    /// volatile timers on a crash.
    pending_starts: BTreeMap<u64, (SimTime, TxnId, Vec<SiteId>)>,
    next_token: u64,
}

/// The log type harness engines run on: the in-memory stable log behind
/// the group-commit layer (passthrough unless the scenario sets a
/// batch window).
pub type HarnessLog = GroupCommitLog<MemLog>;

enum Inner {
    Coord {
        engine: Coordinator<HarnessLog>,
        /// Transactions to start (drained into `pending_starts` by
        /// `on_start`), with optional client-abort times.
        starts: Vec<(SimTime, TxnId, Vec<SiteId>, Option<SimTime>)>,
    },
    Part(Participant<HarnessLog>),
}

enum HarnessTimer {
    Engine(u64),
    Start(u64),
    ClientAbort(TxnId),
}

impl SiteProc {
    /// Access the coordinator engine (panics on participant sites).
    #[must_use]
    pub fn coordinator(&self) -> &Coordinator<HarnessLog> {
        match &self.inner {
            Inner::Coord { engine, .. } => engine,
            Inner::Part(_) => panic!("not a coordinator site"),
        }
    }

    /// Access the participant engine (panics on the coordinator site).
    #[must_use]
    pub fn participant(&self) -> &Participant<HarnessLog> {
        match &self.inner {
            Inner::Part(p) => p,
            Inner::Coord { .. } => panic!("not a participant site"),
        }
    }

    /// Advance the site log's group-commit clock to the current sim
    /// time (expires the open batch window, if any).
    fn tick_log(&mut self, now: SimTime) {
        let now_us = now.as_micros();
        match &mut self.inner {
            Inner::Coord { engine, .. } => engine.log_mut().tick(now_us),
            Inner::Part(p) => p.log_mut().tick(now_us),
        }
    }

    /// Emit a [`ProtocolEvent::BatchCommit`] for every batch window
    /// that closed with occupancy ≥ 2. Batches of one are silent: they
    /// are indistinguishable from unbatched forces, which keeps clean
    /// single-transaction traces byte-identical under batching.
    fn emit_closed_batches(&mut self) {
        let site = match &self.inner {
            Inner::Coord { engine, .. } => engine.site().raw(),
            Inner::Part(p) => p.site().raw(),
        };
        let closed = match &mut self.inner {
            Inner::Coord { engine, .. } => engine.log_mut().take_closed(),
            Inner::Part(p) => p.log_mut().take_closed(),
        };
        for b in closed {
            if b.occupancy >= 2 {
                self.sink.record(&ProtocolEvent::BatchCommit {
                    at_us: b.opened_at_us,
                    site,
                    proto: self.proto,
                    occupancy: b.occupancy,
                });
            }
        }
    }

    /// End-of-run: seal the still-open batch window, emit its event,
    /// and return this site's accumulated group-commit accounting.
    fn finish_batches(&mut self) -> GroupCommitStats {
        match &mut self.inner {
            Inner::Coord { engine, .. } => {
                let _ = engine.log_mut().commit_batch();
            }
            Inner::Part(p) => {
                let _ = p.log_mut().commit_batch();
            }
        }
        self.emit_closed_batches();
        match &self.inner {
            Inner::Coord { engine, .. } => engine.log().group_stats(),
            Inner::Part(p) => p.log().group_stats(),
        }
    }

    fn handle_actions(&mut self, actions: Vec<Action>, ctx: &mut Context) {
        for action in actions {
            match action {
                Action::Send { to, payload } => {
                    if let Payload::Vote { txn, vote } = &payload {
                        self.sink.record(&ProtocolEvent::VoteCast {
                            at_us: ctx.now.as_micros(),
                            site: ctx.self_id.raw(),
                            proto: self.proto,
                            vote: vote_name(*vote),
                            txn: Some(txn.raw()),
                        });
                    }
                    ctx.send(to, payload);
                }
                Action::Enforce { txn, outcome } => {
                    ctx.note("enforce", format!("{txn} {outcome}"));
                }
                Action::SetTimer {
                    token,
                    purpose,
                    attempt,
                } => {
                    if attempt > 0 {
                        // Genuine retry (the previous attempt fired
                        // without resolution): surface it in the event
                        // stream so campaigns can count how hard each
                        // protocol works to terminate under loss.
                        self.sink.record(&ProtocolEvent::RetryScheduled {
                            at_us: ctx.now.as_micros(),
                            site: ctx.self_id.raw(),
                            proto: self.proto,
                            purpose: purpose.name(),
                            attempt,
                            txn: None,
                        });
                    }
                    let harness_token = self.next_token;
                    self.next_token += 1;
                    self.timer_map
                        .insert(harness_token, HarnessTimer::Engine(token));
                    // Salt the retry jitter with the arming site and the
                    // engine's own token: two sites backing off from the
                    // same crash (or one site's distinct transactions)
                    // de-synchronize instead of re-colliding each round.
                    let salt = (u64::from(ctx.self_id.raw()) << 32) ^ token;
                    ctx.set_timer(
                        self.delays.delay_jittered(purpose, attempt, salt),
                        harness_token,
                    );
                }
                Action::Acta(event) => {
                    self.emit_acta(&event, ctx);
                    let (tag, detail) = note_for(&event);
                    ctx.note(tag, detail);
                    self.history.borrow_mut().push(event);
                }
                Action::Gc {
                    released_up_to,
                    records_released,
                } => {
                    let since_decision_us = self
                        .last_decision
                        .map(|d| (ctx.now - d).as_micros());
                    self.sink.record(&ProtocolEvent::LogGc {
                        at_us: ctx.now.as_micros(),
                        site: ctx.self_id.raw(),
                        proto: self.proto,
                        released_up_to,
                        records_released,
                        since_decision_us,
                    });
                }
            }
        }
    }

    /// Translate an ACTA event into the typed protocol-event stream.
    fn emit_acta(&mut self, event: &ActaEvent, ctx: &Context) {
        let at_us = ctx.now.as_micros();
        let site = ctx.self_id.raw();
        let proto = self.proto;
        match event {
            ActaEvent::LogWrite {
                txn, kind, forced, ..
            } => {
                let ev = if *forced {
                    ProtocolEvent::ForceWrite {
                        at_us,
                        site,
                        proto,
                        record: kind,
                        txn: Some(txn.raw()),
                    }
                } else {
                    ProtocolEvent::NonForcedWrite {
                        at_us,
                        site,
                        proto,
                        record: kind,
                        txn: Some(txn.raw()),
                    }
                };
                self.sink.record(&ev);
            }
            ActaEvent::Decide { txn, outcome, .. } => {
                self.last_decision = Some(ctx.now);
                self.sink.record(&ProtocolEvent::DecisionReached {
                    at_us,
                    site,
                    proto,
                    outcome: outcome_name(*outcome),
                    txn: Some(txn.raw()),
                });
            }
            ActaEvent::Inquire { txn, protocol, .. } => {
                self.sink.record(&ProtocolEvent::RecoveryStep {
                    at_us,
                    site,
                    proto,
                    detail: format!("inquire about {txn} ({protocol})"),
                });
            }
            ActaEvent::Respond {
                txn,
                outcome,
                by_presumption,
                ..
            } => {
                let how = if *by_presumption { " by presumption" } else { "" };
                self.sink.record(&ProtocolEvent::RecoveryStep {
                    at_us,
                    site,
                    proto,
                    detail: format!("answer inquiry {txn}: {outcome}{how}"),
                });
            }
            _ => {}
        }
    }
}

/// Stable lowercase name for a vote (event-stream vocabulary).
fn vote_name(vote: Vote) -> &'static str {
    match vote {
        Vote::Yes => "yes",
        Vote::No => "no",
        Vote::ReadOnly => "read-only",
    }
}

/// Stable lowercase name for an outcome (event-stream vocabulary).
fn outcome_name(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Commit => "commit",
        Outcome::Abort => "abort",
    }
}

/// Derive the machine-matchable trace tag for an ACTA event (the
/// figure experiments assert on these schedules).
fn note_for(event: &ActaEvent) -> (String, String) {
    match event {
        ActaEvent::LogWrite {
            txn, kind, forced, ..
        } => {
            let mode = if *forced { "force" } else { "write" };
            (format!("{mode}:{kind}"), txn.to_string())
        }
        ActaEvent::Decide { txn, outcome, .. } => (format!("decide:{outcome}"), txn.to_string()),
        ActaEvent::DeletePt { txn, .. } => ("forget".to_string(), txn.to_string()),
        ActaEvent::Respond {
            txn,
            outcome,
            by_presumption,
            ..
        } => {
            let suffix = if *by_presumption { ":presumed" } else { "" };
            (format!("respond:{outcome}{suffix}"), txn.to_string())
        }
        ActaEvent::Prepared { txn, .. } => ("prepared".to_string(), txn.to_string()),
        ActaEvent::Inquire { txn, protocol, .. } => {
            ("inquire".to_string(), format!("{txn} {protocol}"))
        }
        ActaEvent::Enforce { txn, outcome, .. } => (format!("enforce:{outcome}"), txn.to_string()),
        ActaEvent::ForgetPart { txn, .. } => ("forget-part".to_string(), txn.to_string()),
        ActaEvent::Crash { site } => ("crash".to_string(), site.to_string()),
        ActaEvent::Recover { site } => ("recover".to_string(), site.to_string()),
    }
}

impl Process for SiteProc {
    fn on_start(&mut self, ctx: &mut Context) {
        if let Inner::Coord { starts, .. } = &mut self.inner {
            let starts = std::mem::take(starts);
            for (at, txn, participants, abort_at) in starts {
                let start_key = self.next_token;
                self.next_token += 1;
                self.pending_starts
                    .insert(start_key, (at, txn, participants));
                let harness_token = self.next_token;
                self.next_token += 1;
                self.timer_map
                    .insert(harness_token, HarnessTimer::Start(start_key));
                ctx.set_timer(at, harness_token);
                if let Some(abort_at) = abort_at {
                    let abort_token = self.next_token;
                    self.next_token += 1;
                    self.timer_map
                        .insert(abort_token, HarnessTimer::ClientAbort(txn));
                    ctx.set_timer(abort_at, abort_token);
                }
            }
        }
    }

    fn on_message(&mut self, msg: &Message, ctx: &mut Context) {
        self.tick_log(ctx.now);
        let actions = match &mut self.inner {
            Inner::Coord { engine, .. } => engine.on_message(msg.from, &msg.payload),
            Inner::Part(p) => p.on_message(msg.from, &msg.payload),
        };
        self.handle_actions(actions, ctx);
        self.emit_closed_batches();
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        self.tick_log(ctx.now);
        let Some(entry) = self.timer_map.remove(&token) else {
            return;
        };
        let actions = match entry {
            HarnessTimer::Engine(engine_token) => match &mut self.inner {
                Inner::Coord { engine, .. } => engine.on_timer(engine_token),
                Inner::Part(p) => p.on_timer(engine_token),
            },
            HarnessTimer::Start(start_key) => {
                let Some((_, txn, participants)) = self.pending_starts.remove(&start_key) else {
                    return;
                };
                match &mut self.inner {
                    Inner::Coord { engine, .. } => engine.begin_commit(txn, &participants),
                    Inner::Part(_) => unreachable!("starts only live on the coordinator"),
                }
            }
            HarnessTimer::ClientAbort(txn) => match &mut self.inner {
                Inner::Coord { engine, .. } => engine.abort_request(txn),
                Inner::Part(_) => unreachable!("client aborts only live on the coordinator"),
            },
        };
        self.handle_actions(actions, ctx);
        self.emit_closed_batches();
    }

    fn on_crash(&mut self) {
        // Harness timer bookkeeping is volatile (pending_starts is not —
        // it models the clients).
        self.timer_map.clear();
        match &mut self.inner {
            Inner::Coord { engine, .. } => {
                self.history.borrow_mut().push(ActaEvent::Crash {
                    site: engine.site(),
                });
                engine.crash();
            }
            Inner::Part(p) => {
                self.history
                    .borrow_mut()
                    .push(ActaEvent::Crash { site: p.site() });
                p.crash();
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Context) {
        self.tick_log(ctx.now);
        let (site, actions) = match &mut self.inner {
            Inner::Coord { engine, .. } => (engine.site(), engine.recover()),
            Inner::Part(p) => (p.site(), p.recover()),
        };
        self.history.borrow_mut().push(ActaEvent::Recover { site });
        self.handle_actions(actions, ctx);
        self.emit_closed_batches();
        // Re-arm the surviving client requests: due ones fire now,
        // future ones at their original time.
        let keys: Vec<u64> = self.pending_starts.keys().copied().collect();
        for start_key in keys {
            let (at, _, _) = self.pending_starts[&start_key];
            let delay = at - ctx.now; // saturates at zero for missed starts
            let harness_token = self.next_token;
            self.next_token += 1;
            self.timer_map
                .insert(harness_token, HarnessTimer::Start(start_key));
            ctx.set_timer(delay, harness_token);
        }
    }
}

/// Run a scenario to quiescence and collect everything the checkers and
/// experiments need.
///
/// Equivalent to [`run_scenario_with_sink`] with a [`NullSink`]; the
/// full event stream is still collected into
/// [`ScenarioOutcome::events`].
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    run_scenario_with_sink(scenario, Arc::new(NullSink))
}

/// Run a scenario to quiescence, streaming every protocol event to
/// `sink` as it happens (in addition to collecting the stream into
/// [`ScenarioOutcome::events`]).
///
/// The sink sees log writes (forced and lazy), message sends/receives,
/// votes, decisions, garbage collections, crashes and recovery steps,
/// each labelled with the protocol variant of the emitting site.
#[must_use]
pub fn run_scenario_with_sink(scenario: &Scenario, sink: Arc<dyn TraceSink>) -> ScenarioOutcome {
    let history = Rc::new(RefCell::new(History::new()));
    let recorder = Arc::new(VecSink::new());
    let sink: Arc<dyn TraceSink> = Arc::new(FanoutSink::new(vec![
        Arc::clone(&recorder) as Arc<dyn TraceSink>,
        sink,
    ]));
    let mut world: World<SiteProc> = World::new(scenario.network, scenario.seed);
    world.set_sink(Arc::clone(&sink));

    // Coordinator at site 0.
    let coord_site = scenario.coordinator_site();
    let coord_label = ProtoLabel::of_coordinator(scenario.kind);
    world.set_label(coord_site, coord_label);
    let make_log = || match scenario.batch_window {
        None => GroupCommitLog::passthrough(MemLog::new()),
        Some(w) => GroupCommitLog::windowed(MemLog::new(), w),
    };
    let mut engine = Coordinator::new(coord_site, scenario.kind, make_log());
    for (i, &p) in scenario.participant_protocols.iter().enumerate() {
        engine.register_site(SiteId::new(i as u32 + 1), p);
    }
    let starts: Vec<(SimTime, TxnId, Vec<SiteId>, Option<SimTime>)> = scenario
        .txns
        .iter()
        .map(|t| (t.start_at, t.txn, t.participants.clone(), t.abort_at))
        .collect();
    world.add(
        coord_site,
        SiteProc {
            inner: Inner::Coord { engine, starts },
            history: Rc::clone(&history),
            delays: scenario.delays,
            sink: Arc::clone(&sink),
            proto: coord_label,
            last_decision: None,
            timer_map: BTreeMap::new(),
            pending_starts: BTreeMap::new(),
            next_token: 0,
        },
    );

    // Participants at sites 1..=n.
    for (i, &p) in scenario.participant_protocols.iter().enumerate() {
        let site = SiteId::new(i as u32 + 1);
        let label = ProtoLabel::of_participant(p);
        world.set_label(site, label);
        let mut engine = Participant::new(site, p, make_log());
        for spec in &scenario.txns {
            if let Some(&vote) = spec.votes.get(&site) {
                engine.set_intent(spec.txn, vote);
            }
        }
        world.add(
            site,
            SiteProc {
                inner: Inner::Part(engine),
                history: Rc::clone(&history),
                delays: scenario.delays,
                sink: Arc::clone(&sink),
                proto: label,
                last_decision: None,
                timer_map: BTreeMap::new(),
                pending_starts: BTreeMap::new(),
                next_token: 0,
            },
        );
    }

    scenario.failures.apply(&mut world);
    world.start();
    world.run_until_quiescent(scenario.max_events);

    // Seal any still-open batch windows (their events land after every
    // protocol event, which is when the batch would have been forced)
    // and aggregate the per-site group-commit accounting.
    let mut group_commit = GroupCommitStats::default();
    let mut all_sites = vec![coord_site];
    all_sites.extend(scenario.participant_sites());
    for site in all_sites {
        let stats = world.process_mut(site).finish_batches();
        group_commit.merge(&stats);
    }

    // ---- collect ----
    let mut final_state = FinalState::default();
    let mut enforced = BTreeMap::new();
    let mut decided = BTreeMap::new();
    let mut coordinator_costs = BTreeMap::new();
    let mut participant_costs = BTreeMap::new();

    let coord = world.process(coord_site).coordinator();
    for txn in coord.protocol_table_txns() {
        final_state.protocol_table.push((coord_site, txn));
    }
    for txn in coord.log_pinned() {
        final_state.log_pinned.push((coord_site, txn));
    }
    for spec in &scenario.txns {
        if let Some(o) = coord.decided(spec.txn) {
            decided.insert(spec.txn, o);
        }
        coordinator_costs.insert(spec.txn, coord.costs(spec.txn));
    }
    let coordinator_table_size = coord.protocol_table_size();
    let coordinator_log_retained = coord.log().inner().retained();
    let coordinator_log_retained_bytes = coord.log().inner().retained_bytes();

    for site in scenario.participant_sites() {
        let p = world.process(site).participant();
        for txn in p.log_pinned() {
            final_state.log_pinned.push((site, txn));
        }
        for (&txn, &o) in p.enforced_all() {
            enforced.insert((site, txn), o);
        }
        for spec in &scenario.txns {
            participant_costs.insert((site, spec.txn), p.costs(spec.txn));
        }
    }

    let history = history.borrow().clone();
    ScenarioOutcome {
        history,
        trace: world.trace().clone(),
        final_state,
        enforced,
        decided,
        coordinator_table_size,
        coordinator_log_retained,
        coordinator_log_retained_bytes,
        coordinator_costs,
        participant_costs,
        events_processed: world.events_processed(),
        events: recorder.take(),
        group_commit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_acta::{check_atomicity, check_operational};
    use acp_types::SelectionPolicy;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let d = TimerDelays::default();
        // Attempt 0 is the base delay.
        assert_eq!(
            d.delay(TimerPurpose::InquiryRetry, 0),
            SimTime::from_millis(30)
        );
        // Doubling per attempt...
        assert_eq!(
            d.delay(TimerPurpose::InquiryRetry, 1),
            SimTime::from_millis(60)
        );
        assert_eq!(
            d.delay(TimerPurpose::InquiryRetry, 3),
            SimTime::from_millis(240)
        );
        // ...until the cap.
        assert_eq!(
            d.delay(TimerPurpose::InquiryRetry, 5),
            SimTime::from_millis(500)
        );
        assert_eq!(
            d.delay(TimerPurpose::InquiryRetry, 40),
            SimTime::from_millis(500),
            "huge attempts saturate at max_backoff (no shift overflow)"
        );
        // A max_backoff below the base never shrinks the delay below it.
        let tight = TimerDelays {
            max_backoff: SimTime::from_millis(1),
            ..TimerDelays::default()
        };
        assert_eq!(
            tight.delay(TimerPurpose::AckResend, 0),
            SimTime::from_millis(20)
        );
    }

    /// The ISSUE's termination requirement: under 20% message loss every
    /// protocol population still drives every transaction to a decision
    /// on every site, within the bounded retry budget — the retries (and
    /// their backoff) are what make the lossy links eventually deliver.
    #[test]
    fn all_coordinator_kinds_terminate_under_message_loss() {
        use acp_types::SelectionPolicy as SP;
        let kinds = [
            CoordinatorKind::Single(ProtocolKind::PrN),
            CoordinatorKind::Single(ProtocolKind::PrA),
            CoordinatorKind::Single(ProtocolKind::PrC),
            CoordinatorKind::U2pc(ProtocolKind::PrA),
            CoordinatorKind::C2pc(ProtocolKind::PrN),
            CoordinatorKind::PrAny(SP::PaperStrict),
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let mut s = Scenario::new(kind, &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC]);
            s.network = NetworkConfig::lossy(0.2);
            s.seed = 42 + i as u64;
            s.add_txn(TxnId::new(1), SimTime::from_millis(1));
            let out = run_scenario(&s);
            let decided = out.decided.get(&TxnId::new(1)).copied();
            assert!(decided.is_some(), "{kind:?}: no decision under loss");
            // Every site that *prepared* must learn the decision (a site
            // whose prepare was lost never joined the transaction and
            // has nothing to enforce when the vote times out to abort).
            let prepared: Vec<SiteId> = out
                .history
                .events()
                .iter()
                .filter_map(|e| match e {
                    ActaEvent::Prepared { participant, .. } => Some(*participant),
                    _ => None,
                })
                .collect();
            for site in prepared {
                assert_eq!(
                    out.enforced.get(&(site, TxnId::new(1))).copied(),
                    decided,
                    "{kind:?}: {site} prepared but did not learn the decision under loss"
                );
            }
            // The run only terminates because retries are bounded *and*
            // backed off; it must quiesce well inside the event budget.
            assert!(out.events_processed < s.max_events);
        }
    }

    #[test]
    fn retries_surface_in_the_event_stream_under_loss() {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(acp_types::SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC],
        );
        s.network = NetworkConfig::lossy(0.35);
        s.seed = 7;
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        let out = run_scenario(&s);
        let retries: Vec<_> = out
            .events
            .iter()
            .filter_map(|e| match e {
                ProtocolEvent::RetryScheduled {
                    purpose, attempt, ..
                } => Some((*purpose, *attempt)),
                _ => None,
            })
            .collect();
        assert!(
            !retries.is_empty(),
            "35% loss must provoke at least one retry"
        );
        assert!(retries.iter().all(|(_, a)| *a >= 1), "{retries:?}");
    }

    #[test]
    fn clean_runs_emit_no_retry_events() {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(acp_types::SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        let out = run_scenario(&s);
        assert!(
            !out.events
                .iter()
                .any(|e| matches!(e, ProtocolEvent::RetryScheduled { .. })),
            "a loss-free run must not schedule retries (golden traces rely on this)"
        );
    }

    #[test]
    fn clean_prany_commit_is_operationally_correct() {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        let out = run_scenario(&s);
        assert_eq!(out.decided[&TxnId::new(1)], Outcome::Commit);
        assert_eq!(out.enforced.len(), 2);
        assert!(out.enforced.values().all(|o| *o == Outcome::Commit));
        assert!(check_atomicity(&out.history).is_empty());
        assert!(check_operational(&out.history, &out.final_state).is_empty());
        assert_eq!(out.coordinator_table_size, 0);
    }

    #[test]
    fn no_vote_aborts_everywhere() {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC],
        );
        s.add_txn_with_vote(
            TxnId::new(1),
            SimTime::from_millis(1),
            SiteId::new(2),
            Vote::No,
        );
        let out = run_scenario(&s);
        assert_eq!(out.decided[&TxnId::new(1)], Outcome::Abort);
        assert!(out.enforced.values().all(|o| *o == Outcome::Abort));
        assert!(check_atomicity(&out.history).is_empty());
        assert!(check_operational(&out.history, &out.final_state).is_empty());
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let run = || {
            let mut s = Scenario::new(
                CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                &[ProtocolKind::PrA, ProtocolKind::PrC],
            );
            s.network = NetworkConfig::lan();
            s.seed = 99;
            s.add_txn(TxnId::new(1), SimTime::from_millis(1));
            s.add_txn(TxnId::new(2), SimTime::from_millis(2));
            run_scenario(&s).trace.render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn participant_crash_recovers_via_inquiry() {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        // Crash the PrC participant right after it votes (≈1.5ms) and
        // bring it back later; it must learn the outcome by inquiry.
        s.failures = FailureSchedule::single(
            SiteId::new(2),
            SimTime::from_micros(1_500),
            SimTime::from_millis(200),
        );
        let out = run_scenario(&s);
        assert!(
            check_atomicity(&out.history).is_empty(),
            "{:?}",
            out.history.events()
        );
        assert!(
            check_operational(&out.history, &out.final_state).is_empty(),
            "{:?}",
            check_operational(&out.history, &out.final_state)
        );
        assert_eq!(out.enforced.len(), 2, "both participants enforced");
    }

    #[test]
    fn coordinator_crash_recovers_and_completes() {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrN, ProtocolKind::PrC],
        );
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        s.failures = FailureSchedule::single(
            SiteId::new(0),
            SimTime::from_micros(1_500),
            SimTime::from_millis(100),
        );
        let out = run_scenario(&s);
        assert!(check_atomicity(&out.history).is_empty());
        assert!(
            check_operational(&out.history, &out.final_state).is_empty(),
            "{:?}",
            check_operational(&out.history, &out.final_state)
        );
        assert_eq!(out.coordinator_table_size, 0);
    }
}
