//! Coordinator engine unit tests: one module per protocol variant, each
//! checking the exact schedules of the corresponding paper figure.

use super::*;
use crate::action::{acta_events, sent_payloads};
use acp_types::SelectionPolicy;
use acp_wal::MemLog;

fn coordinator(kind: CoordinatorKind, protos: &[ProtocolKind]) -> Coordinator<MemLog> {
    let mut c = Coordinator::new(SiteId::new(0), kind, MemLog::new());
    for (i, &p) in protos.iter().enumerate() {
        c.register_site(SiteId::new(i as u32 + 1), p);
    }
    c
}

fn sites(n: usize) -> Vec<SiteId> {
    (1..=n as u32).map(SiteId::new).collect()
}

fn t() -> TxnId {
    TxnId::new(1)
}

/// Deliver a Yes vote from site `s`.
fn yes(c: &mut Coordinator<MemLog>, s: u32) -> Vec<Action> {
    c.on_message(
        SiteId::new(s),
        &Payload::Vote {
            txn: t(),
            vote: Vote::Yes,
        },
    )
}

fn ack(c: &mut Coordinator<MemLog>, s: u32) -> Vec<Action> {
    c.on_message(SiteId::new(s), &Payload::Ack { txn: t() })
}

fn log_kinds(c: &Coordinator<MemLog>) -> Vec<(String, bool)> {
    c.log
        .all_records()
        .iter()
        .map(|r| (r.payload.kind_name().to_string(), r.forced))
        .collect()
}

fn decisions_sent(actions: &[Action]) -> Vec<(SiteId, Outcome)> {
    sent_payloads(actions)
        .into_iter()
        .filter_map(|(to, p)| match p {
            Payload::Decision { outcome, .. } => Some((to, outcome)),
            _ => None,
        })
        .collect()
}

mod prn {
    use super::*;

    #[test]
    fn commit_schedule_matches_figure_2() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; 2],
        );
        c.auto_gc = false;
        let a = c.begin_commit(t(), &sites(2));
        // No initiation record; two prepares.
        assert!(log_kinds(&c).is_empty());
        assert_eq!(sent_payloads(&a).len(), 2);

        yes(&mut c, 1);
        let a = yes(&mut c, 2);
        // Forced decision record, then decisions out.
        assert_eq!(log_kinds(&c), vec![("commit".to_string(), true)]);
        assert_eq!(decisions_sent(&a).len(), 2);
        assert_eq!(c.protocol_table_size(), 1);

        ack(&mut c, 1);
        let a = ack(&mut c, 2);
        // Non-forced end record, DeletePT.
        assert_eq!(
            log_kinds(&c),
            vec![("commit".to_string(), true), ("end".to_string(), false)]
        );
        assert!(acta_events(&a)
            .iter()
            .any(|e| matches!(e, ActaEvent::DeletePt { .. })));
        assert_eq!(c.protocol_table_size(), 0);
    }

    #[test]
    fn abort_also_forces_decision_and_awaits_all_acks() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; 2],
        );
        c.auto_gc = false;
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Vote {
                txn: t(),
                vote: Vote::No,
            },
        );
        assert_eq!(log_kinds(&c), vec![("abort".to_string(), true)]);
        // Abort goes only to the yes-voter; the No voter aborted itself.
        assert_eq!(decisions_sent(&a), vec![(SiteId::new(1), Outcome::Abort)]);
        ack(&mut c, 1);
        assert_eq!(c.protocol_table_size(), 0);
        assert_eq!(log_kinds(&c).last().unwrap().0, "end");
    }

    #[test]
    fn decision_record_carries_participants_for_recovery() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; 2],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        let recs = c.log.all_records();
        match &recs[0].payload {
            LogPayload::CoordDecision { participants, .. } => assert_eq!(participants.len(), 2),
            other => panic!("unexpected record {other}"),
        }
    }

    #[test]
    fn unknown_inquiry_answered_abort_by_hidden_presumption() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN],
        );
        let a = c.on_message(
            SiteId::new(1),
            &Payload::Inquiry {
                txn: TxnId::new(99),
                protocol: ProtocolKind::PrN,
            },
        );
        let sends = sent_payloads(&a);
        assert!(
            matches!(
                sends[0].1,
                Payload::InquiryResponse {
                    outcome: Outcome::Abort,
                    ..
                }
            ),
            "{sends:?}"
        );
        assert!(acta_events(&a).iter().any(|e| matches!(
            e,
            ActaEvent::Respond {
                by_presumption: true,
                ..
            }
        )));
    }

    #[test]
    fn vote_timeout_aborts() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; 2],
        );
        let a = c.begin_commit(t(), &sites(2));
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::VoteTimeout,
                    ..
                } => Some(*token),
                _ => None,
            })
            .unwrap();
        yes(&mut c, 1); // one vote arrives; the other never does
        let a = c.on_timer(token);
        assert_eq!(c.decided(t()), Some(Outcome::Abort));
        // Both the yes-voter and the silent participant get the abort
        // (the silent one may be prepared with its vote lost in flight).
        assert_eq!(decisions_sent(&a).len(), 2);
    }

    #[test]
    fn crash_during_voting_leaves_no_trace_and_presumes_abort() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; 2],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        c.crash();
        let a = c.recover();
        assert!(a.is_empty(), "no stable records → nothing to recover");
        assert_eq!(c.protocol_table_size(), 0);
        // Prepared participant inquires; hidden presumption answers abort.
        let a = c.on_message(
            SiteId::new(1),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrN,
            },
        );
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::InquiryResponse {
                outcome: Outcome::Abort,
                ..
            }
        ));
    }

    #[test]
    fn crash_after_decision_resends_recorded_decision() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; 2],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        ack(&mut c, 1); // one ack in; crash before the second
        c.crash();
        let a = c.recover();
        // Decision re-sent to all recorded participants (the acked one
        // answers again per footnote 5).
        let resent = decisions_sent(&a);
        assert_eq!(resent.len(), 2);
        assert!(resent.iter().all(|(_, o)| *o == Outcome::Commit));
        assert_eq!(c.protocol_table_size(), 1);
        ack(&mut c, 1);
        ack(&mut c, 2);
        assert_eq!(c.protocol_table_size(), 0);
    }
}

mod pra {
    use super::*;

    #[test]
    fn abort_leaves_no_log_records_and_forgets_immediately() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrA),
            &[ProtocolKind::PrA; 2],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Vote {
                txn: t(),
                vote: Vote::No,
            },
        );
        assert!(
            log_kinds(&c).is_empty(),
            "PrA coordinators never log aborts"
        );
        assert_eq!(decisions_sent(&a), vec![(SiteId::new(1), Outcome::Abort)]);
        assert_eq!(
            c.protocol_table_size(),
            0,
            "forgotten without waiting for acks"
        );
    }

    #[test]
    fn commit_schedule_matches_figure_3_commit_side() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrA),
            &[ProtocolKind::PrA; 2],
        );
        c.auto_gc = false;
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        assert_eq!(log_kinds(&c), vec![("commit".to_string(), true)]);
        ack(&mut c, 1);
        ack(&mut c, 2);
        assert_eq!(log_kinds(&c).last().unwrap().0, "end");
        assert_eq!(c.protocol_table_size(), 0);
    }

    #[test]
    fn crash_after_abort_never_resubmits() {
        // Footnote 4: a PrA coordinator has no recollection of aborted
        // transactions after a failure.
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrA),
            &[ProtocolKind::PrA; 2],
        );
        c.begin_commit(t(), &sites(2));
        c.on_message(
            SiteId::new(1),
            &Payload::Vote {
                txn: t(),
                vote: Vote::No,
            },
        );
        c.crash();
        assert!(c.recover().is_empty());
    }

    #[test]
    fn recovered_decisions_are_always_commit() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrA),
            &[ProtocolKind::PrA; 2],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        c.crash();
        let a = c.recover();
        let resent = decisions_sent(&a);
        assert_eq!(resent.len(), 2);
        assert!(resent.iter().all(|(_, o)| *o == Outcome::Commit));
    }
}

mod prc {
    use super::*;

    fn prc() -> Coordinator<MemLog> {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrC),
            &[ProtocolKind::PrC; 2],
        );
        c.auto_gc = false;
        c
    }

    #[test]
    fn commit_schedule_matches_figure_4a() {
        let mut c = prc();
        c.begin_commit(t(), &sites(2));
        assert_eq!(log_kinds(&c), vec![("initiation".to_string(), true)]);
        yes(&mut c, 1);
        yes(&mut c, 2);
        // Forced commit record; no acks expected; forgotten at once. The
        // lazy end record is an implementation GC marker (documented in
        // DESIGN.md).
        assert_eq!(
            log_kinds(&c),
            vec![
                ("initiation".to_string(), true),
                ("commit".to_string(), true),
                ("end".to_string(), false),
            ]
        );
        assert_eq!(c.protocol_table_size(), 0);
    }

    #[test]
    fn abort_schedule_matches_figure_4b() {
        let mut c = prc();
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Vote {
                txn: t(),
                vote: Vote::No,
            },
        );
        // No abort decision record — the initiation record carries the
        // abort across failures.
        assert_eq!(log_kinds(&c), vec![("initiation".to_string(), true)]);
        assert_eq!(decisions_sent(&a), vec![(SiteId::new(1), Outcome::Abort)]);
        assert_eq!(c.protocol_table_size(), 1, "waits for abort acks");
        ack(&mut c, 1);
        assert_eq!(c.protocol_table_size(), 0);
        assert_eq!(log_kinds(&c).last().unwrap().0, "end");
    }

    #[test]
    fn unknown_inquiry_answered_commit_by_presumption() {
        let mut c = prc();
        let a = c.on_message(
            SiteId::new(1),
            &Payload::Inquiry {
                txn: TxnId::new(42),
                protocol: ProtocolKind::PrC,
            },
        );
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::InquiryResponse {
                outcome: Outcome::Commit,
                ..
            }
        ));
    }

    #[test]
    fn crash_with_initiation_but_no_commit_aborts_on_recovery() {
        let mut c = prc();
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        c.crash();
        let a = c.recover();
        assert_eq!(c.decided(t()), Some(Outcome::Abort));
        let resent = decisions_sent(&a);
        assert_eq!(resent.len(), 2);
        assert!(resent.iter().all(|(_, o)| *o == Outcome::Abort));
    }

    #[test]
    fn crash_after_commit_record_does_not_resend() {
        // "A coordinator in PrC never re-submits commit decisions …"
        let mut c = prc();
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        c.crash(); // the lazy end record is lost, initiation+commit survive
        let a = c.recover();
        assert!(decisions_sent(&a).is_empty());
        // But the end record is re-written so the log can be reclaimed.
        assert_eq!(log_kinds(&c).last().unwrap().0, "end");
        assert_eq!(c.protocol_table_size(), 0);
    }
}

mod u2pc {
    use super::*;

    /// Theorem 1, Part III: the motivating example of §2. Coordinator
    /// and one participant run PrC, the other participant runs PrA; an
    /// aborted transaction is forgotten after the PrC participant's ack,
    /// and the PrA participant's later inquiry is answered with the
    /// wrong (commit) presumption.
    #[test]
    fn part_iii_abort_forgotten_then_wrong_commit_presumption() {
        let mut c = coordinator(
            CoordinatorKind::U2pc(ProtocolKind::PrC),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        // All voted yes but the coordinator times out? No — drive an
        // explicit abort via a No re-vote is impossible after commit.
        // Instead abort by vote timeout before the second vote:
        let mut c = coordinator(
            CoordinatorKind::U2pc(ProtocolKind::PrC),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        let a = c.begin_commit(t(), &sites(2));
        yes(&mut c, 1); // PrA participant is prepared
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::VoteTimeout,
                    ..
                } => Some(*token),
                _ => None,
            })
            .unwrap();
        c.on_timer(token); // abort decided; decisions sent to both
        assert_eq!(c.decided(t()), Some(Outcome::Abort));
        // Only the PrC participant acks aborts; U2PC waits only for it.
        ack(&mut c, 2);
        assert_eq!(c.protocol_table_size(), 0, "forgotten after PrC ack only");

        // The PrA participant (which never received the abort) inquires…
        let a = c.on_message(
            SiteId::new(1),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrA,
            },
        );
        // …and is answered with the coordinator's own PrC presumption:
        // COMMIT, violating atomicity.
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::InquiryResponse {
                outcome: Outcome::Commit,
                ..
            }
        ));
    }

    /// Theorem 1, Part I: PrN coordinator, committed transaction
    /// forgotten after the PrA participant's ack; the crashed PrC
    /// participant's inquiry is answered with the hidden abort
    /// presumption.
    #[test]
    fn part_i_commit_forgotten_then_wrong_abort_presumption() {
        let mut c = coordinator(
            CoordinatorKind::U2pc(ProtocolKind::PrN),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        assert_eq!(c.decided(t()), Some(Outcome::Commit));
        ack(&mut c, 1); // PrA acks; PrC never acks commits
        assert_eq!(c.protocol_table_size(), 0, "forgotten after PrA ack only");

        let a = c.on_message(
            SiteId::new(2),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrC,
            },
        );
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::InquiryResponse {
                outcome: Outcome::Abort,
                ..
            }
        ));
    }

    /// Theorem 1, Part II: same as Part I but with a PrA coordinator —
    /// the explicit abort presumption gives the same wrong answer.
    #[test]
    fn part_ii_commit_forgotten_then_wrong_abort_presumption() {
        let mut c = coordinator(
            CoordinatorKind::U2pc(ProtocolKind::PrA),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        ack(&mut c, 1);
        assert_eq!(c.protocol_table_size(), 0);
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrC,
            },
        );
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::InquiryResponse {
                outcome: Outcome::Abort,
                ..
            }
        ));
    }
}

mod c2pc {
    use super::*;

    /// Theorem 2: with a PrC participant in a committed transaction, the
    /// expected-ack set never drains, the end record is never written,
    /// and the protocol table entry lives forever.
    #[test]
    fn commit_with_prc_participant_is_remembered_forever() {
        let mut c = coordinator(
            CoordinatorKind::C2pc(ProtocolKind::PrN),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        ack(&mut c, 1); // PrA acks; PrC never will
        assert_eq!(c.protocol_table_size(), 1, "still waiting for the PrC ack");
        assert!(c.log_pinned().contains(&t()), "no end record: log pinned");
    }

    #[test]
    fn abort_with_pra_participant_is_remembered_forever() {
        let mut c = coordinator(
            CoordinatorKind::C2pc(ProtocolKind::PrC),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        c.on_message(
            SiteId::new(2),
            &Payload::Vote {
                txn: t(),
                vote: Vote::No,
            },
        );
        // C2PC force-logs the abort (it must always remember).
        assert!(log_kinds(&c).iter().any(|(k, f)| k == "abort" && *f));
        // Only the PrA yes-voter gets the decision; it never acks aborts.
        assert_eq!(c.protocol_table_size(), 1);
    }

    #[test]
    fn inquiries_answered_from_log_never_by_presumption() {
        let mut c = coordinator(
            CoordinatorKind::C2pc(ProtocolKind::PrN),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        // Keep the log: C2PC's answer-from-log depends on the decision
        // record still being present (once every ack arrived nobody is
        // left to inquire, so reclaiming would be safe — but this test
        // inquires artificially).
        c.auto_gc = false;
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        c.crash();
        c.recover();
        // Even though the table was rebuilt, simulate a direct unknown
        // lookup: inquire about a *different* committed transaction to
        // force the log path — here just drop the table entry by acking
        // everyone.
        ack(&mut c, 1);
        ack(&mut c, 2);
        assert_eq!(c.protocol_table_size(), 0);
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrC,
            },
        );
        let events = acta_events(&a);
        match &events[0] {
            ActaEvent::Respond {
                outcome,
                by_presumption,
                ..
            } => {
                assert_eq!(*outcome, Outcome::Commit);
                assert!(!by_presumption, "answered from the log");
            }
            other => panic!("unexpected event {other}"),
        }
    }
}

mod prany {
    use super::*;

    fn prany(protos: &[ProtocolKind]) -> Coordinator<MemLog> {
        let mut c = coordinator(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), protos);
        c.auto_gc = false;
        c
    }

    /// Figure 1 (a): commit case with a PrA and a PrC participant.
    #[test]
    fn commit_schedule_matches_figure_1a() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        c.begin_commit(t(), &sites(2));
        // Forced initiation record including the participants' protocols.
        let recs = c.log.all_records();
        match &recs[0].payload {
            LogPayload::Initiation {
                participants, mode, ..
            } => {
                assert_eq!(*mode, acp_types::CommitMode::PrAny);
                assert_eq!(participants[0].protocol, ProtocolKind::PrA);
                assert_eq!(participants[1].protocol, ProtocolKind::PrC);
            }
            other => panic!("unexpected record {other}"),
        }
        yes(&mut c, 1);
        yes(&mut c, 2);
        assert_eq!(
            log_kinds(&c),
            vec![
                ("initiation".to_string(), true),
                ("commit".to_string(), true)
            ]
        );
        // Only the PrA participant is expected to ack the commit.
        assert_eq!(c.protocol_table_size(), 1);
        ack(&mut c, 1);
        assert_eq!(c.protocol_table_size(), 0);
        assert_eq!(log_kinds(&c).last().unwrap().0, "end");
    }

    /// Figure 1 (b): abort case — no decision record, PrC ack awaited.
    #[test]
    fn abort_schedule_matches_figure_1b() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        c.on_message(
            SiteId::new(2),
            &Payload::Vote {
                txn: t(),
                vote: Vote::No,
            },
        );
        // No abort decision record; the lazy end is the GC marker for
        // the initiation record.
        assert_eq!(
            log_kinds(&c),
            vec![("initiation".to_string(), true), ("end".to_string(), false)]
        );
        // The PrC participant voted No (unilateral abort) so only the
        // PrA participant got the decision — and PrA never acks aborts:
        // the coordinator can forget at once.
        assert_eq!(c.protocol_table_size(), 0);

        // Same population, abort by timeout with both prepared:
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        let a = c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        // Rebuild: both yes ⇒ commit. Need abort with both prepared —
        // use a fresh txn where votes stall and the timer fires.
        let _ = a;
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        let a = c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::VoteTimeout,
                    ..
                } => Some(*token),
                _ => None,
            })
            .unwrap();
        let a = c.on_timer(token);
        assert_eq!(decisions_sent(&a).len(), 2, "abort sent to both");
        assert_eq!(c.protocol_table_size(), 1, "awaiting the PrC ack only");
        ack(&mut c, 2);
        assert_eq!(c.protocol_table_size(), 0);
        assert_eq!(log_kinds(&c).last().unwrap().0, "end");
    }

    /// §4.2: inquiries about forgotten transactions adopt the
    /// *inquirer's* presumption.
    #[test]
    fn forgotten_commit_inquiry_by_prc_answered_commit() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        ack(&mut c, 1); // forgotten now
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrC,
            },
        );
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::InquiryResponse {
                outcome: Outcome::Commit,
                ..
            }
        ));
    }

    #[test]
    fn forgotten_abort_inquiry_by_pra_answered_abort() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        let a = c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::VoteTimeout,
                    ..
                } => Some(*token),
                _ => None,
            })
            .unwrap();
        c.on_timer(token); // abort
        ack(&mut c, 2); // PrC acks; forgotten
        assert_eq!(c.protocol_table_size(), 0);
        let a = c.on_message(
            SiteId::new(1),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrA,
            },
        );
        assert!(matches!(
            sent_payloads(&a)[0].1,
            Payload::InquiryResponse {
                outcome: Outcome::Abort,
                ..
            }
        ));
    }

    /// §4.2 recovery: initiation + commit record ⇒ commit re-sent to PrN
    /// and PrA participants but not PrC.
    #[test]
    fn recovery_resends_commit_to_prn_and_pra_only() {
        let mut c = prany(&[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC]);
        c.begin_commit(t(), &sites(3));
        yes(&mut c, 1);
        yes(&mut c, 2);
        yes(&mut c, 3);
        c.crash();
        let a = c.recover();
        let resent = decisions_sent(&a);
        let targets: Vec<u32> = resent.iter().map(|(s, _)| s.raw()).collect();
        assert_eq!(targets, vec![1, 2], "PrC participant (site 3) excluded");
        assert!(resent.iter().all(|(_, o)| *o == Outcome::Commit));
    }

    /// §4.2 recovery: initiation only ⇒ abort re-sent to PrN and PrC
    /// participants but not PrA (footnote 4).
    #[test]
    fn recovery_resends_abort_to_prn_and_prc_only() {
        let mut c = prany(&[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC]);
        c.begin_commit(t(), &sites(3));
        yes(&mut c, 1); // crash before all votes: no commit record
        c.crash();
        let a = c.recover();
        let resent = decisions_sent(&a);
        let targets: Vec<u32> = resent.iter().map(|(s, _)| s.raw()).collect();
        assert_eq!(targets, vec![1, 3], "PrA participant (site 2) excluded");
        assert!(resent.iter().all(|(_, o)| *o == Outcome::Abort));
        assert_eq!(c.decided(t()), Some(Outcome::Abort));
    }

    /// Homogeneous populations run the native protocol (§4.1).
    #[test]
    fn homogeneous_population_uses_native_mode() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrA]);
        c.begin_commit(t(), &sites(2));
        assert!(log_kinds(&c).is_empty(), "PrA mode: no initiation record");
        assert_eq!(c.mode_for(&sites(2)), acp_types::CommitMode::PrA);
    }

    /// The read-only optimization: read-only voters drop out; an
    /// all-read-only transaction has no decision phase at all.
    #[test]
    fn all_read_only_transaction_skips_phase_two() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        c.begin_commit(t(), &sites(2));
        c.on_message(
            SiteId::new(1),
            &Payload::Vote {
                txn: t(),
                vote: Vote::ReadOnly,
            },
        );
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Vote {
                txn: t(),
                vote: Vote::ReadOnly,
            },
        );
        assert!(decisions_sent(&a).is_empty(), "no decision messages");
        assert_eq!(c.decided(t()), Some(Outcome::Commit));
        assert_eq!(c.protocol_table_size(), 0);
        // Initiation record still needs its end marker for GC.
        assert_eq!(log_kinds(&c).last().unwrap().0, "end");
        assert!(
            !log_kinds(&c).iter().any(|(k, _)| k == "commit"),
            "no commit record"
        );
    }

    #[test]
    fn mixed_read_only_commit_notifies_update_participants_only() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        c.begin_commit(t(), &sites(2));
        c.on_message(
            SiteId::new(1),
            &Payload::Vote {
                txn: t(),
                vote: Vote::ReadOnly,
            },
        );
        let a = yes(&mut c, 2);
        assert_eq!(decisions_sent(&a), vec![(SiteId::new(2), Outcome::Commit)]);
        // PrC participant doesn't ack commits ⇒ forgotten immediately.
        assert_eq!(c.protocol_table_size(), 0);
    }

    /// Late vote after the coordinator forgot: ignored. The prepared
    /// voter resolves through its own inquiry, which carries its
    /// protocol and is answered by the correct presumption (§4.2) —
    /// answering the *vote* by presumption would be unsafe, since a vote
    /// does not identify which presumption may still hold.
    #[test]
    fn late_yes_vote_after_forget_is_ignored() {
        let mut c = prany(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        let a = c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::SetTimer {
                    token,
                    purpose: TimerPurpose::VoteTimeout,
                    ..
                } => Some(*token),
                _ => None,
            })
            .unwrap();
        c.on_timer(token); // abort; PrC (site 2) never voted
        ack(&mut c, 2); // site 2 acked per footnote 5 (it got the abort)
        assert_eq!(c.protocol_table_size(), 0);
        // Site 2's much-delayed Yes vote arrives after the forget.
        let a = yes(&mut c, 2);
        assert!(decisions_sent(&a).is_empty());
        // Its inquiry, however, is answered — with *its* presumption.
        let a = c.on_message(
            SiteId::new(2),
            &Payload::Inquiry {
                txn: t(),
                protocol: ProtocolKind::PrC,
            },
        );
        assert_eq!(sent_payloads(&a).len(), 1);
    }

    #[test]
    fn gc_reclaims_completed_transactions_automatically() {
        let mut c = coordinator(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        assert!(c.auto_gc);
        for i in 0..5 {
            let txn = TxnId::new(i);
            c.begin_commit(txn, &sites(2));
            c.on_message(
                SiteId::new(1),
                &Payload::Vote {
                    txn,
                    vote: Vote::Yes,
                },
            );
            c.on_message(
                SiteId::new(2),
                &Payload::Vote {
                    txn,
                    vote: Vote::Yes,
                },
            );
            c.on_message(SiteId::new(1), &Payload::Ack { txn });
        }
        assert!(c.log_pinned().is_empty());
        // Everything before the last lazy end record is reclaimable; the
        // log retains at most the unforced tail.
        assert!(
            c.log.retained() <= 1,
            "retained {} records",
            c.log.retained()
        );
    }
}

mod cost_accounting {
    use super::*;

    #[test]
    fn prn_commit_costs() {
        let mut c = coordinator(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; 3],
        );
        c.begin_commit(t(), &sites(3));
        for s in 1..=3 {
            yes(&mut c, s);
        }
        for s in 1..=3 {
            ack(&mut c, s);
        }
        let costs = c.costs(t());
        assert_eq!(costs.forced_writes, 1); // decision
        assert_eq!(costs.log_records, 2); // + end
        assert_eq!(costs.prepares, 3);
        assert_eq!(costs.decisions, 3);
    }

    #[test]
    fn prany_commit_costs() {
        let mut c = coordinator(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2));
        yes(&mut c, 1);
        yes(&mut c, 2);
        ack(&mut c, 1);
        let costs = c.costs(t());
        assert_eq!(costs.forced_writes, 2); // initiation + commit
        assert_eq!(costs.log_records, 3); // + end
        assert_eq!(costs.messages(), 2 + 2); // prepares + decisions (votes/acks counted at senders)
    }
}

mod pcp {
    use super::*;
    use acp_types::SelectionPolicy;

    #[test]
    fn join_leave_lifecycle() {
        let mut c = coordinator(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &[]);
        c.register_site(SiteId::new(1), ProtocolKind::PrA);
        c.register_site(SiteId::new(2), ProtocolKind::PrC);
        assert_eq!(c.site_protocol(SiteId::new(1)), Some(ProtocolKind::PrA));
        c.unregister_site(SiteId::new(2)).unwrap();
        assert_eq!(c.site_protocol(SiteId::new(2)), None);
    }

    #[test]
    fn leave_refused_while_in_flight() {
        let mut c = coordinator(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2));
        let err = c.unregister_site(SiteId::new(1)).unwrap_err();
        assert!(err.to_string().contains("in-flight"));
        // After the transaction completes, leaving is fine.
        yes(&mut c, 1);
        yes(&mut c, 2);
        ack(&mut c, 1);
        c.unregister_site(SiteId::new(1)).unwrap();
    }

    #[test]
    fn protocol_upgrade_applies_to_future_transactions_only() {
        // Site 1 upgrades PrA → PrC between transactions; recovery of the
        // old transaction must honor the protocols *recorded* in the
        // initiation record, not the new PCP.
        let mut c = coordinator(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        c.begin_commit(t(), &sites(2)); // initiation records PrA for site 1
        yes(&mut c, 1);
        c.register_site(SiteId::new(1), ProtocolKind::PrC); // upgrade
        c.crash();
        let a = c.recover();
        // §4.2 abort path: re-sent only to PrN and PrC participants of
        // record — site 1 was *recorded* as PrA, so only site 2 is
        // notified, despite the PCP now calling site 1 a PrC site.
        let targets: Vec<u32> = decisions_sent(&a).iter().map(|(s, _)| s.raw()).collect();
        assert_eq!(targets, vec![2]);

        // A *new* transaction uses the upgraded protocol: homogeneous
        // PrC population now.
        assert_eq!(c.mode_for(&sites(2)), acp_types::CommitMode::PrC);
    }
}
