//! The coordinator engine.
//!
//! One engine executes every coordinator variant in the paper; the
//! differences between PrN, PrA, PrC, U2PC, C2PC and PrAny are entirely
//! contained in the per-transaction [`plan::CommitPlan`]. The engine
//! owns the participants' commit protocol (PCP) table — "a coordinator
//! records the 2PC protocol employed by each participant in a table
//! called participants' commit protocol (PCP) … kept on stable storage"
//! (§4) — a volatile protocol table, and the stable log.

pub mod plan;
pub mod recovery;
pub mod select;
pub mod table;

use crate::action::{Action, TimerPurpose};
use plan::{CommitPlan, InquiryRule};
use table::ShardedTable;

use acp_acta::ActaEvent;
use acp_types::{
    CoordinatorKind, CostCounters, LogPayload, Outcome, ParticipantEntry, Payload, ProtocolKind,
    SiteId, TxnId, Vote,
};
use acp_wal::{GcTracker, StableLog};
use std::collections::{BTreeMap, BTreeSet};

/// Maximum decision re-sends before the coordinator stops actively
/// retrying (it keeps the table entry — C2PC's "remember forever" is
/// about state, not about spamming the network; the bound also
/// guarantees simulated runs quiesce).
pub const MAX_DECISION_RESENDS: u32 = 16;

/// Volatile per-transaction coordinator state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Phase {
    /// Collecting votes.
    Voting {
        /// Votes received so far.
        votes: BTreeMap<SiteId, Vote>,
    },
    /// Decision made; awaiting acknowledgments.
    Deciding {
        /// The decision.
        outcome: Outcome,
        /// Sites whose acknowledgment is still outstanding.
        pending: BTreeSet<SiteId>,
        /// Re-send attempts so far.
        resends: u32,
    },
}

/// A protocol-table entry.
#[derive(Clone, Debug)]
pub(crate) struct TxnState {
    pub(crate) participants: Vec<ParticipantEntry>,
    pub(crate) plan: CommitPlan,
    pub(crate) phase: Phase,
    /// Whether any log record was written for this transaction (decides
    /// whether an end record is due at completion).
    pub(crate) logged_any: bool,
}

/// The coordinator engine. See module docs.
///
/// # Example
///
/// Drive one PrAny commit over a mixed PrA + PrC population by hand
/// (the `harness` module does this inside the simulator; the engine is
/// sans-IO, so it can be driven from anything):
///
/// ```
/// use acp_core::coordinator::Coordinator;
/// use acp_types::{
///     CoordinatorKind, Outcome, Payload, ProtocolKind, SelectionPolicy, SiteId, TxnId, Vote,
/// };
/// use acp_wal::MemLog;
///
/// let mut c = Coordinator::new(
///     SiteId::new(0),
///     CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
///     MemLog::new(),
/// );
/// c.register_site(SiteId::new(1), ProtocolKind::PrA);
/// c.register_site(SiteId::new(2), ProtocolKind::PrC);
///
/// let txn = TxnId::new(1);
/// let actions = c.begin_commit(txn, &[SiteId::new(1), SiteId::new(2)]);
/// assert!(!actions.is_empty()); // initiation force + prepares + vote timer
///
/// c.on_message(SiteId::new(1), &Payload::Vote { txn, vote: Vote::Yes });
/// c.on_message(SiteId::new(2), &Payload::Vote { txn, vote: Vote::Yes });
/// assert_eq!(c.decided(txn), Some(Outcome::Commit));
///
/// // Only the PrA participant acknowledges commits; its ack completes
/// // the protocol and the coordinator forgets the transaction.
/// c.on_message(SiteId::new(1), &Payload::Ack { txn });
/// assert_eq!(c.protocol_table_size(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Coordinator<L: StableLog> {
    pub(crate) site: SiteId,
    pub(crate) kind: CoordinatorKind,
    pub(crate) log: L,
    /// Participants' commit protocols (PCP). Conceptually on stable
    /// storage, updated only when sites join/leave — so it survives
    /// crashes.
    pub(crate) pcp: BTreeMap<SiteId, ProtocolKind>,
    /// The volatile protocol table (cleared on crash, rebuilt by §4.2
    /// log analysis), sharded by transaction id so one coordinator can
    /// drive thousands of concurrent transactions without a single-map
    /// contention point.
    pub(crate) table: ShardedTable<TxnState>,
    pub(crate) gc: GcTracker,
    pub(crate) timers: BTreeMap<u64, (TxnId, TimerPurpose)>,
    pub(crate) next_token: u64,
    /// When set, timers made obsolete by protocol progress (a vote
    /// timeout once the decision is fixed, ack re-sends once the
    /// transaction finishes) are retired eagerly and their tokens
    /// buffered for [`Coordinator::take_cancelled_timers`]. Off by
    /// default: the simulator and model checker keep the historical
    /// lazy-expiry behaviour (stale tokens are ignored when they fire),
    /// so their state spaces and traces are untouched.
    track_cancellations: bool,
    /// Retired timer tokens not yet drained by the host.
    cancelled: Vec<u64>,
    /// Observational: decisions ever made (survives crash; used by tests
    /// and checkers, never consulted by the protocol itself).
    pub(crate) decisions: BTreeMap<TxnId, Outcome>,
    /// Observational cost accounting per transaction.
    pub(crate) costs: BTreeMap<TxnId, CostCounters>,
    /// Truncate the log automatically whenever the releasable prefix
    /// grows (on by default).
    pub auto_gc: bool,
}

impl<L: StableLog> Coordinator<L> {
    /// Create a coordinator of the given kind.
    pub fn new(site: SiteId, kind: CoordinatorKind, log: L) -> Self {
        Coordinator {
            site,
            kind,
            log,
            pcp: BTreeMap::new(),
            table: ShardedTable::new(),
            gc: GcTracker::new(),
            timers: BTreeMap::new(),
            next_token: 0,
            track_cancellations: false,
            cancelled: Vec::new(),
            decisions: BTreeMap::new(),
            costs: BTreeMap::new(),
            auto_gc: true,
        }
    }

    /// Register a participant site's protocol in the PCP table ("the
    /// PCP is kept on stable storage and is updated when a new site
    /// joins or leaves the distributed environment", §4). Re-registering
    /// an existing site changes its protocol for *future* transactions;
    /// in-flight and recovered transactions keep the protocols recorded
    /// in their initiation/decision records.
    pub fn register_site(&mut self, site: SiteId, protocol: ProtocolKind) {
        self.pcp.insert(site, protocol);
    }

    /// Remove a departed site from the PCP. Refused while the site still
    /// participates in an in-flight transaction — the paper's model has
    /// sites leave the *environment*, not abscond mid-protocol.
    pub fn unregister_site(&mut self, site: SiteId) -> Result<(), acp_types::ProtocolViolation> {
        if let Some(txn) = self
            .table
            .find(|_, state| state.participants.iter().any(|p| p.site == site))
        {
            return Err(acp_types::ProtocolViolation::new(
                self.site,
                Some(txn),
                format!("{site} still participates in an in-flight transaction"),
            ));
        }
        self.pcp.remove(&site);
        Ok(())
    }

    /// The registered protocol of a site, if known.
    #[must_use]
    pub fn site_protocol(&self, site: SiteId) -> Option<ProtocolKind> {
        self.pcp.get(&site).copied()
    }

    /// This coordinator's site id.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The coordinator variant this engine runs.
    #[must_use]
    pub fn kind(&self) -> CoordinatorKind {
        self.kind
    }

    /// Number of transactions currently in the protocol table.
    #[must_use]
    pub fn protocol_table_size(&self) -> usize {
        self.table.len()
    }

    /// Re-shard the (empty) protocol table to `n_shards` locks. Hosts
    /// that partition coordinator work — the multi-reactor runtime —
    /// call this at spawn so table sharding can be sized to the
    /// partition. Panics if the table already holds transactions:
    /// re-sharding would silently reassign their lock ownership.
    pub fn set_table_shards(&mut self, n_shards: usize) {
        assert!(
            self.table.is_empty(),
            "cannot re-shard a non-empty protocol table"
        );
        self.table = ShardedTable::with_shards(n_shards);
    }

    /// Per-shard occupancy of the protocol table (lock-free sample).
    #[must_use]
    pub fn table_shard_occupancy(&self) -> Vec<usize> {
        self.table.shard_occupancy()
    }

    /// Largest single-shard occupancy of the protocol table right now
    /// (lock-free). Reactor hosts feed this into the metrics
    /// registry's `table_peak_shard_occupancy` high-water mark.
    #[must_use]
    pub fn table_peak_shard_occupancy(&self) -> usize {
        self.table.max_shard_len()
    }

    /// Transactions currently in the protocol table.
    #[must_use]
    pub fn protocol_table_txns(&self) -> Vec<TxnId> {
        self.table.keys_sorted()
    }

    /// Is `txn` currently in the protocol table? O(shard) — use this
    /// instead of `protocol_table_txns().contains(..)`, which clones
    /// every key.
    #[must_use]
    pub fn in_flight(&self, txn: TxnId) -> bool {
        self.table.contains(txn)
    }

    /// Enable (or disable) eager timer retirement: with tracking on,
    /// timers that protocol progress makes obsolete are removed from
    /// the engine's live set immediately and surfaced through
    /// [`Coordinator::take_cancelled_timers`], so hosts with a real
    /// timer wheel (the reactor) can cancel the wheel entries instead
    /// of letting them fire into a no-op. Default off — see the field
    /// docs for why the simulator and checker stay on lazy expiry.
    pub fn set_track_cancellations(&mut self, on: bool) {
        self.track_cancellations = on;
    }

    /// Drain the timer tokens retired since the last call (empty unless
    /// [`Coordinator::set_track_cancellations`] enabled tracking).
    pub fn take_cancelled_timers(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.cancelled)
    }

    /// Retire live timers of `txn` matching `pred`, recording their
    /// tokens for the host. No-op unless tracking is enabled.
    fn retire_timers(&mut self, txn: TxnId, pred: impl Fn(TimerPurpose) -> bool) {
        if !self.track_cancellations {
            return;
        }
        let tokens: Vec<u64> = self
            .timers
            .iter()
            .filter(|(_, (t, p))| *t == txn && pred(*p))
            .map(|(tok, _)| *tok)
            .collect();
        for tok in tokens {
            self.timers.remove(&tok);
            self.cancelled.push(tok);
        }
    }

    /// Transactions still pinning the log (no end record).
    #[must_use]
    pub fn log_pinned(&self) -> Vec<TxnId> {
        self.gc.pinned()
    }

    /// The decision this coordinator made for `txn`, if any
    /// (observational; survives crashes).
    #[must_use]
    pub fn decided(&self, txn: TxnId) -> Option<Outcome> {
        self.decisions.get(&txn).copied()
    }

    /// Borrow the stable log.
    #[must_use]
    pub fn log(&self) -> &L {
        &self.log
    }

    /// Mutable access to the stable log, for hosts that drive log-level
    /// machinery outside the engine's own actions (group-commit ticks
    /// and batch commits). Protocol records must still go through the
    /// engine, never be appended here directly.
    pub fn log_mut(&mut self) -> &mut L {
        &mut self.log
    }

    /// Per-transaction costs measured at this site.
    #[must_use]
    pub fn costs(&self, txn: TxnId) -> CostCounters {
        self.costs.get(&txn).copied().unwrap_or_default()
    }

    /// A canonical rendering of the engine's *semantic* state (protocol
    /// table, stable log, PCP, armed timers), used by the model checker
    /// to deduplicate explored states. Observational fields (costs,
    /// decision memos) are excluded on purpose — they never influence
    /// behaviour.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut s = format!("coord:{:?};", self.kind);
        self.table.for_each(|txn, st| {
            s.push_str(&format!("{txn}={:?}/{:?};", st.phase, st.plan.mode));
        });
        s.push('|');
        for rec in self.log.records().expect("records") {
            s.push_str(&format!("{};", rec.payload));
        }
        s.push('|');
        for (tok, (txn, p)) in &self.timers {
            s.push_str(&format!("{tok}:{txn}:{p:?};"));
        }
        s
    }

    /// Hash the same semantic state as [`Coordinator::fingerprint`]
    /// directly into `h`, without rendering strings or cloning the log.
    /// This is the model checker's hot path: it runs once per explored
    /// state, so it must not allocate.
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.kind.hash(h);
        self.table.for_each(|txn, st| {
            txn.hash(h);
            st.phase.hash(h);
            st.plan.mode.hash(h);
        });
        0xA1u8.hash(h); // section separator, mirrors the '|' in fingerprint()
        self.log
            .for_each_record(&mut |rec| rec.payload.hash(h))
            .expect("records");
        0xA2u8.hash(h);
        for (tok, (txn, p)) in &self.timers {
            (tok, txn, p).hash(h);
        }
    }

    /// The commit mode that would be selected for the given sites (for
    /// experiments and tests).
    #[must_use]
    pub fn mode_for(&self, sites: &[SiteId]) -> acp_types::CommitMode {
        CommitPlan::derive(self.kind, &self.entries(sites)).mode
    }

    // -- internals -----------------------------------------------------

    pub(crate) fn entries(&self, sites: &[SiteId]) -> Vec<ParticipantEntry> {
        sites
            .iter()
            .map(|s| {
                let p = *self
                    .pcp
                    .get(s)
                    .unwrap_or_else(|| panic!("site {s} not registered in PCP"));
                ParticipantEntry::new(*s, p)
            })
            .collect()
    }

    pub(crate) fn append(
        &mut self,
        txn: TxnId,
        payload: LogPayload,
        force: bool,
        out: &mut Vec<Action>,
    ) {
        let kind = payload.kind_name();
        let lsn = self.log.next_lsn();
        self.gc.note(lsn, &payload);
        self.log
            .append(payload, force)
            .expect("coordinator log append");
        self.costs.entry(txn).or_default().count_log_write(force);
        out.push(Action::Acta(ActaEvent::LogWrite {
            site: self.site,
            txn,
            kind,
            forced: force,
        }));
    }

    pub(crate) fn send(&mut self, txn: TxnId, to: SiteId, payload: Payload, out: &mut Vec<Action>) {
        self.costs
            .entry(txn)
            .or_default()
            .count_message_kind(payload.kind_name());
        out.push(Action::Send { to, payload });
    }

    pub(crate) fn arm_timer(
        &mut self,
        txn: TxnId,
        purpose: TimerPurpose,
        attempt: u32,
        out: &mut Vec<Action>,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, (txn, purpose));
        out.push(Action::SetTimer {
            token,
            purpose,
            attempt,
        });
    }

    // -- protocol entry points ------------------------------------------

    /// Start commit processing for `txn` across the given participant
    /// sites: select the mode, write the initiation record if the plan
    /// requires one, and send the prepare-to-commit requests (the voting
    /// phase of Figure 1).
    pub fn begin_commit(&mut self, txn: TxnId, sites: &[SiteId]) -> Vec<Action> {
        assert!(
            !self.table.contains(txn),
            "transaction {txn} already in the protocol table"
        );
        let participants = self.entries(sites);
        let plan = CommitPlan::derive(self.kind, &participants);
        let mut out = Vec::new();

        let mut logged_any = false;
        if plan.write_initiation {
            self.append(
                txn,
                LogPayload::Initiation {
                    txn,
                    participants: participants.clone(),
                    mode: plan.mode,
                },
                true,
                &mut out,
            );
            logged_any = true;
        }

        for p in &participants {
            let to = p.site;
            self.send(txn, to, Payload::Prepare { txn }, &mut out);
        }
        self.table.insert(
            txn,
            TxnState {
                participants,
                plan,
                phase: Phase::Voting {
                    votes: BTreeMap::new(),
                },
                logged_any,
            },
        );
        self.arm_timer(txn, TimerPurpose::VoteTimeout, 0, &mut out);
        out
    }

    /// Fix the outcome and run the decision phase. Called when all votes
    /// are in, when a "No" vote arrives, or on vote timeout.
    fn decide(&mut self, txn: TxnId, outcome: Outcome, out: &mut Vec<Action>) {
        // Copy what the decision needs out of the shard and release its
        // lock before appending/sending — nothing below may re-enter the
        // table while a shard is held.
        let (plan, participants, excluded, mut logged_any) = self.table.with(txn, |state| {
            let state = state.expect("decide on tabled txn");
            // Recipients: everyone except unilateral aborters (voted
            // "No") and read-only voters, both of which dropped out of
            // phase two. Participants whose vote has not arrived are
            // *included*: they may be prepared, so the decision (and its
            // acknowledgment bookkeeping) must reach them.
            let excluded: BTreeSet<SiteId> = match &state.phase {
                Phase::Voting { votes } => votes
                    .iter()
                    .filter(|(_, v)| matches!(v, Vote::No | Vote::ReadOnly))
                    .map(|(s, _)| *s)
                    .collect(),
                Phase::Deciding { .. } => unreachable!("decide called twice"),
            };
            (
                state.plan.clone(),
                state.participants.clone(),
                excluded,
                state.logged_any,
            )
        });
        let recipients: Vec<ParticipantEntry> = participants
            .iter()
            .filter(|p| !excluded.contains(&p.site))
            .copied()
            .collect();

        self.decisions.insert(txn, outcome);
        out.push(Action::Acta(ActaEvent::Decide {
            coordinator: self.site,
            txn,
            outcome,
        }));
        // The decision supersedes the vote-collection timeout.
        self.retire_timers(txn, |p| p == TimerPurpose::VoteTimeout);

        // Decision record — skipped entirely when there is nobody left in
        // phase two (the read-only optimization: an all-read-only
        // transaction commits with no decision record and no decision
        // messages).
        if !recipients.is_empty() {
            if let Some(forced) = plan.decision_record(outcome) {
                let rec_participants = if plan.write_initiation {
                    Vec::new()
                } else {
                    participants.clone()
                };
                self.append(
                    txn,
                    LogPayload::CoordDecision {
                        txn,
                        outcome,
                        participants: rec_participants,
                    },
                    forced,
                    out,
                );
                logged_any = true;
            }
            for p in &recipients {
                let to = p.site;
                self.send(txn, to, Payload::Decision { txn, outcome }, out);
            }
        }

        let pending: BTreeSet<SiteId> = plan
            .expected_ackers(outcome, &recipients)
            .into_iter()
            .collect();

        let finished = pending.is_empty();
        self.table.with_mut(txn, |state| {
            let state = state.expect("tabled");
            state.logged_any = logged_any;
            if !finished {
                state.phase = Phase::Deciding {
                    outcome,
                    pending,
                    resends: 0,
                };
            }
        });
        if finished {
            self.finish(txn, out);
        } else {
            self.arm_timer(txn, TimerPurpose::AckResend, 0, out);
        }
    }

    /// All expected acknowledgments arrived (or none were expected):
    /// write the end record, delete the transaction from the protocol
    /// table (the `DeletePT` event of Definition 2) and garbage collect.
    pub(crate) fn finish(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let state = self.table.remove(txn).expect("finish on tabled txn");
        // Any still-armed timer for a finished transaction (the ack
        // re-send, typically) is dead weight from here on.
        self.retire_timers(txn, |_| true);
        if state.logged_any {
            self.append(txn, LogPayload::End { txn }, false, out);
        }
        out.push(Action::Acta(ActaEvent::DeletePt {
            coordinator: self.site,
            txn,
        }));
        if self.auto_gc {
            let released = self.collect_garbage();
            if released > 0 {
                out.push(Action::Gc {
                    released_up_to: self.log.low_water_mark().0,
                    records_released: released as u64,
                });
            }
        }
    }

    /// Client-requested abort: if the transaction is still in its voting
    /// phase, decide abort now (the transaction's application gave up —
    /// the same decision path as a "No" vote or a vote timeout). Ignored
    /// once a decision exists and for unknown transactions.
    pub fn abort_request(&mut self, txn: TxnId) -> Vec<Action> {
        let mut out = Vec::new();
        let voting = self.table.with(txn, |s| {
            matches!(
                s,
                Some(TxnState {
                    phase: Phase::Voting { .. },
                    ..
                })
            )
        });
        if voting {
            self.decide(txn, Outcome::Abort, &mut out);
        }
        out
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, from: SiteId, payload: &Payload) -> Vec<Action> {
        let mut out = Vec::new();
        match payload {
            Payload::Vote { txn, vote } => self.on_vote(from, *txn, *vote, &mut out),
            Payload::Ack { txn } => self.on_ack(from, *txn, &mut out),
            Payload::Inquiry { txn, protocol } => {
                self.on_inquiry(from, *txn, *protocol, &mut out);
            }
            // Coordinator-side protocol ignores everything else (§2) —
            // including the Paxos Commit vocabulary, which only the
            // `paxos` engines speak.
            Payload::Prepare { .. }
            | Payload::Decision { .. }
            | Payload::InquiryResponse { .. }
            | Payload::PaxosBegin { .. }
            | Payload::Phase1a { .. }
            | Payload::Phase1b { .. }
            | Payload::Phase2a { .. }
            | Payload::Phase2b { .. }
            | Payload::PaxosForget { .. } => {}
        }
        out
    }

    fn on_vote(&mut self, from: SiteId, txn: TxnId, vote: Vote, out: &mut Vec<Action>) {
        // Record the vote under the shard lock; any decision it triggers
        // runs after the lock is released (`decide` re-enters the table).
        let verdict = self.table.with_mut(txn, |state| {
            // A vote for a transaction no longer in the table (the
            // coordinator decided and forgot while this vote was in
            // flight). A "Yes" voter is prepared and blocked, but its
            // own inquiry timer resolves that through the normal inquiry
            // path — which, unlike answering here, uses the inquirer's
            // protocol from the message itself. Ignore the vote.
            let state = state?;
            if !state.participants.iter().any(|p| p.site == from) {
                return None; // not a participant of this transaction; ignore
            }
            match &mut state.phase {
                Phase::Voting { votes } => {
                    votes.insert(from, vote);
                    if vote == Vote::No {
                        Some(Outcome::Abort)
                    } else if votes.len() == state.participants.len() {
                        Some(Outcome::Commit)
                    } else {
                        None
                    }
                }
                Phase::Deciding { .. } => {
                    // Late vote after the decision (it raced the timeout
                    // or a client abort). Nothing to do: the decision was
                    // already sent to every phase-two recipient —
                    // including participants whose vote had not arrived —
                    // and the links are FIFO, so it is ordered behind
                    // this vote's prepare. Loss is covered by the
                    // ack-resend timer and by the participant's recovery
                    // inquiry.
                    None
                }
            }
        });
        if let Some(outcome) = verdict {
            self.decide(txn, outcome, out);
        }
    }

    fn on_ack(&mut self, from: SiteId, txn: TxnId, out: &mut Vec<Action>) {
        let finished = self.table.with_mut(txn, |state| {
            // Duplicate or protocol-violating acks are ignored (§2), as
            // are acks during the voting phase.
            let Some(state) = state else { return false };
            if let Phase::Deciding { pending, .. } = &mut state.phase {
                pending.remove(&from);
                pending.is_empty()
            } else {
                false
            }
        });
        if finished {
            self.finish(txn, out);
        }
    }

    fn on_inquiry(
        &mut self,
        from: SiteId,
        txn: TxnId,
        protocol: ProtocolKind,
        out: &mut Vec<Action>,
    ) {
        let tabled = self.table.with(txn, |state| {
            state.map(|state| match &state.phase {
                Phase::Voting { .. } => None,
                Phase::Deciding { outcome, .. } => Some(*outcome),
            })
        });
        match tabled {
            Some(None) => {
                // No decision yet; the participant stays blocked and
                // will retry. (The vote timeout will resolve it.)
                return;
            }
            Some(Some(outcome)) => {
                out.push(Action::Acta(ActaEvent::Respond {
                    coordinator: self.site,
                    txn,
                    participant: from,
                    outcome,
                    by_presumption: false,
                }));
                self.send(txn, from, Payload::InquiryResponse { txn, outcome }, out);
                return;
            }
            None => {}
        }
        let (outcome, by_presumption) = self.answer_unknown(txn, Some(protocol));
        out.push(Action::Acta(ActaEvent::Respond {
            coordinator: self.site,
            txn,
            participant: from,
            outcome,
            by_presumption,
        }));
        self.send(txn, from, Payload::InquiryResponse { txn, outcome }, out);
    }

    /// Answer for a transaction with no protocol-table entry. Returns
    /// `(outcome, answered_by_presumption)`.
    fn answer_unknown(
        &self,
        txn: TxnId,
        inquirer_protocol: Option<ProtocolKind>,
    ) -> (Outcome, bool) {
        match self.unknown_inquiry_rule() {
            InquiryRule::FixedPresumption(o) => (o, true),
            InquiryRule::InquirerPresumption => {
                // §4.2: adopt the presumption of the inquiring
                // participant's protocol. For a PrN inquirer this is the
                // hidden abort presumption — Theorem 3's proof shows a
                // PrN (or PrA) inquiry about a *forgotten committed*
                // transaction is impossible, so abort is always
                // consistent here.
                let p = inquirer_protocol.unwrap_or(ProtocolKind::PrN);
                (p.presumption(), true)
            }
            InquiryRule::ConsultLog => {
                let records = self.log.records().expect("records");
                let summaries = acp_wal::scan::analyze(&records);
                match summaries.get(&txn).and_then(|s| s.decision) {
                    Some(o) => (o, false),
                    // Never decided (or the records were reclaimed after
                    // every ack arrived — in which case nobody can be
                    // left to inquire): abort is the only outcome the
                    // coordinator can still guarantee.
                    None => (Outcome::Abort, true),
                }
            }
        }
    }

    /// The unknown-transaction inquiry rule for this coordinator kind
    /// (population-independent).
    pub(crate) fn unknown_inquiry_rule(&self) -> InquiryRule {
        match self.kind {
            CoordinatorKind::Single(p) | CoordinatorKind::U2pc(p) => {
                InquiryRule::FixedPresumption(p.presumption())
            }
            CoordinatorKind::C2pc(_) => InquiryRule::ConsultLog,
            CoordinatorKind::PrAny(_) => InquiryRule::InquirerPresumption,
        }
    }

    /// Timer callback.
    pub fn on_timer(&mut self, token: u64) -> Vec<Action> {
        let mut out = Vec::new();
        let Some((txn, purpose)) = self.timers.remove(&token) else {
            return out;
        };
        match purpose {
            TimerPurpose::VoteTimeout => {
                let voting = self.table.with(txn, |s| {
                    matches!(
                        s,
                        Some(TxnState {
                            phase: Phase::Voting { .. },
                            ..
                        })
                    )
                });
                if voting {
                    // §4.2: failures are detected by timeouts — missing
                    // votes abort the transaction.
                    self.decide(txn, Outcome::Abort, &mut out);
                }
            }
            TimerPurpose::AckResend => {
                let resend = self.table.with_mut(txn, |state| {
                    let state = state?;
                    if let Phase::Deciding {
                        outcome,
                        pending,
                        resends,
                    } = &mut state.phase
                    {
                        *resends += 1;
                        Some((*resends, *outcome, pending.iter().copied().collect::<Vec<_>>()))
                    } else {
                        None
                    }
                });
                if let Some((attempts, outcome, targets)) = resend {
                    for to in targets {
                        self.send(txn, to, Payload::Decision { txn, outcome }, &mut out);
                    }
                    if attempts < MAX_DECISION_RESENDS {
                        self.arm_timer(txn, TimerPurpose::AckResend, attempts, &mut out);
                    }
                }
            }
            // Participant/gateway/paxos-side purposes: not ours.
            TimerPurpose::InquiryRetry
            | TimerPurpose::ApplyRetry
            | TimerPurpose::PaxosCompletion => {}
        }
        out
    }

    /// The site fail-stops: the protocol table, timers and unflushed log
    /// records are lost; the PCP (stable configuration) and the forced
    /// log survive.
    pub fn crash(&mut self) {
        self.table.clear();
        self.timers.clear();
        self.cancelled.clear();
        self.log.lose_unflushed().expect("log crash");
        self.gc = GcTracker::from_records(&self.log.records().expect("records"));
    }

    /// Garbage-collect the releasable log prefix. Returns the number of
    /// records reclaimed.
    pub fn collect_garbage(&mut self) -> usize {
        let releasable = self.gc.releasable();
        if releasable > self.log.low_water_mark() {
            // The releasable point may cover lazy records still in the
            // volatile buffer; make them durable before truncating.
            self.log.flush().expect("flush before gc");
            let before = self.log.stats().truncated;
            self.log.truncate_prefix(releasable).expect("truncate");
            self.gc.reclaimed(releasable);
            (self.log.stats().truncated - before) as usize
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests;
