//! The sharded protocol table.
//!
//! The coordinator's volatile protocol table used to be a single
//! `BTreeMap<TxnId, TxnState>`. That is fine when one thread owns the
//! engine and drives a handful of transactions, but it is the hot-path
//! contention point the reactor runtime must remove: one coordinator
//! site drives thousands of concurrent transactions, and auxiliary
//! readers (metrics snapshots, table-size probes) must not serialize
//! against protocol progress.
//!
//! [`ShardedTable`] splits the map into independently locked shards
//! keyed by `txn.raw() % shard_count` — the same recipe as the model
//! checker's sharded seen-set, and the same recipe the multi-reactor
//! runtime uses to partition coordinator work across event loops
//! ([`shard_of`] is the single definition of that ownership map). The
//! shard count is configurable ([`ShardedTable::with_shards`]);
//! [`ShardedTable::new`] keeps the historical [`TABLE_SHARDS`] spread.
//! Each shard is a `Mutex<BTreeMap<..>>`; cached atomic lengths — one
//! global, one per shard — make size and occupancy probes lock-free.
//! All access is closure-scoped ([`ShardedTable::with`] /
//! [`ShardedTable::with_mut`]) so a shard lock can never be held across
//! a call back into the engine — the discipline that keeps the engine
//! deadlock-free no matter which host drives it.
//!
//! Iteration order is deterministic — shard 0..N in index order, each
//! shard's `BTreeMap` in key order — a pure function of the table's
//! *content*, which is all the model checker's fingerprints require.

use acp_types::TxnId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Default number of shards. Matches the checker's seen-set sharding;
/// plenty of spread for thousands of in-flight transactions while
/// keeping the all-shards walk (fingerprints, snapshots) cheap.
pub const TABLE_SHARDS: usize = 64;

/// The shard owning `txn` when work is split `n_shards` ways:
/// `txn.raw() % n_shards`. This is THE ownership map — the table's
/// internal sharding, the multi-reactor's coordinator partitioner and
/// the E14 report all call this one function, so "which shard owns
/// transaction t" has a single answer everywhere.
#[must_use]
pub fn shard_of(txn: TxnId, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0, "shard_of with zero shards");
    (txn.raw() % n_shards.max(1) as u64) as usize
}

/// A map from [`TxnId`] to `V`, split across independently locked
/// shards. See the module docs.
pub struct ShardedTable<V> {
    shards: Vec<Mutex<BTreeMap<TxnId, V>>>,
    len: AtomicUsize,
    /// Per-shard occupancy, maintained alongside `len` so hosts can
    /// probe shard balance without touching a lock.
    shard_lens: Vec<AtomicUsize>,
}

impl<V> Default for ShardedTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShardedTable<V> {
    /// An empty table with the default [`TABLE_SHARDS`] spread.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(TABLE_SHARDS)
    }

    /// An empty table with an explicit shard count (≥ 1). The
    /// multi-reactor runtime sizes per-slice tables to its reactor
    /// count so table ownership and reactor ownership coincide.
    #[must_use]
    pub fn with_shards(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        ShardedTable {
            shards: (0..n).map(|_| Mutex::new(BTreeMap::new())).collect(),
            len: AtomicUsize::new(0),
            shard_lens: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Number of shards the table spreads across.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `txn` in this table.
    #[must_use]
    pub fn shard_of(&self, txn: TxnId) -> usize {
        shard_of(txn, self.shards.len())
    }

    fn shard(&self, txn: TxnId) -> (usize, &Mutex<BTreeMap<TxnId, V>>) {
        let i = self.shard_of(txn);
        (i, &self.shards[i])
    }

    fn lock(m: &Mutex<BTreeMap<TxnId, V>>) -> std::sync::MutexGuard<'_, BTreeMap<TxnId, V>> {
        // A panic mid-closure poisons the shard; the map itself is still
        // structurally sound (BTreeMap mutations are not interrupted by
        // unwinding observers), so recover the guard rather than
        // cascading the panic into every later accessor.
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Insert, returning the previous value if one existed.
    pub fn insert(&self, txn: TxnId, value: V) -> Option<V> {
        let (i, shard) = self.shard(txn);
        let prev = Self::lock(shard).insert(txn, value);
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
            self.shard_lens[i].fetch_add(1, Ordering::Relaxed);
        }
        prev
    }

    /// Remove and return the entry.
    pub fn remove(&self, txn: TxnId) -> Option<V> {
        let (i, shard) = self.shard(txn);
        let prev = Self::lock(shard).remove(&txn);
        if prev.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.shard_lens[i].fetch_sub(1, Ordering::Relaxed);
        }
        prev
    }

    /// Is `txn` present?
    #[must_use]
    pub fn contains(&self, txn: TxnId) -> bool {
        Self::lock(self.shard(txn).1).contains_key(&txn)
    }

    /// Number of entries (lock-free read of a cached counter).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Occupancy of one shard (lock-free). Out-of-range probes read 0.
    #[must_use]
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shard_lens
            .get(shard)
            .map_or(0, |l| l.load(Ordering::Relaxed))
    }

    /// Per-shard occupancy snapshot (lock-free, one relaxed load per
    /// shard). The multi-reactor's metrics surface samples this per
    /// tick to report table balance.
    #[must_use]
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shard_lens
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }

    /// Largest single-shard occupancy (lock-free).
    #[must_use]
    pub fn max_shard_len(&self) -> usize {
        self.shard_lens
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Is the table empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            let mut m = Self::lock(shard);
            self.len.fetch_sub(m.len(), Ordering::Relaxed);
            self.shard_lens[i].fetch_sub(m.len(), Ordering::Relaxed);
            m.clear();
        }
    }

    /// Run `f` over the entry for `txn` (or `None`), holding only that
    /// shard's lock. `f` must not call back into the table.
    pub fn with<R>(&self, txn: TxnId, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(Self::lock(self.shard(txn).1).get(&txn))
    }

    /// Like [`ShardedTable::with`] with mutable access.
    pub fn with_mut<R>(&self, txn: TxnId, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(Self::lock(self.shard(txn).1).get_mut(&txn))
    }

    /// Visit every entry in deterministic (shard, key) order, one shard
    /// lock at a time. `f` must not call back into the table.
    pub fn for_each(&self, mut f: impl FnMut(TxnId, &V)) {
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                f(*txn, v);
            }
        }
    }

    /// First key whose entry satisfies `pred`, in deterministic
    /// iteration order.
    pub fn find(&self, mut pred: impl FnMut(TxnId, &V) -> bool) -> Option<TxnId> {
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                if pred(*txn, v) {
                    return Some(*txn);
                }
            }
        }
        None
    }

    /// All keys, globally sorted (not shard order — callers expect the
    /// unsharded map's presentation).
    #[must_use]
    pub fn keys_sorted(&self) -> Vec<TxnId> {
        let mut keys = Vec::with_capacity(self.len());
        for shard in &self.shards {
            keys.extend(Self::lock(shard).keys().copied());
        }
        keys.sort_unstable();
        keys
    }
}

impl<V: Clone> Clone for ShardedTable<V> {
    fn clone(&self) -> Self {
        let table = ShardedTable::with_shards(self.shards.len());
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                table.insert(*txn, v.clone());
            }
        }
        table
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for ShardedTable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                m.entry(txn, v);
            }
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_map_semantics() {
        let t: ShardedTable<u64> = ShardedTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(TxnId::new(1), 10), None);
        assert_eq!(t.insert(TxnId::new(65), 20), None); // same shard as 1
        assert_eq!(t.insert(TxnId::new(1), 11), Some(10));
        assert_eq!(t.len(), 2);
        assert!(t.contains(TxnId::new(65)));
        assert_eq!(t.with(TxnId::new(1), |v| v.copied()), Some(11));
        t.with_mut(TxnId::new(1), |v| *v.unwrap() += 1);
        assert_eq!(t.remove(TxnId::new(1)), Some(12));
        assert_eq!(t.remove(TxnId::new(1)), None);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn iteration_is_deterministic_shard_then_key_order() {
        let t: ShardedTable<u64> = ShardedTable::new();
        for raw in [130u64, 2, 66, 1, 65] {
            t.insert(TxnId::new(raw), raw);
        }
        let mut seen = Vec::new();
        t.for_each(|txn, _| seen.push(txn.raw()));
        // Shard 1 holds {1, 65}, shard 2 holds {2, 66, 130}; within a
        // shard the BTreeMap yields ascending keys.
        assert_eq!(seen, vec![1, 65, 2, 66, 130]);
        assert_eq!(
            t.keys_sorted().iter().map(|t| t.raw()).collect::<Vec<_>>(),
            vec![1, 2, 65, 66, 130]
        );
    }

    #[test]
    fn clone_preserves_content_and_len() {
        let t: ShardedTable<String> = ShardedTable::new();
        for raw in 0..100 {
            t.insert(TxnId::new(raw), format!("v{raw}"));
        }
        let c = t.clone();
        assert_eq!(c.len(), 100);
        assert_eq!(format!("{t:?}"), format!("{c:?}"));
    }

    /// Satellite: the shard count is a config knob, not a constant, and
    /// ownership is the one public `shard_of` map at every count.
    #[test]
    fn configurable_shard_count_preserves_semantics() {
        for n in [1usize, 2, 3, 64] {
            let t: ShardedTable<u64> = ShardedTable::with_shards(n);
            assert_eq!(t.shard_count(), n);
            for raw in 0..50u64 {
                t.insert(TxnId::new(raw), raw * 2);
            }
            assert_eq!(t.len(), 50);
            for raw in 0..50u64 {
                let txn = TxnId::new(raw);
                assert_eq!(t.shard_of(txn), shard_of(txn, n));
                assert_eq!(t.with(txn, |v| v.copied()), Some(raw * 2));
            }
            // keys_sorted is shard-count independent.
            assert_eq!(t.keys_sorted().len(), 50);
            let sorted: Vec<u64> = t.keys_sorted().iter().map(|t| t.raw()).collect();
            assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        }
    }

    /// Satellite: per-shard occupancy counters are exact and lock-free.
    #[test]
    fn shard_occupancy_tracks_inserts_and_removes() {
        let t: ShardedTable<u64> = ShardedTable::with_shards(4);
        for raw in 0..16u64 {
            t.insert(TxnId::new(raw), raw);
        }
        // 16 txns round-robin over 4 shards: perfectly balanced.
        assert_eq!(t.shard_occupancy(), vec![4, 4, 4, 4]);
        assert_eq!(t.max_shard_len(), 4);
        // Remove everything owned by shard 2.
        for raw in (0..16u64).filter(|r| shard_of(TxnId::new(*r), 4) == 2) {
            t.remove(TxnId::new(raw));
        }
        assert_eq!(t.shard_occupancy(), vec![4, 4, 0, 4]);
        assert_eq!(t.shard_len(2), 0);
        assert_eq!(t.shard_len(99), 0, "out-of-range probe reads 0");
        assert_eq!(t.len(), 12);
        t.clear();
        assert_eq!(t.shard_occupancy(), vec![0, 0, 0, 0]);
    }

    /// The satellite's concurrent-access stress test: writer threads
    /// hammer disjoint key ranges while readers sweep the whole table;
    /// the final content and the cached lengths must both be exact.
    #[test]
    fn concurrent_access_stress() {
        let t: Arc<ShardedTable<u64>> = Arc::new(ShardedTable::new());
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 500;

        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let txn = TxnId::new(w * 10_000 + i);
                    t.insert(txn, 0);
                    for _ in 0..4 {
                        t.with_mut(txn, |v| *v.unwrap() += 1);
                    }
                    // Every other entry is removed again, exercising the
                    // len counter in both directions under contention.
                    if i % 2 == 0 {
                        assert_eq!(t.remove(txn), Some(4));
                    }
                }
            }));
        }
        // Concurrent readers: sweeps must never observe torn state and
        // never deadlock against the writers.
        for _ in 0..2 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut n = 0usize;
                    t.for_each(|_, v| {
                        assert!(*v <= 4);
                        n += 1;
                    });
                    assert!(n <= (WRITERS * PER_WRITER) as usize);
                }
            }));
        }
        for h in handles {
            h.join().expect("stress thread");
        }

        let expected = (WRITERS * PER_WRITER / 2) as usize;
        assert_eq!(t.len(), expected);
        let mut n = 0usize;
        t.for_each(|txn, v| {
            assert_eq!(*v, 4, "entry {txn} saw a lost update");
            n += 1;
        });
        assert_eq!(n, expected, "cached len disagrees with a full walk");
        // The per-shard counters agree with the global one.
        assert_eq!(t.shard_occupancy().iter().sum::<usize>(), expected);
    }
}
