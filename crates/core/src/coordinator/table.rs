//! The sharded protocol table.
//!
//! The coordinator's volatile protocol table used to be a single
//! `BTreeMap<TxnId, TxnState>`. That is fine when one thread owns the
//! engine and drives a handful of transactions, but it is the hot-path
//! contention point the reactor runtime must remove: one coordinator
//! site drives thousands of concurrent transactions, and auxiliary
//! readers (metrics snapshots, table-size probes) must not serialize
//! against protocol progress.
//!
//! [`ShardedTable`] splits the map into [`TABLE_SHARDS`] independently
//! locked shards keyed by `txn.raw() % TABLE_SHARDS` — the same recipe
//! as the model checker's sharded seen-set. Each shard is a
//! `Mutex<BTreeMap<..>>`; a cached atomic length makes size probes
//! lock-free. All access is closure-scoped ([`ShardedTable::with`] /
//! [`ShardedTable::with_mut`]) so a shard lock can never be held across
//! a call back into the engine — the discipline that keeps the engine
//! deadlock-free no matter which host drives it.
//!
//! Iteration order is deterministic — shard 0..N in index order, each
//! shard's `BTreeMap` in key order — a pure function of the table's
//! *content*, which is all the model checker's fingerprints require.

use acp_types::TxnId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Number of shards. Matches the checker's seen-set sharding; plenty of
/// spread for thousands of in-flight transactions while keeping the
/// all-shards walk (fingerprints, snapshots) cheap.
pub const TABLE_SHARDS: usize = 64;

/// A map from [`TxnId`] to `V`, split across [`TABLE_SHARDS`]
/// independently locked shards. See the module docs.
pub struct ShardedTable<V> {
    shards: Vec<Mutex<BTreeMap<TxnId, V>>>,
    len: AtomicUsize,
}

impl<V> Default for ShardedTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShardedTable<V> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        ShardedTable {
            shards: (0..TABLE_SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn shard(&self, txn: TxnId) -> &Mutex<BTreeMap<TxnId, V>> {
        &self.shards[(txn.raw() % TABLE_SHARDS as u64) as usize]
    }

    fn lock(m: &Mutex<BTreeMap<TxnId, V>>) -> std::sync::MutexGuard<'_, BTreeMap<TxnId, V>> {
        // A panic mid-closure poisons the shard; the map itself is still
        // structurally sound (BTreeMap mutations are not interrupted by
        // unwinding observers), so recover the guard rather than
        // cascading the panic into every later accessor.
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Insert, returning the previous value if one existed.
    pub fn insert(&self, txn: TxnId, value: V) -> Option<V> {
        let prev = Self::lock(self.shard(txn)).insert(txn, value);
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        prev
    }

    /// Remove and return the entry.
    pub fn remove(&self, txn: TxnId) -> Option<V> {
        let prev = Self::lock(self.shard(txn)).remove(&txn);
        if prev.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        prev
    }

    /// Is `txn` present?
    #[must_use]
    pub fn contains(&self, txn: TxnId) -> bool {
        Self::lock(self.shard(txn)).contains_key(&txn)
    }

    /// Number of entries (lock-free read of a cached counter).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Is the table empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut m = Self::lock(shard);
            self.len.fetch_sub(m.len(), Ordering::Relaxed);
            m.clear();
        }
    }

    /// Run `f` over the entry for `txn` (or `None`), holding only that
    /// shard's lock. `f` must not call back into the table.
    pub fn with<R>(&self, txn: TxnId, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(Self::lock(self.shard(txn)).get(&txn))
    }

    /// Like [`ShardedTable::with`] with mutable access.
    pub fn with_mut<R>(&self, txn: TxnId, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(Self::lock(self.shard(txn)).get_mut(&txn))
    }

    /// Visit every entry in deterministic (shard, key) order, one shard
    /// lock at a time. `f` must not call back into the table.
    pub fn for_each(&self, mut f: impl FnMut(TxnId, &V)) {
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                f(*txn, v);
            }
        }
    }

    /// First key whose entry satisfies `pred`, in deterministic
    /// iteration order.
    pub fn find(&self, mut pred: impl FnMut(TxnId, &V) -> bool) -> Option<TxnId> {
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                if pred(*txn, v) {
                    return Some(*txn);
                }
            }
        }
        None
    }

    /// All keys, globally sorted (not shard order — callers expect the
    /// unsharded map's presentation).
    #[must_use]
    pub fn keys_sorted(&self) -> Vec<TxnId> {
        let mut keys = Vec::with_capacity(self.len());
        for shard in &self.shards {
            keys.extend(Self::lock(shard).keys().copied());
        }
        keys.sort_unstable();
        keys
    }
}

impl<V: Clone> Clone for ShardedTable<V> {
    fn clone(&self) -> Self {
        let table = ShardedTable::new();
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                table.insert(*txn, v.clone());
            }
        }
        table
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for ShardedTable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for shard in &self.shards {
            for (txn, v) in Self::lock(shard).iter() {
                m.entry(txn, v);
            }
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_map_semantics() {
        let t: ShardedTable<u64> = ShardedTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(TxnId::new(1), 10), None);
        assert_eq!(t.insert(TxnId::new(65), 20), None); // same shard as 1
        assert_eq!(t.insert(TxnId::new(1), 11), Some(10));
        assert_eq!(t.len(), 2);
        assert!(t.contains(TxnId::new(65)));
        assert_eq!(t.with(TxnId::new(1), |v| v.copied()), Some(11));
        t.with_mut(TxnId::new(1), |v| *v.unwrap() += 1);
        assert_eq!(t.remove(TxnId::new(1)), Some(12));
        assert_eq!(t.remove(TxnId::new(1)), None);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn iteration_is_deterministic_shard_then_key_order() {
        let t: ShardedTable<u64> = ShardedTable::new();
        for raw in [130u64, 2, 66, 1, 65] {
            t.insert(TxnId::new(raw), raw);
        }
        let mut seen = Vec::new();
        t.for_each(|txn, _| seen.push(txn.raw()));
        // Shard 1 holds {1, 65}, shard 2 holds {2, 66, 130}; within a
        // shard the BTreeMap yields ascending keys.
        assert_eq!(seen, vec![1, 65, 2, 66, 130]);
        assert_eq!(
            t.keys_sorted().iter().map(|t| t.raw()).collect::<Vec<_>>(),
            vec![1, 2, 65, 66, 130]
        );
    }

    #[test]
    fn clone_preserves_content_and_len() {
        let t: ShardedTable<String> = ShardedTable::new();
        for raw in 0..100 {
            t.insert(TxnId::new(raw), format!("v{raw}"));
        }
        let c = t.clone();
        assert_eq!(c.len(), 100);
        assert_eq!(format!("{t:?}"), format!("{c:?}"));
    }

    /// The satellite's concurrent-access stress test: writer threads
    /// hammer disjoint key ranges while readers sweep the whole table;
    /// the final content and the cached length must both be exact.
    #[test]
    fn concurrent_access_stress() {
        let t: Arc<ShardedTable<u64>> = Arc::new(ShardedTable::new());
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 500;

        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let txn = TxnId::new(w * 10_000 + i);
                    t.insert(txn, 0);
                    for _ in 0..4 {
                        t.with_mut(txn, |v| *v.unwrap() += 1);
                    }
                    // Every other entry is removed again, exercising the
                    // len counter in both directions under contention.
                    if i % 2 == 0 {
                        assert_eq!(t.remove(txn), Some(4));
                    }
                }
            }));
        }
        // Concurrent readers: sweeps must never observe torn state and
        // never deadlock against the writers.
        for _ in 0..2 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut n = 0usize;
                    t.for_each(|_, v| {
                        assert!(*v <= 4);
                        n += 1;
                    });
                    assert!(n <= (WRITERS * PER_WRITER) as usize);
                }
            }));
        }
        for h in handles {
            h.join().expect("stress thread");
        }

        let expected = (WRITERS * PER_WRITER / 2) as usize;
        assert_eq!(t.len(), expected);
        let mut n = 0usize;
        t.for_each(|txn, v| {
            assert_eq!(*v, 4, "entry {txn} saw a lost update");
            n += 1;
        });
        assert_eq!(n, expected, "cached len disagrees with a full walk");
    }
}
