//! Commit plans: the per-transaction policy bundle that makes one
//! coordinator engine behave as PrN, PrA, PrC, U2PC, C2PC or PrAny.
//!
//! Everything a coordinator variant *is* — what it logs, whom it waits
//! for, and how it answers inquiries about forgotten transactions — is
//! captured here as data derived from the [`CoordinatorKind`] and the
//! transaction's participant population. The engine in
//! [`crate::coordinator`] then executes any plan uniformly, which keeps
//! the Theorem 1/2/3 comparisons apples-to-apples: the *only*
//! differences between the protocols are the ones the paper describes.

use crate::coordinator::select::select_mode;
use acp_types::{CommitMode, CoordinatorKind, Outcome, ParticipantEntry, ProtocolKind, SiteId};

/// Who must acknowledge a decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AckRule {
    /// Nobody: forget as soon as the decision is out.
    None,
    /// Everyone the decision is sent to (PrN semantics; also C2PC's
    /// "never forget until all acknowledge").
    AllRecipients,
    /// Exactly the recipients whose *own* protocol acknowledges this
    /// outcome (PrAny's rule; also how U2PC narrows its expectations).
    ByParticipantProtocol,
}

/// How to answer an inquiry about a transaction the coordinator has no
/// protocol-table entry for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InquiryRule {
    /// Answer with a fixed presumption (the coordinator's own protocol's
    /// presumption — PrN's hidden abort presumption included).
    FixedPresumption(Outcome),
    /// Answer with the *inquirer's* protocol's presumption (PrAny §4.2:
    /// "a PrAny coordinator dynamically adopts the presumption of an
    /// inquiring participant's protocol").
    InquirerPresumption,
    /// Consult the stable log before answering; only if the log has no
    /// decision either, fall back to the abort presumption for
    /// never-decided transactions (C2PC: "never uses its presumption
    /// after a failure" — for decided transactions the log always has
    /// the answer because C2PC force-logs every decision).
    ConsultLog,
}

/// The complete policy for committing one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitPlan {
    /// The mode recorded in the initiation record and the protocol
    /// table.
    pub mode: CommitMode,
    /// Force-write an initiation record (listing participants and their
    /// protocols) before the voting phase?
    pub write_initiation: bool,
    /// Decision record for a commit: `Some(forced)` or `None` (never
    /// `None` in practice — every protocol forces commit records).
    pub commit_record: Option<bool>,
    /// Decision record for an abort: `Some(forced)` or `None`.
    pub abort_record: Option<bool>,
    /// Whose acknowledgments to await for a commit.
    pub commit_acks: AckRule,
    /// Whose acknowledgments to await for an abort.
    pub abort_acks: AckRule,
    /// How to answer inquiries about unknown (forgotten or never-seen)
    /// transactions.
    pub unknown_inquiry: InquiryRule,
}

impl CommitPlan {
    /// The plan a coordinator of `kind` uses for a transaction with the
    /// given participants.
    #[must_use]
    pub fn derive(kind: CoordinatorKind, participants: &[ParticipantEntry]) -> CommitPlan {
        match kind {
            CoordinatorKind::Single(p) => Self::single(p),
            CoordinatorKind::U2pc(base) => {
                let mut plan = Self::single(base);
                // §2: the coordinator knows what messages to expect from
                // each participant and ignores violations — so it waits
                // only for the acks that will actually be sent …
                if plan.commit_acks == AckRule::AllRecipients {
                    plan.commit_acks = AckRule::ByParticipantProtocol;
                }
                if plan.abort_acks == AckRule::AllRecipients {
                    plan.abort_acks = AckRule::ByParticipantProtocol;
                }
                // … but answers inquiries with its *own* presumption,
                // which is the fatal flaw (Theorem 1).
                plan
            }
            CoordinatorKind::C2pc(base) => {
                let mut plan = Self::single(base);
                // §3: never forgets until all participants acknowledge,
                // and never answers by presumption after a failure. To
                // "always remember the outcome of terminated
                // transactions" across crashes, every decision is
                // force-logged, whatever the base protocol skips.
                plan.commit_record = Some(true);
                plan.abort_record = Some(true);
                plan.commit_acks = AckRule::AllRecipients;
                plan.abort_acks = AckRule::AllRecipients;
                plan.unknown_inquiry = InquiryRule::ConsultLog;
                plan
            }
            CoordinatorKind::PrAny(policy) => {
                let mode = select_mode(policy, participants);
                match mode {
                    CommitMode::PrN | CommitMode::PrA | CommitMode::PrC => {
                        let p = mode.as_homogeneous().expect("homogeneous mode");
                        CommitPlan {
                            // §4.2: PrAny answers by the inquirer's
                            // presumption. For homogeneous populations
                            // that coincides with the mode's own
                            // presumption; for Optimized PrN+PrA mixes
                            // both constituents presume abort.
                            unknown_inquiry: InquiryRule::InquirerPresumption,
                            ..Self::single(p)
                        }
                    }
                    CommitMode::PrAny => CommitPlan {
                        mode: CommitMode::PrAny,
                        write_initiation: true,
                        commit_record: Some(true),
                        abort_record: None,
                        commit_acks: AckRule::ByParticipantProtocol,
                        abort_acks: AckRule::ByParticipantProtocol,
                        unknown_inquiry: InquiryRule::InquirerPresumption,
                    },
                }
            }
        }
    }

    /// The plan for a plain single-protocol coordinator (Figures 2–4).
    fn single(p: ProtocolKind) -> CommitPlan {
        let acks = |o: Outcome| {
            if p.coordinator_waits_for_acks(o) {
                AckRule::AllRecipients
            } else {
                AckRule::None
            }
        };
        CommitPlan {
            mode: p.into(),
            write_initiation: p.coordinator_writes_initiation(),
            commit_record: p.coordinator_decision_force(Outcome::Commit),
            abort_record: p.coordinator_decision_force(Outcome::Abort),
            commit_acks: acks(Outcome::Commit),
            abort_acks: acks(Outcome::Abort),
            unknown_inquiry: InquiryRule::FixedPresumption(p.presumption()),
        }
    }

    /// The decision-record policy for an outcome.
    #[must_use]
    pub fn decision_record(&self, outcome: Outcome) -> Option<bool> {
        match outcome {
            Outcome::Commit => self.commit_record,
            Outcome::Abort => self.abort_record,
        }
    }

    /// The ack rule for an outcome.
    #[must_use]
    pub fn ack_rule(&self, outcome: Outcome) -> AckRule {
        match outcome {
            Outcome::Commit => self.commit_acks,
            Outcome::Abort => self.abort_acks,
        }
    }

    /// Given the decision recipients, the set whose acknowledgment must
    /// arrive before the coordinator may forget the transaction.
    #[must_use]
    pub fn expected_ackers(
        &self,
        outcome: Outcome,
        recipients: &[ParticipantEntry],
    ) -> Vec<SiteId> {
        match self.ack_rule(outcome) {
            AckRule::None => Vec::new(),
            AckRule::AllRecipients => recipients.iter().map(|p| p.site).collect(),
            AckRule::ByParticipantProtocol => recipients
                .iter()
                .filter(|p| p.protocol.acks(outcome))
                .map(|p| p.site)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::{SelectionPolicy, SiteId};

    fn pop(protos: &[ProtocolKind]) -> Vec<ParticipantEntry> {
        protos
            .iter()
            .enumerate()
            .map(|(i, &p)| ParticipantEntry::new(SiteId::new(i as u32 + 1), p))
            .collect()
    }

    #[test]
    fn prn_plan_matches_figure_2() {
        let plan = CommitPlan::derive(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &pop(&[ProtocolKind::PrN; 2]),
        );
        assert!(!plan.write_initiation);
        assert_eq!(plan.commit_record, Some(true));
        assert_eq!(plan.abort_record, Some(true));
        assert_eq!(plan.commit_acks, AckRule::AllRecipients);
        assert_eq!(plan.abort_acks, AckRule::AllRecipients);
        assert_eq!(
            plan.unknown_inquiry,
            InquiryRule::FixedPresumption(Outcome::Abort)
        );
    }

    #[test]
    fn pra_plan_matches_figure_3() {
        let plan = CommitPlan::derive(
            CoordinatorKind::Single(ProtocolKind::PrA),
            &pop(&[ProtocolKind::PrA; 2]),
        );
        assert!(!plan.write_initiation);
        assert_eq!(plan.commit_record, Some(true));
        assert_eq!(plan.abort_record, None, "PrA never logs aborts");
        assert_eq!(
            plan.abort_acks,
            AckRule::None,
            "PrA never awaits abort acks"
        );
        assert_eq!(
            plan.unknown_inquiry,
            InquiryRule::FixedPresumption(Outcome::Abort)
        );
    }

    #[test]
    fn prc_plan_matches_figure_4() {
        let plan = CommitPlan::derive(
            CoordinatorKind::Single(ProtocolKind::PrC),
            &pop(&[ProtocolKind::PrC; 2]),
        );
        assert!(plan.write_initiation);
        assert_eq!(plan.commit_record, Some(true));
        assert_eq!(plan.abort_record, None, "initiation record covers aborts");
        assert_eq!(plan.commit_acks, AckRule::None, "commit needs no acks");
        assert_eq!(plan.abort_acks, AckRule::AllRecipients);
        assert_eq!(
            plan.unknown_inquiry,
            InquiryRule::FixedPresumption(Outcome::Commit)
        );
    }

    #[test]
    fn u2pc_narrows_acks_but_keeps_own_presumption() {
        let mixed = pop(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        let plan = CommitPlan::derive(CoordinatorKind::U2pc(ProtocolKind::PrN), &mixed);
        assert_eq!(plan.commit_acks, AckRule::ByParticipantProtocol);
        assert_eq!(plan.abort_acks, AckRule::ByParticipantProtocol);
        assert_eq!(
            plan.unknown_inquiry,
            InquiryRule::FixedPresumption(Outcome::Abort)
        );

        // Expected ackers for a commit: only the PrA participant.
        assert_eq!(
            plan.expected_ackers(Outcome::Commit, &mixed),
            vec![SiteId::new(1)]
        );
        // For an abort: only the PrC participant.
        assert_eq!(
            plan.expected_ackers(Outcome::Abort, &mixed),
            vec![SiteId::new(2)]
        );
    }

    #[test]
    fn c2pc_waits_for_everyone_and_logs_everything() {
        let mixed = pop(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        let plan = CommitPlan::derive(CoordinatorKind::C2pc(ProtocolKind::PrA), &mixed);
        assert_eq!(plan.commit_record, Some(true));
        assert_eq!(plan.abort_record, Some(true), "C2PC force-logs aborts too");
        assert_eq!(plan.commit_acks, AckRule::AllRecipients);
        assert_eq!(plan.abort_acks, AckRule::AllRecipients);
        assert_eq!(plan.unknown_inquiry, InquiryRule::ConsultLog);
        // Everyone is expected — including the PrC participant that will
        // never ack a commit. That is Theorem 2.
        assert_eq!(plan.expected_ackers(Outcome::Commit, &mixed).len(), 2);
    }

    #[test]
    fn prany_mixed_plan_matches_figure_1() {
        let mixed = pop(&[ProtocolKind::PrA, ProtocolKind::PrC]);
        let plan = CommitPlan::derive(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &mixed);
        assert_eq!(plan.mode, CommitMode::PrAny);
        assert!(plan.write_initiation);
        assert_eq!(plan.commit_record, Some(true));
        assert_eq!(plan.abort_record, None);
        assert_eq!(plan.unknown_inquiry, InquiryRule::InquirerPresumption);
        // Commit acked by the PrA participant only (Figure 1a).
        assert_eq!(
            plan.expected_ackers(Outcome::Commit, &mixed),
            vec![SiteId::new(1)]
        );
        // Abort acked by the PrC participant only (Figure 1b).
        assert_eq!(
            plan.expected_ackers(Outcome::Abort, &mixed),
            vec![SiteId::new(2)]
        );
    }

    #[test]
    fn prany_homogeneous_population_runs_native_protocol() {
        let plan = CommitPlan::derive(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &pop(&[ProtocolKind::PrC; 3]),
        );
        assert_eq!(plan.mode, CommitMode::PrC);
        assert!(plan.write_initiation);
        assert_eq!(plan.commit_acks, AckRule::None);
        // But inquiries still adopt the inquirer's presumption.
        assert_eq!(plan.unknown_inquiry, InquiryRule::InquirerPresumption);
    }

    #[test]
    fn prany_with_prn_and_prc_expects_commit_acks_from_prn() {
        // The subtle case discussed in `select`: a PrN+PrC mix must not
        // forget commits before the PrN participants ack, or a crashed
        // PrN participant would later be answered by the wrong
        // presumption.
        let mixed = pop(&[ProtocolKind::PrN, ProtocolKind::PrC]);
        let plan = CommitPlan::derive(CoordinatorKind::PrAny(SelectionPolicy::Optimized), &mixed);
        assert_eq!(plan.mode, CommitMode::PrAny);
        assert_eq!(
            plan.expected_ackers(Outcome::Commit, &mixed),
            vec![SiteId::new(1)]
        );
    }
}
