//! §4.1 protocol selection: which commit mode a PrAny coordinator runs
//! for a transaction, given its participants' protocols (from the APP
//! table).
//!
//! > "The coordinator selects PrN if all the participants use PrN.
//! > Similarly, it selects PrA if all the participants use PrA whereas
//! > it decides to use PrC if all the participants use PrC. … In the
//! > event that some of the participants employ PrA while the others
//! > employ PrN or PrC, the coordinator selects PrAny."
//!
//! The paper does not state a rule for a PrN+PrC mix without PrA; the
//! [`acp_types::SelectionPolicy::PaperStrict`] policy conservatively
//! runs PrAny for *any* heterogeneous population. The `Optimized` policy
//! additionally runs PrA for populations mixing only PrN and PrA — safe
//! because PrN participants acknowledge everything PrA expects and both
//! protocols share the abort presumption. (The symmetric-looking
//! "PrN+PrC ⇒ plain PrC" is **not** safe and is deliberately absent: a
//! pure-PrC coordinator forgets commits immediately, so a PrN
//! participant that crashed before receiving the commit would later
//! inquire and, under PrN's abort presumption, be told the wrong thing —
//! see the `u2pc` tests, which exhibit exactly that violation.)

use acp_types::{CommitMode, ParticipantEntry, ProtocolKind, SelectionPolicy};

/// Select the commit mode for a transaction.
///
/// Panics on an empty participant list — a distributed transaction has
/// at least one participant.
#[must_use]
pub fn select_mode(policy: SelectionPolicy, participants: &[ParticipantEntry]) -> CommitMode {
    assert!(!participants.is_empty(), "transaction with no participants");
    let first = participants[0].protocol;
    if participants.iter().all(|p| p.protocol == first) {
        return first.into();
    }
    match policy {
        SelectionPolicy::PaperStrict => CommitMode::PrAny,
        SelectionPolicy::Optimized => {
            let has = |k: ProtocolKind| participants.iter().any(|p| p.protocol == k);
            if !has(ProtocolKind::PrC) {
                // Mix of PrN and PrA only.
                CommitMode::PrA
            } else {
                CommitMode::PrAny
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::SiteId;

    fn pop(protos: &[ProtocolKind]) -> Vec<ParticipantEntry> {
        protos
            .iter()
            .enumerate()
            .map(|(i, &p)| ParticipantEntry::new(SiteId::new(i as u32 + 1), p))
            .collect()
    }

    #[test]
    fn homogeneous_populations_run_their_own_protocol() {
        for policy in [SelectionPolicy::PaperStrict, SelectionPolicy::Optimized] {
            for p in ProtocolKind::ALL {
                let mode = select_mode(policy, &pop(&[p, p, p]));
                assert_eq!(mode, CommitMode::from(p), "{policy} {p}");
            }
        }
    }

    #[test]
    fn paper_strict_runs_prany_for_every_mix() {
        use ProtocolKind::*;
        for mix in [
            vec![PrN, PrA],
            vec![PrN, PrC],
            vec![PrA, PrC],
            vec![PrN, PrA, PrC],
        ] {
            assert_eq!(
                select_mode(SelectionPolicy::PaperStrict, &pop(&mix)),
                CommitMode::PrAny,
                "{mix:?}"
            );
        }
    }

    #[test]
    fn optimized_runs_pra_for_prn_pra_mixes_only() {
        use ProtocolKind::*;
        assert_eq!(
            select_mode(SelectionPolicy::Optimized, &pop(&[PrN, PrA])),
            CommitMode::PrA
        );
        assert_eq!(
            select_mode(SelectionPolicy::Optimized, &pop(&[PrA, PrN, PrA])),
            CommitMode::PrA
        );
        // Any PrC in a mix forces full PrAny.
        assert_eq!(
            select_mode(SelectionPolicy::Optimized, &pop(&[PrN, PrC])),
            CommitMode::PrAny
        );
        assert_eq!(
            select_mode(SelectionPolicy::Optimized, &pop(&[PrA, PrC])),
            CommitMode::PrAny
        );
        assert_eq!(
            select_mode(SelectionPolicy::Optimized, &pop(&[PrN, PrA, PrC])),
            CommitMode::PrAny
        );
    }

    #[test]
    fn single_participant_is_homogeneous() {
        assert_eq!(
            select_mode(SelectionPolicy::PaperStrict, &pop(&[ProtocolKind::PrC])),
            CommitMode::PrC
        );
    }

    #[test]
    #[should_panic(expected = "no participants")]
    fn empty_population_rejected() {
        let _ = select_mode(SelectionPolicy::PaperStrict, &[]);
    }
}
