//! §4.2 — coordinator recovery.
//!
//! > "After a failure, at the beginning of its recovery procedure, the
//! > coordinator re-builds its protocol table by analyzing its stable
//! > log."
//!
//! The analysis classifies each transaction by which records it has:
//!
//! * **decision record, no initiation record** → PrN or PrA was used;
//!   without an end record, re-initiate the decision phase with the
//!   recorded decision. (PrA only ever logs commits, so its recovered
//!   decisions are always commit — footnote 4.)
//! * **initiation record, mode PrC** → no commit/end record means the
//!   transaction must abort (the PrC presumption would otherwise
//!   misread the missing information as commit); a commit record means
//!   the participants commit by presumption and nothing is re-sent.
//! * **initiation record, mode PrAny** → only an initiation record:
//!   abort, re-notifying the PrN and PrC participants but *not* the PrA
//!   participants; initiation + commit records: commit, re-notifying the
//!   PrN and PrA participants but not the PrC participants.
//!
//! In every re-notification case the coordinator then waits for the
//! same acknowledgment set as during normal processing, writes the end
//! record, and forgets.

use crate::action::{Action, TimerPurpose};
use crate::coordinator::plan::CommitPlan;
use crate::coordinator::{Coordinator, Phase, TxnState};
use acp_acta::ActaEvent;
use acp_types::{
    CommitMode, CoordinatorKind, LogPayload, Outcome, ParticipantEntry, Payload, SiteId, TxnId,
};
use acp_wal::scan::TxnLogSummary;
use acp_wal::StableLog;
use std::collections::BTreeSet;

impl<L: StableLog> Coordinator<L> {
    /// Run the §4.2 recovery procedure: analyze the stable log, rebuild
    /// the protocol table, re-send decisions where acknowledgments are
    /// still owed and answer future inquiries from the rebuilt state.
    pub fn recover(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        let records = self.log.records().expect("records");
        self.gc = acp_wal::GcTracker::from_records(&records);
        let summaries = acp_wal::scan::analyze(&records);

        for (txn, summary) in summaries {
            if summary.ended || !summary.coordinator_open() {
                continue;
            }
            self.recover_txn(txn, &summary, &mut out);
        }
        out
    }

    fn recover_txn(&mut self, txn: TxnId, summary: &TxnLogSummary, out: &mut Vec<Action>) {
        let (participants, plan, outcome) = match &summary.initiation {
            Some((mode, participants)) => {
                let plan = self.plan_for_mode(*mode, participants);
                // Initiation without a commit record ⇒ either no decision
                // was made before the failure or abort was decided; both
                // resolve to abort. A commit record fixes commit.
                let outcome = match summary.decision {
                    Some(o) => o,
                    None => Outcome::Abort,
                };
                (participants.clone(), plan, outcome)
            }
            None => {
                // Decision record without initiation: PrN/PrA (or a
                // C2PC coordinator over such a base). The participant
                // list was recorded in the decision record.
                let participants = summary.decision_participants.clone();
                let plan = CommitPlan::derive(self.kind, &participants);
                let outcome = summary
                    .decision
                    .expect("coordinator_open without initiation");
                (participants, plan, outcome)
            }
        };

        // Re-initiating the decision phase is a (re-)decision for the
        // history; the atomicity checker verifies it repeats the
        // original outcome.
        self.decisions.insert(txn, outcome);
        out.push(Action::Acta(ActaEvent::Decide {
            coordinator: self.site,
            txn,
            outcome,
        }));

        // Who is re-notified = exactly who still owes an acknowledgment
        // (footnote 4: PrA participants are not re-sent aborts, PrC
        // participants are not re-sent commits).
        let pending: BTreeSet<SiteId> = plan
            .expected_ackers(outcome, &participants)
            .into_iter()
            .collect();

        if pending.is_empty() {
            // Nothing owed (e.g. a committed PrC transaction): close out
            // with an end record so the log can be garbage collected.
            self.append(txn, LogPayload::End { txn }, false, out);
            out.push(Action::Acta(ActaEvent::DeletePt {
                coordinator: self.site,
                txn,
            }));
            if self.auto_gc {
                let released = self.collect_garbage();
                if released > 0 {
                    out.push(Action::Gc {
                        released_up_to: self.log.low_water_mark().0,
                        records_released: released as u64,
                    });
                }
            }
            return;
        }

        for &to in &pending {
            self.send(txn, to, Payload::Decision { txn, outcome }, out);
        }
        self.table.insert(
            txn,
            TxnState {
                participants,
                plan,
                phase: Phase::Deciding {
                    outcome,
                    pending,
                    resends: 0,
                },
                logged_any: true,
            },
        );
        self.arm_timer(txn, TimerPurpose::AckResend, 0, out);
    }

    /// Reconstruct the plan for a recovered transaction. For a PrAny
    /// coordinator the mode comes from the initiation record (§4.2:
    /// "depending on the identities of the participants recorded in the
    /// initiation record and the protocols that they use, the
    /// coordinator determines which of the two protocols was used");
    /// other kinds re-derive their fixed plan.
    fn plan_for_mode(&self, mode: CommitMode, participants: &[ParticipantEntry]) -> CommitPlan {
        match self.kind {
            CoordinatorKind::PrAny(_) => {
                let derived = CommitPlan::derive(self.kind, participants);
                debug_assert_eq!(
                    derived.mode, mode,
                    "initiation record mode disagrees with re-selection"
                );
                derived
            }
            _ => CommitPlan::derive(self.kind, participants),
        }
    }
}
