//! Engine-level Paxos Commit tests: a hand-driven message pump between
//! `PaxosNode`s, with participant traffic (votes, acks) injected
//! directly. Full-stack runs (real participants, timers, crashes) live
//! in `sim::tests` and the integration suites.

use super::*;
use acp_wal::MemLog;
use std::collections::VecDeque;

fn t() -> TxnId {
    TxnId::new(7)
}

fn s(n: u32) -> SiteId {
    SiteId::new(n)
}

/// A zero-latency FIFO network between paxos nodes. Messages to
/// non-node sites (the participants) are captured in `to_parts`;
/// messages to dead nodes are dropped. Engine timers are captured so
/// tests can fire them by purpose.
struct Net {
    nodes: BTreeMap<SiteId, PaxosNode<MemLog>>,
    queue: VecDeque<(SiteId, SiteId, Payload)>,
    dead: BTreeSet<SiteId>,
    to_parts: Vec<(SiteId, SiteId, Payload)>,
    timers: Vec<(SiteId, u64, TimerPurpose)>,
}

impl Net {
    fn new(config: &PaxosConfig) -> Self {
        let nodes = config
            .acceptors
            .iter()
            .map(|&site| (site, PaxosNode::new(site, config.clone(), MemLog::new())))
            .collect();
        Net {
            nodes,
            queue: VecDeque::new(),
            dead: BTreeSet::new(),
            to_parts: Vec::new(),
            timers: Vec::new(),
        }
    }

    fn node(&self, site: SiteId) -> &PaxosNode<MemLog> {
        &self.nodes[&site]
    }

    fn dispatch(&mut self, from: SiteId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    if self.nodes.contains_key(&to) {
                        self.queue.push_back((from, to, payload));
                    } else {
                        self.to_parts.push((from, to, payload));
                    }
                }
                Action::SetTimer { token, purpose, .. } => {
                    self.timers.push((from, token, purpose));
                }
                _ => {}
            }
        }
    }

    /// Deliver everything queued (and whatever those deliveries queue).
    fn pump(&mut self) {
        while let Some((from, to, payload)) = self.queue.pop_front() {
            if self.dead.contains(&to) || self.dead.contains(&from) {
                continue;
            }
            let actions = self
                .nodes
                .get_mut(&to)
                .expect("queued to a node")
                .on_message(from, &payload);
            self.dispatch(to, actions);
        }
    }

    /// Inject a participant-side message into a node and pump.
    fn inject(&mut self, from: SiteId, to: SiteId, payload: Payload) {
        let actions = self
            .nodes
            .get_mut(&to)
            .expect("inject to a node")
            .on_message(from, &payload);
        self.dispatch(to, actions);
        self.pump();
    }

    /// Fire the most recently armed timer of `purpose` at `site`.
    fn fire(&mut self, site: SiteId, purpose: TimerPurpose) {
        let idx = self
            .timers
            .iter()
            .rposition(|&(si, _, p)| si == site && p == purpose)
            .expect("timer armed");
        let (_, token, _) = self.timers.remove(idx);
        let actions = self
            .nodes
            .get_mut(&site)
            .expect("timer at a node")
            .on_timer(token);
        self.dispatch(site, actions);
        self.pump();
    }

    fn drain_to_parts(&mut self) -> Vec<(SiteId, SiteId, Payload)> {
        std::mem::take(&mut self.to_parts)
    }
}

fn count_kind(msgs: &[(SiteId, SiteId, Payload)], kind: &str) -> usize {
    msgs.iter().filter(|(_, _, p)| p.kind_name() == kind).count()
}

#[test]
fn config_shape() {
    let c = PaxosConfig::new(vec![s(0), s(3), s(4)]);
    assert_eq!(c.f(), 1);
    assert_eq!(c.quorum(), 2);
    assert_eq!(c.leader(), s(0));
    assert_eq!(c.rank(s(4)), Some(2));
    assert_eq!(c.rank(s(1)), None);
}

#[test]
#[should_panic(expected = "2f + 1")]
fn config_rejects_even_acceptor_counts() {
    let _ = PaxosConfig::new(vec![s(0), s(3)]);
}

#[test]
fn f0_clean_commit_matches_prn_shape() {
    let config = PaxosConfig::new(vec![s(0)]);
    let mut net = Net::new(&config);
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1), s(2)]);
    net.dispatch(s(0), actions);
    net.pump();
    let msgs = net.drain_to_parts();
    assert_eq!(count_kind(&msgs, "prepare"), 2);

    net.inject(s(1), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    assert_eq!(net.node(s(0)).decided(t()), None, "one vote is not enough");
    net.inject(s(2), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    assert_eq!(net.node(s(0)).decided(t()), Some(Outcome::Commit));
    let msgs = net.drain_to_parts();
    assert_eq!(count_kind(&msgs, "decision"), 2);

    net.inject(s(1), s(0), Payload::Ack { txn: t() });
    net.inject(s(2), s(0), Payload::Ack { txn: t() });
    assert_eq!(net.node(s(0)).protocol_table_size(), 0);

    // PrN parity at the coordinator: one forced record (the bundle),
    // two records total (bundle + end), 2N messages sent from here.
    let c = net.node(s(0)).costs(t());
    assert_eq!(c.forced_writes, 1);
    assert_eq!(c.log_records, 2);
    assert_eq!(c.messages(), 4);
    assert_eq!(c.paxos, 0, "no paxos traffic at f = 0");
}

#[test]
fn f0_no_vote_aborts_and_excludes_the_no_voter() {
    let config = PaxosConfig::new(vec![s(0)]);
    let mut net = Net::new(&config);
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1), s(2)]);
    net.dispatch(s(0), actions);
    net.pump();
    net.drain_to_parts();

    net.inject(s(1), s(0), Payload::Vote { txn: t(), vote: Vote::No });
    assert_eq!(net.node(s(0)).decided(t()), Some(Outcome::Abort));
    let msgs = net.drain_to_parts();
    let decisions: Vec<SiteId> = msgs
        .iter()
        .filter(|(_, _, p)| p.kind_name() == "decision")
        .map(|&(_, to, _)| to)
        .collect();
    assert_eq!(decisions, vec![s(2)], "the No voter already aborted");

    net.inject(s(2), s(0), Payload::Ack { txn: t() });
    assert_eq!(net.node(s(0)).protocol_table_size(), 0);
}

#[test]
fn f1_clean_commit_counts_match_the_analytic_model() {
    let config = PaxosConfig::new(vec![s(0), s(3), s(4)]);
    let mut net = Net::new(&config);
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1), s(2)]);
    net.dispatch(s(0), actions);
    net.pump();
    net.drain_to_parts();

    net.inject(s(1), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    net.inject(s(2), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    assert_eq!(net.node(s(0)).decided(t()), Some(Outcome::Commit));
    net.inject(s(1), s(0), Payload::Ack { txn: t() });
    net.inject(s(2), s(0), Payload::Ack { txn: t() });

    for site in [s(0), s(3), s(4)] {
        assert_eq!(net.node(site).protocol_table_size(), 0, "{site}");
        // Bundle + end on every acceptor log, then fully reclaimed.
        assert_eq!(net.node(site).log().retained(), 0, "{site}");
        let c = net.node(site).costs(t());
        assert_eq!(c.forced_writes, 1, "{site}: one bundled force");
        assert_eq!(c.log_records, 2, "{site}: bundle + end");
    }

    // Paxos-vocabulary messages across the cluster: 8f = 8.
    let leader = net.node(s(0)).costs(t());
    let acc3 = net.node(s(3)).costs(t());
    let acc4 = net.node(s(4)).costs(t());
    assert_eq!(leader.paxos + acc3.paxos + acc4.paxos, 8);
    // Total cluster-side messages: begin 2 + prepare 2 + phase2a 2 +
    // phase2b 2 + decision 2 + forget 2 = 12 (votes and acks are
    // counted at the participants, bringing the total to 4N + 8f).
    assert_eq!(leader.messages() + acc3.messages() + acc4.messages(), 12);
}

#[test]
fn leader_kill_after_phase2a_fails_over_to_commit() {
    // The headline schedule: under 2PC this transaction is stuck
    // in-doubt (coordinator dead after prepares, before decisions).
    // Under Paxos with 3 acceptors the accepted bundles survive on a
    // quorum and acceptor 3's watchdog re-drives the commit.
    let config = PaxosConfig::new(vec![s(0), s(3), s(4)]);
    let mut net = Net::new(&config);
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1), s(2)]);
    net.dispatch(s(0), actions);
    net.pump();
    net.drain_to_parts();

    // Both votes arrive; the leader proposes and its phase 2a reaches
    // the acceptors — then the leader dies before hearing phase 2b.
    net.inject(s(1), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    net.inject(s(2), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    assert_eq!(net.node(s(0)).decided(t()), Some(Outcome::Commit));
    net.drain_to_parts(); // the leader's decisions die with it below
    net.dead.insert(s(0));

    // Acceptor 3's completion watchdog fires: phase 1 at ballot
    // 1024 + rank, quorum {3, 4}, both report the accepted Prepared
    // bundle — the candidate must re-propose it and reach Commit.
    net.fire(s(3), TimerPurpose::PaxosCompletion);
    assert_eq!(net.node(s(3)).decided(t()), Some(Outcome::Commit));
    let msgs = net.drain_to_parts();
    assert_eq!(count_kind(&msgs, "decision"), 2, "re-driven to both participants");
    assert!(msgs.iter().all(|&(from, _, _)| from == s(3)));

    // Participant acks flow to the new leader; the cluster forgets.
    net.inject(s(1), s(3), Payload::Ack { txn: t() });
    net.inject(s(2), s(3), Payload::Ack { txn: t() });
    assert_eq!(net.node(s(3)).protocol_table_size(), 0);
    assert_eq!(net.node(s(4)).protocol_table_size(), 0);
    assert_eq!(net.node(s(3)).log().retained(), 0);
    assert_eq!(net.node(s(4)).log().retained(), 0);
}

#[test]
fn leader_kill_before_phase2a_fails_over_to_abort() {
    // The leader dies after the prepares but before proposing: no
    // acceptor holds an accepted value, so the candidate's free choice
    // aborts every instance — the participants are released, not stuck.
    let config = PaxosConfig::new(vec![s(0), s(3), s(4)]);
    let mut net = Net::new(&config);
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1), s(2)]);
    net.dispatch(s(0), actions);
    net.pump();
    net.drain_to_parts();
    net.dead.insert(s(0));

    net.fire(s(3), TimerPurpose::PaxosCompletion);
    assert_eq!(net.node(s(3)).decided(t()), Some(Outcome::Abort));
    let msgs = net.drain_to_parts();
    assert_eq!(count_kind(&msgs, "decision"), 2);

    net.inject(s(1), s(3), Payload::Ack { txn: t() });
    net.inject(s(2), s(3), Payload::Ack { txn: t() });
    assert_eq!(net.node(s(3)).protocol_table_size(), 0);
    assert_eq!(net.node(s(4)).protocol_table_size(), 0);
}

#[test]
fn stale_phase2a_is_ignored() {
    let config = PaxosConfig::new(vec![s(0), s(3), s(4)]);
    let mut net = Net::new(&config);
    // Acceptor 3 promises ballot 2049 to a candidate...
    net.inject(s(4), s(3), Payload::Phase1a { txn: t(), ballot: 2049 });
    let records_after_promise = net.node(s(3)).log().retained();
    assert_eq!(records_after_promise, 1, "the promise is durable");
    // ...after which the old leader's ballot-0 bundle must be refused.
    net.inject(
        s(0),
        s(3),
        Payload::Phase2a {
            txn: t(),
            ballot: 0,
            instances: vec![(s(1), true), (s(2), true)],
        },
    );
    assert_eq!(net.node(s(3)).log().retained(), 1, "no acceptance logged");
    assert!(net.queue.is_empty());
    assert_eq!(
        count_kind(&net.to_parts, "phase2b"),
        0,
        "no phase2b for a stale ballot"
    );
}

#[test]
fn forgotten_phase1b_stands_the_candidate_down() {
    let config = PaxosConfig::new(vec![s(0), s(3), s(4)]);
    let mut net = Net::new(&config);
    // Acceptor 3 learns of the txn, then candidacy fires with nobody
    // answering (queue to 4 suppressed by marking it dead).
    net.inject(
        s(0),
        s(3),
        Payload::PaxosBegin {
            txn: t(),
            participants: vec![s(1), s(2)],
        },
    );
    net.dead.insert(s(4));
    net.dead.insert(s(0));
    net.fire(s(3), TimerPurpose::PaxosCompletion);
    assert!(net.node(s(3)).in_flight(t()));

    // A (late) forgotten reply: the transaction completed under the
    // original leader before the watchdog fired. Stand down quietly.
    net.dead.remove(&s(4));
    let ballot = 1024 + 1; // round 1, rank 1
    net.inject(
        s(4),
        s(3),
        Payload::Phase1b {
            txn: t(),
            ballot,
            forgotten: true,
            participants: vec![],
            accepted: vec![],
        },
    );
    assert!(!net.node(s(3)).in_flight(t()));
    assert_eq!(net.node(s(3)).decided(t()), None, "no decision invented");
}

#[test]
fn forgotten_acceptor_answers_phase1a_with_forgotten() {
    let config = PaxosConfig::new(vec![s(0), s(3), s(4)]);
    let mut net = Net::new(&config);
    // Complete a transaction so site 0 has forgotten it.
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1)]);
    net.dispatch(s(0), actions);
    net.pump();
    net.inject(s(1), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    net.inject(s(1), s(0), Payload::Ack { txn: t() });
    assert_eq!(net.node(s(0)).protocol_table_size(), 0);

    // A candidate probing the forgotten transaction is told so.
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .on_message(s(3), &Payload::Phase1a { txn: t(), ballot: 3072 });
    let forgotten = actions.iter().any(|a| {
        matches!(
            a,
            Action::Send {
                payload: Payload::Phase1b { forgotten: true, .. },
                ..
            }
        )
    });
    assert!(forgotten);
}

#[test]
fn crash_recovery_redrives_the_decision_from_the_bundle() {
    let config = PaxosConfig::new(vec![s(0)]);
    let mut net = Net::new(&config);
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1), s(2)]);
    net.dispatch(s(0), actions);
    net.pump();
    net.inject(s(1), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    net.inject(s(2), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    assert_eq!(net.node(s(0)).decided(t()), Some(Outcome::Commit));
    net.drain_to_parts();

    // Crash before any ack; the forced bundle survives, volatile state
    // does not. Recovery re-arms the watchdog, which re-runs phase 1
    // (quorum of one) and must reach the *same* outcome.
    net.timers.clear();
    let node = net.nodes.get_mut(&s(0)).unwrap();
    node.crash();
    assert!(!node.in_flight(t()));
    let actions = node.recover();
    assert!(node.in_flight(t()));
    net.dispatch(s(0), actions);
    net.pump();

    net.fire(s(0), TimerPurpose::PaxosCompletion);
    assert_eq!(net.node(s(0)).decided(t()), Some(Outcome::Commit));
    let msgs = net.drain_to_parts();
    assert_eq!(count_kind(&msgs, "decision"), 2, "decision re-sent");

    net.inject(s(1), s(0), Payload::Ack { txn: t() });
    net.inject(s(2), s(0), Payload::Ack { txn: t() });
    assert_eq!(net.node(s(0)).protocol_table_size(), 0);
    assert_eq!(net.node(s(0)).log().retained(), 0, "log reclaimed");
}

#[test]
fn inquiry_answers_follow_decision_then_presumption() {
    let config = PaxosConfig::new(vec![s(0)]);
    let mut net = Net::new(&config);
    let actions = net
        .nodes
        .get_mut(&s(0))
        .unwrap()
        .begin_commit(t(), &[s(1), s(2)]);
    net.dispatch(s(0), actions);
    net.pump();

    // Voting phase: silence (the participant retries).
    let acts = net.nodes.get_mut(&s(0)).unwrap().on_message(
        s(1),
        &Payload::Inquiry { txn: t(), protocol: acp_types::ProtocolKind::PrN },
    );
    assert!(acts.iter().all(|a| !matches!(a, Action::Send { .. })));

    // After the decision: the real outcome.
    net.inject(s(1), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    net.inject(s(2), s(0), Payload::Vote { txn: t(), vote: Vote::Yes });
    let acts = net.nodes.get_mut(&s(0)).unwrap().on_message(
        s(1),
        &Payload::Inquiry { txn: t(), protocol: acp_types::ProtocolKind::PrN },
    );
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::Send {
            payload: Payload::InquiryResponse { outcome: Outcome::Commit, .. },
            ..
        }
    )));

    // Unknown transaction: the hidden abort presumption.
    let acts = net.nodes.get_mut(&s(0)).unwrap().on_message(
        s(9),
        &Payload::Inquiry {
            txn: TxnId::new(99),
            protocol: acp_types::ProtocolKind::PrN,
        },
    );
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::Send {
            payload: Payload::InquiryResponse { outcome: Outcome::Abort, .. },
            ..
        }
    )));
}
