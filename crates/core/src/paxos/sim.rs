//! Deterministic sim harness for Paxos Commit clusters.
//!
//! Site layout: the leader (acceptor rank 0) at site 0, `N`
//! participants at sites `1..=N` (plain PrN [`Participant`] engines —
//! Paxos Commit changes the coordinator side only), and the `2f` remote
//! acceptors at sites `N+1..=N+2f`.
//!
//! Unlike [`crate::harness::Scenario`]'s `FailureSchedule`, failures
//! here distinguish **kills** (permanent fail-stop, never recovered —
//! the headline leader-`kill -9` case) from **crashes** (fail-stop with
//! a later recovery that replays the WAL).

use super::{PaxosConfig, PaxosNode};
use crate::action::Action;
use crate::harness::{HarnessLog, TimerDelays};
use crate::participant::Participant;

use acp_acta::{ActaEvent, History};
use acp_sim::{Context, NetworkConfig, Process, SimTime, Trace, World};
use acp_types::{CostCounters, Message, Outcome, ProtocolKind, SiteId, TxnId, Vote};
use acp_wal::{GroupCommitLog, MemLog};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One transaction in a Paxos scenario (all participants take part).
#[derive(Clone, Debug)]
pub struct PaxosTxnSpec {
    /// The transaction id.
    pub txn: TxnId,
    /// When the leader starts commit processing.
    pub start_at: SimTime,
    /// Per-site votes; sites not listed vote `Yes`.
    pub votes: BTreeMap<SiteId, Vote>,
    /// Client abort request at this time.
    pub abort_at: Option<SimTime>,
}

/// A complete Paxos Commit experiment description.
#[derive(Clone, Debug)]
pub struct PaxosScenario {
    /// Participant count `N` (sites `1..=N`).
    pub n_participants: usize,
    /// Tolerated failures `f` (acceptors: site 0 plus `N+1..=N+2f`).
    pub f: usize,
    /// The workload.
    pub txns: Vec<PaxosTxnSpec>,
    /// Network model.
    pub network: NetworkConfig,
    /// RNG seed (drives latencies, loss).
    pub seed: u64,
    /// Timer configuration.
    pub delays: TimerDelays,
    /// Safety valve for the event loop.
    pub max_events: u64,
    /// Permanent fail-stops: `(site, at)` — the site never recovers.
    pub kills: Vec<(SiteId, SimTime)>,
    /// Crash-and-recover: `(site, crash_at, recover_at)`.
    pub crashes: Vec<(SiteId, SimTime, SimTime)>,
    /// Bidirectional link severances: `(a, b, from, until)` — both
    /// directions between `a` and `b` drop messages in `[from, until)`,
    /// then the link heals.
    pub partitions: Vec<(SiteId, SiteId, SimTime, SimTime)>,
}

impl PaxosScenario {
    /// A clean scenario: `N` participants, tolerance `f`, reliable
    /// 200us network, no failures, no transactions yet.
    #[must_use]
    pub fn new(n_participants: usize, f: usize) -> Self {
        PaxosScenario {
            n_participants,
            f,
            txns: Vec::new(),
            network: NetworkConfig::reliable(SimTime::from_micros(200)),
            seed: 0,
            delays: TimerDelays::default(),
            max_events: 1_000_000,
            kills: Vec::new(),
            crashes: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// The leader's site id (always 0).
    #[must_use]
    pub fn leader_site(&self) -> SiteId {
        SiteId::new(0)
    }

    /// Participant site ids `1..=N`.
    #[must_use]
    pub fn participant_sites(&self) -> Vec<SiteId> {
        (1..=self.n_participants as u32).map(SiteId::new).collect()
    }

    /// Remote acceptor site ids `N+1..=N+2f`.
    #[must_use]
    pub fn remote_acceptor_sites(&self) -> Vec<SiteId> {
        let n = self.n_participants as u32;
        (n + 1..=n + 2 * self.f as u32).map(SiteId::new).collect()
    }

    /// The cluster configuration (leader first, then remote acceptors).
    #[must_use]
    pub fn config(&self) -> PaxosConfig {
        let mut acceptors = vec![self.leader_site()];
        acceptors.extend(self.remote_acceptor_sites());
        PaxosConfig::new(acceptors)
    }

    /// Add a transaction started at `start_at` with every site voting
    /// `Yes`.
    pub fn add_txn(&mut self, txn: TxnId, start_at: SimTime) -> &mut PaxosTxnSpec {
        self.txns.push(PaxosTxnSpec {
            txn,
            start_at,
            votes: BTreeMap::new(),
            abort_at: None,
        });
        self.txns.last_mut().expect("just pushed")
    }
}

/// What a Paxos scenario run produced.
#[derive(Clone, Debug)]
pub struct PaxosOutcome {
    /// The complete ACTA history.
    pub history: History,
    /// The simulator trace.
    pub trace: Trace,
    /// The decision per transaction (union over acceptor nodes; the
    /// atomicity checker separately asserts the nodes never disagree).
    pub decided: BTreeMap<TxnId, Outcome>,
    /// Decisions per deciding site (leader or failover candidate).
    pub decided_by_site: BTreeMap<(SiteId, TxnId), Outcome>,
    /// Outcomes enforced per (participant site, txn).
    pub enforced: BTreeMap<(SiteId, TxnId), Outcome>,
    /// Transactions a participant still holds prepared and unresolved
    /// at quiescence — the blocked/in-doubt survivors 2PC is famous for.
    pub in_doubt: Vec<(SiteId, TxnId)>,
    /// Per-transaction costs at the leader.
    pub leader_costs: BTreeMap<TxnId, CostCounters>,
    /// Per-transaction costs at each remote acceptor.
    pub acceptor_costs: BTreeMap<(SiteId, TxnId), CostCounters>,
    /// Per-transaction costs at each participant.
    pub participant_costs: BTreeMap<(SiteId, TxnId), CostCounters>,
    /// Live transactions at each paxos node at the end of the run.
    pub node_table_sizes: BTreeMap<SiteId, usize>,
    /// Log records retained per paxos node at the end of the run.
    pub node_log_retained: BTreeMap<SiteId, usize>,
    /// Events the simulator processed.
    pub events_processed: u64,
}

impl PaxosOutcome {
    /// Aggregate cost of one transaction across the whole system.
    #[must_use]
    pub fn total_costs(&self, txn: TxnId) -> CostCounters {
        let mut total = self.leader_costs.get(&txn).copied().unwrap_or_default();
        for ((_, t), c) in self.acceptor_costs.iter().chain(&self.participant_costs) {
            if *t == txn {
                total += *c;
            }
        }
        total
    }
}

enum PaxosInner {
    Node {
        engine: PaxosNode<HarnessLog>,
        /// Leader only: transactions to start, with client-abort times.
        starts: Vec<(SimTime, TxnId, Vec<SiteId>, Option<SimTime>)>,
    },
    Part(Participant<HarnessLog>),
}

enum PaxosTimer {
    Engine(u64),
    Start(u64),
    ClientAbort(TxnId),
}

/// A site process wrapping either a [`PaxosNode`] or a [`Participant`].
pub struct PaxosProc {
    inner: PaxosInner,
    history: Rc<RefCell<History>>,
    delays: TimerDelays,
    timer_map: BTreeMap<u64, PaxosTimer>,
    /// Client requests not yet submitted (survive leader crashes and
    /// are re-armed by `on_recover`, like the main harness).
    pending_starts: BTreeMap<u64, (SimTime, TxnId, Vec<SiteId>)>,
    next_token: u64,
}

impl PaxosProc {
    fn node(&self) -> &PaxosNode<HarnessLog> {
        match &self.inner {
            PaxosInner::Node { engine, .. } => engine,
            PaxosInner::Part(_) => panic!("not a paxos node site"),
        }
    }

    fn participant(&self) -> &Participant<HarnessLog> {
        match &self.inner {
            PaxosInner::Part(p) => p,
            PaxosInner::Node { .. } => panic!("not a participant site"),
        }
    }

    fn handle_actions(&mut self, actions: Vec<Action>, ctx: &mut Context) {
        for action in actions {
            match action {
                Action::Send { to, payload } => ctx.send(to, payload),
                Action::Enforce { txn, outcome } => {
                    ctx.note("enforce", format!("{txn} {outcome}"));
                }
                Action::SetTimer {
                    token,
                    purpose,
                    attempt,
                } => {
                    let harness_token = self.next_token;
                    self.next_token += 1;
                    self.timer_map
                        .insert(harness_token, PaxosTimer::Engine(token));
                    let salt = (u64::from(ctx.self_id.raw()) << 32) ^ token;
                    ctx.set_timer(
                        self.delays.delay_jittered(purpose, attempt, salt),
                        harness_token,
                    );
                }
                Action::Acta(event) => {
                    if let ActaEvent::Decide { txn, outcome, .. } = &event {
                        ctx.note("decide", format!("{txn} {outcome}"));
                    }
                    self.history.borrow_mut().push(event);
                }
                Action::Gc { .. } => {}
            }
        }
    }
}

impl Process for PaxosProc {
    fn on_start(&mut self, ctx: &mut Context) {
        if let PaxosInner::Node { starts, .. } = &mut self.inner {
            let starts = std::mem::take(starts);
            for (at, txn, participants, abort_at) in starts {
                let start_key = self.next_token;
                self.next_token += 1;
                self.pending_starts
                    .insert(start_key, (at, txn, participants));
                let harness_token = self.next_token;
                self.next_token += 1;
                self.timer_map
                    .insert(harness_token, PaxosTimer::Start(start_key));
                ctx.set_timer(at, harness_token);
                if let Some(abort_at) = abort_at {
                    let abort_token = self.next_token;
                    self.next_token += 1;
                    self.timer_map
                        .insert(abort_token, PaxosTimer::ClientAbort(txn));
                    ctx.set_timer(abort_at, abort_token);
                }
            }
        }
    }

    fn on_message(&mut self, msg: &Message, ctx: &mut Context) {
        let actions = match &mut self.inner {
            PaxosInner::Node { engine, .. } => engine.on_message(msg.from, &msg.payload),
            PaxosInner::Part(p) => p.on_message(msg.from, &msg.payload),
        };
        self.handle_actions(actions, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        let Some(entry) = self.timer_map.remove(&token) else {
            return;
        };
        let actions = match entry {
            PaxosTimer::Engine(engine_token) => match &mut self.inner {
                PaxosInner::Node { engine, .. } => engine.on_timer(engine_token),
                PaxosInner::Part(p) => p.on_timer(engine_token),
            },
            PaxosTimer::Start(start_key) => {
                let Some((_, txn, participants)) = self.pending_starts.remove(&start_key) else {
                    return;
                };
                match &mut self.inner {
                    PaxosInner::Node { engine, .. } => engine.begin_commit(txn, &participants),
                    PaxosInner::Part(_) => unreachable!("starts only live on the leader"),
                }
            }
            PaxosTimer::ClientAbort(txn) => match &mut self.inner {
                PaxosInner::Node { engine, .. } => engine.abort_request(txn),
                PaxosInner::Part(_) => unreachable!("client aborts only live on the leader"),
            },
        };
        self.handle_actions(actions, ctx);
    }

    fn on_crash(&mut self) {
        self.timer_map.clear();
        match &mut self.inner {
            PaxosInner::Node { engine, .. } => {
                self.history.borrow_mut().push(ActaEvent::Crash {
                    site: engine.site(),
                });
                engine.crash();
            }
            PaxosInner::Part(p) => {
                self.history
                    .borrow_mut()
                    .push(ActaEvent::Crash { site: p.site() });
                p.crash();
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Context) {
        let (site, actions) = match &mut self.inner {
            PaxosInner::Node { engine, .. } => (engine.site(), engine.recover()),
            PaxosInner::Part(p) => (p.site(), p.recover()),
        };
        self.history.borrow_mut().push(ActaEvent::Recover { site });
        self.handle_actions(actions, ctx);
        let keys: Vec<u64> = self.pending_starts.keys().copied().collect();
        for start_key in keys {
            let (at, _, _) = self.pending_starts[&start_key];
            let delay = at - ctx.now;
            let harness_token = self.next_token;
            self.next_token += 1;
            self.timer_map
                .insert(harness_token, PaxosTimer::Start(start_key));
            ctx.set_timer(delay, harness_token);
        }
    }
}

/// Run a Paxos Commit scenario to quiescence.
#[must_use]
pub fn run_paxos_scenario(scenario: &PaxosScenario) -> PaxosOutcome {
    let history = Rc::new(RefCell::new(History::new()));
    let mut world: World<PaxosProc> = World::new(scenario.network, scenario.seed);
    let config = scenario.config();
    let make_log = || GroupCommitLog::passthrough(MemLog::new());

    let proc_shell = |inner, history: &Rc<RefCell<History>>, delays| PaxosProc {
        inner,
        history: Rc::clone(history),
        delays,
        timer_map: BTreeMap::new(),
        pending_starts: BTreeMap::new(),
        next_token: 0,
    };

    // The leader (acceptor rank 0) at site 0.
    let leader = scenario.leader_site();
    let participants = scenario.participant_sites();
    let starts: Vec<(SimTime, TxnId, Vec<SiteId>, Option<SimTime>)> = scenario
        .txns
        .iter()
        .map(|t| (t.start_at, t.txn, participants.clone(), t.abort_at))
        .collect();
    world.add(
        leader,
        proc_shell(
            PaxosInner::Node {
                engine: PaxosNode::new(leader, config.clone(), make_log()),
                starts,
            },
            &history,
            scenario.delays,
        ),
    );

    // Participants at sites 1..=N: plain PrN engines.
    for &site in &participants {
        let mut engine = Participant::new(site, ProtocolKind::PrN, make_log());
        for spec in &scenario.txns {
            if let Some(&vote) = spec.votes.get(&site) {
                engine.set_intent(spec.txn, vote);
            }
        }
        world.add(
            site,
            proc_shell(PaxosInner::Part(engine), &history, scenario.delays),
        );
    }

    // Remote acceptors at sites N+1..=N+2f.
    for site in scenario.remote_acceptor_sites() {
        world.add(
            site,
            proc_shell(
                PaxosInner::Node {
                    engine: PaxosNode::new(site, config.clone(), make_log()),
                    starts: Vec::new(),
                },
                &history,
                scenario.delays,
            ),
        );
    }

    for &(site, at) in &scenario.kills {
        world.schedule_crash(site, at);
    }
    for &(site, crash_at, recover_at) in &scenario.crashes {
        assert!(recover_at > crash_at, "recovery must follow the crash");
        world.schedule_crash(site, crash_at);
        world.schedule_recover(site, recover_at);
    }

    world.start();

    // Partitions are applied by stepping the world to each breakpoint:
    // sever at `from`, heal at `until`. The network drops at send time,
    // so messages already in flight when the link severs still arrive —
    // matching the socket layer, where severing closes the listener, not
    // the kernel buffers.
    let mut breakpoints: Vec<(SimTime, bool, SiteId, SiteId)> = Vec::new();
    for &(a, b, from, until) in &scenario.partitions {
        assert!(until > from, "a partition window must be non-empty");
        breakpoints.push((from, true, a, b));
        breakpoints.push((until, false, a, b));
    }
    breakpoints.sort_by_key(|&(at, sever, _, _)| (at, !sever));
    for (at, sever, a, b) in breakpoints {
        world.run_until(at);
        if sever {
            world.network_mut().partition(a, b);
        } else {
            world.network_mut().heal(a, b);
        }
    }

    world.run_until_quiescent(scenario.max_events);

    // ---- collect ----
    let mut decided = BTreeMap::new();
    let mut decided_by_site = BTreeMap::new();
    let mut enforced = BTreeMap::new();
    let mut in_doubt = Vec::new();
    let mut leader_costs = BTreeMap::new();
    let mut acceptor_costs = BTreeMap::new();
    let mut participant_costs = BTreeMap::new();
    let mut node_table_sizes = BTreeMap::new();
    let mut node_log_retained = BTreeMap::new();

    let mut paxos_sites = vec![leader];
    paxos_sites.extend(scenario.remote_acceptor_sites());
    for site in paxos_sites {
        let node = world.process(site).node();
        node_table_sizes.insert(site, node.protocol_table_size());
        node_log_retained.insert(site, node.log().inner().retained());
        for spec in &scenario.txns {
            if let Some(o) = node.decided(spec.txn) {
                decided.entry(spec.txn).or_insert(o);
                decided_by_site.insert((site, spec.txn), o);
            }
            if site == leader {
                leader_costs.insert(spec.txn, node.costs(spec.txn));
            } else {
                acceptor_costs.insert((site, spec.txn), node.costs(spec.txn));
            }
        }
    }

    for &site in &participants {
        let p = world.process(site).participant();
        for (&txn, &o) in p.enforced_all() {
            enforced.insert((site, txn), o);
        }
        for txn in p.in_doubt_txns() {
            in_doubt.push((site, txn));
        }
        for spec in &scenario.txns {
            participant_costs.insert((site, spec.txn), p.costs(spec.txn));
        }
    }

    let history = history.borrow().clone();
    PaxosOutcome {
        history,
        trace: world.trace().clone(),
        decided,
        decided_by_site,
        enforced,
        in_doubt,
        leader_costs,
        acceptor_costs,
        participant_costs,
        node_table_sizes,
        node_log_retained,
        events_processed: world.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::predict_paxos;
    use acp_acta::{check_atomicity, check_safe_state};
    use acp_types::CoordinatorKind;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    fn assert_clean(outcome: &PaxosOutcome) {
        let v = check_atomicity(&outcome.history);
        assert!(v.is_empty(), "atomicity violations: {v:?}");
        for &(site, txn) in outcome.decided_by_site.keys() {
            let v = check_safe_state(&outcome.history, site, txn);
            assert!(v.is_empty(), "safe-state violations at {site}: {v:?}");
        }
    }

    #[test]
    fn clean_commit_matches_the_analytic_model() {
        for n in 1..=3usize {
            let mut s = PaxosScenario::new(n, 1);
            s.add_txn(TxnId::new(1), ms(1));
            let out = run_paxos_scenario(&s);
            assert_eq!(out.decided[&TxnId::new(1)], Outcome::Commit);
            assert!(out.in_doubt.is_empty());
            assert_clean(&out);

            let model = predict_paxos(n, 1, Outcome::Commit);
            let leader = out.leader_costs[&TxnId::new(1)];
            assert_eq!(leader.forced_writes, model.leader_forces, "n={n}");
            assert_eq!(leader.log_records, model.leader_records, "n={n}");
            let acc: CostCounters = out
                .acceptor_costs
                .values()
                .fold(CostCounters::default(), |mut a, c| {
                    a += *c;
                    a
                });
            assert_eq!(acc.forced_writes, model.acceptor_forces, "n={n}");
            assert_eq!(acc.log_records, model.acceptor_records, "n={n}");
            let parts: CostCounters = out
                .participant_costs
                .values()
                .fold(CostCounters::default(), |mut a, c| {
                    a += *c;
                    a
                });
            assert_eq!(parts.forced_writes, model.part_forces, "n={n}");
            assert_eq!(parts.log_records, model.part_records, "n={n}");
            assert_eq!(out.total_costs(TxnId::new(1)).messages(), model.messages);

            // Fully reclaimed everywhere at quiescence.
            assert!(out.node_table_sizes.values().all(|&s| s == 0));
            assert!(out.node_log_retained.values().all(|&r| r == 0));
        }
    }

    /// The headline schedule from the issue, once under each tolerance.
    ///
    /// The adversary severs the leader from both participants just
    /// after the votes are on the wire, then `kill -9`s the leader. The
    /// leader decides commit and logs it durably, but no participant
    /// ever hears: under 2PC (`f = 0`) both participants are stuck
    /// in-doubt forever. With `f = 1` the accepted Prepared bundles
    /// survive on the acceptor quorum and acceptor rank 1 re-drives the
    /// *same* commit.
    fn headline(f: usize) -> PaxosOutcome {
        let t = TxnId::new(9);
        let mut s = PaxosScenario::new(2, f);
        s.add_txn(t, ms(1));
        let leader = s.leader_site();
        for p in s.participant_sites() {
            s.partitions
                .push((leader, p, SimTime::from_micros(1300), ms(10_000)));
        }
        s.kills.push((leader, ms(2)));
        run_paxos_scenario(&s)
    }

    #[test]
    fn headline_leader_kill_blocks_2pc() {
        let out = headline(0);
        let t = TxnId::new(9);
        // The coordinator decided and durably logged commit...
        assert_eq!(out.decided.get(&t), Some(&Outcome::Commit));
        // ...but died before any participant heard: both are stuck
        // in-doubt, with nothing enforced, for the rest of time.
        assert!(out.enforced.is_empty());
        let mut stuck = out.in_doubt.clone();
        stuck.sort();
        assert_eq!(stuck, vec![(SiteId::new(1), t), (SiteId::new(2), t)]);
    }

    #[test]
    fn headline_leader_kill_commits_under_paxos() {
        let out = headline(1);
        let t = TxnId::new(9);
        assert_eq!(out.decided.get(&t), Some(&Outcome::Commit));
        // Acceptor rank 1 (site 3) completed the failover.
        assert_eq!(
            out.decided_by_site.get(&(SiteId::new(3), t)),
            Some(&Outcome::Commit)
        );
        // Both participants enforced commit; nobody is in doubt.
        assert_eq!(out.enforced.get(&(SiteId::new(1), t)), Some(&Outcome::Commit));
        assert_eq!(out.enforced.get(&(SiteId::new(2), t)), Some(&Outcome::Commit));
        assert!(out.in_doubt.is_empty());
        // The survivors' protocol tables and logs are fully reclaimed.
        assert_eq!(out.node_table_sizes[&SiteId::new(3)], 0);
        assert_eq!(out.node_table_sizes[&SiteId::new(4)], 0);
        assert_eq!(out.node_log_retained[&SiteId::new(3)], 0);
        assert_eq!(out.node_log_retained[&SiteId::new(4)], 0);
        assert_clean(&out);
    }

    #[test]
    fn acceptor_minority_partition_does_not_block_commit() {
        // Sever one acceptor of three from everyone for the whole run:
        // the quorum {leader, rank 1} still decides.
        let t = TxnId::new(3);
        let mut s = PaxosScenario::new(2, 1);
        s.add_txn(t, ms(1));
        let minority = SiteId::new(4);
        for site in [SiteId::new(0), SiteId::new(1), SiteId::new(2), SiteId::new(3)] {
            s.partitions
                .push((minority, site, SimTime::from_micros(500), ms(5_000)));
        }
        let out = run_paxos_scenario(&s);
        assert_eq!(out.decided.get(&t), Some(&Outcome::Commit));
        assert!(out.in_doubt.is_empty());
        assert_clean(&out);
        // The partitioned acceptor never learned of the transaction.
        assert_eq!(out.node_table_sizes[&minority], 0);
    }

    #[test]
    fn leader_crash_and_recovery_redrives_the_decision() {
        // f = 0: no failover possible, but the forced bundle means the
        // recovered leader re-decides the same outcome from its WAL.
        let t = TxnId::new(5);
        let mut s = PaxosScenario::new(2, 0);
        s.add_txn(t, ms(1));
        // Crash after the decision is logged (1.4ms) but before the
        // participant acks arrive (1.8ms); recover well after.
        s.crashes
            .push((s.leader_site(), SimTime::from_micros(1700), ms(50)));
        let out = run_paxos_scenario(&s);
        assert_eq!(out.decided.get(&t), Some(&Outcome::Commit));
        assert_eq!(out.enforced.get(&(SiteId::new(1), t)), Some(&Outcome::Commit));
        assert_eq!(out.enforced.get(&(SiteId::new(2), t)), Some(&Outcome::Commit));
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.node_table_sizes[&SiteId::new(0)], 0);
        assert_eq!(out.node_log_retained[&SiteId::new(0)], 0);
        assert_clean(&out);
    }

    #[test]
    fn lossy_sweep_stays_atomic_and_reclaims() {
        for seed in 0..6u64 {
            let mut s = PaxosScenario::new(2, 1);
            s.network = NetworkConfig::lossy(0.10);
            s.seed = seed;
            s.add_txn(TxnId::new(1), ms(1));
            s.add_txn(TxnId::new(2), ms(2));
            let out = run_paxos_scenario(&s);
            assert_clean(&out);
            assert!(out.in_doubt.is_empty(), "seed {seed}: {:?}", out.in_doubt);
            for txn in [TxnId::new(1), TxnId::new(2)] {
                assert!(out.decided.contains_key(&txn), "seed {seed}: {txn} undecided");
            }
            assert!(
                out.node_table_sizes.values().all(|&n| n == 0),
                "seed {seed}: tables not reclaimed: {:?}",
                out.node_table_sizes
            );
        }
    }

    /// Satellite 3: with one acceptor, Paxos Commit *is* 2PC. Decisions,
    /// enforcement and every cost counter must match PrN on a shared
    /// schedule corpus. (The all-ReadOnly corner is excluded by design:
    /// Paxos still runs consensus so a failover candidate can never
    /// contradict the leader — see the module docs.)
    #[test]
    fn f0_degenerates_to_prn_on_a_shared_corpus() {
        // (n, no-voter, client-abort-at)
        let corpus: [(usize, Option<u32>, Option<SimTime>); 5] = [
            (1, None, None),
            (2, None, None),
            (3, None, None),
            (2, Some(1), None),
            (2, None, Some(SimTime::from_micros(1300))),
        ];
        for (i, &(n, no_voter, abort_at)) in corpus.iter().enumerate() {
            let t = TxnId::new(1 + i as u64);

            let mut ps = PaxosScenario::new(n, 0);
            let spec = ps.add_txn(t, ms(1));
            if let Some(site) = no_voter {
                spec.votes.insert(SiteId::new(site), Vote::No);
            }
            spec.abort_at = abort_at;
            let paxos = run_paxos_scenario(&ps);

            let protocols = vec![ProtocolKind::PrN; n];
            let mut cs = crate::harness::Scenario::new(
                CoordinatorKind::Single(ProtocolKind::PrN),
                &protocols,
            );
            let spec = cs.add_txn(t, ms(1));
            if let Some(site) = no_voter {
                spec.votes.insert(SiteId::new(site), Vote::No);
            }
            spec.abort_at = abort_at;
            let prn = crate::harness::run_scenario(&cs);

            assert_eq!(paxos.decided, prn.decided, "case {i}");
            assert_eq!(paxos.enforced, prn.enforced, "case {i}");
            assert_eq!(
                paxos.leader_costs[&t], prn.coordinator_costs[&t],
                "case {i}: coordinator costs diverge"
            );
            assert_eq!(
                paxos.participant_costs, prn.participant_costs,
                "case {i}: participant costs diverge"
            );
            assert_eq!(
                paxos.node_table_sizes[&ps.leader_site()],
                prn.coordinator_table_size,
                "case {i}"
            );
            assert_eq!(
                paxos.node_log_retained[&ps.leader_site()],
                prn.coordinator_log_retained,
                "case {i}"
            );
        }
    }
}
