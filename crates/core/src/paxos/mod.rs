//! Paxos Commit (Gray & Lamport): a non-blocking replicated
//! coordinator beside the presumption engines.
//!
//! Two-phase commit is the `f = 0` degeneracy of Paxos Commit: one
//! acceptor, co-located with the leader, and the protocol's message and
//! force counts collapse onto PrN's. With `2f + 1` acceptors the
//! decision survives the permanent failure of the leader and up to `f`
//! acceptors — the classic 2PC in-doubt window closes.
//!
//! ## Roles
//!
//! Every [`PaxosNode`] is an *acceptor*; the node at
//! [`PaxosConfig::leader`] (acceptor rank 0) is additionally the
//! *initial leader* and drives the vote collection phase. Any acceptor
//! can later become a *failover candidate* when its completion watchdog
//! fires.
//!
//! One Paxos instance runs per participant (per RM, in the paper's
//! vocabulary), but acceptors bundle all instances of a transaction
//! into **one** forced log record ([`LogPayload::PaxosAccept`]) — the
//! bundling is what keeps the per-transaction force count at one per
//! acceptor site.
//!
//! ## Message flow (clean commit, `N` participants, `2f` remote acceptors)
//!
//! ```text
//! leader   -> remote acceptors : PaxosBegin        (2f)
//! leader   -> participants     : Prepare           (N)
//! part     -> leader           : Vote              (N)
//! leader   -> remote acceptors : Phase2a (bundled) (2f)
//! acceptor -> leader           : Phase2b (bundled) (2f)
//! leader   -> participants     : Decision          (N)
//! part     -> leader           : Ack               (N)
//! leader   -> remote acceptors : PaxosForget       (2f)
//! ```
//!
//! Total `4N + 8f` messages; at `f = 0` exactly PrN's `4N`.
//!
//! ## Failover rule
//!
//! Acceptors arm a [`TimerPurpose::PaxosCompletion`] watchdog when they
//! learn of a transaction, staggered by acceptor rank so the
//! lowest-ranked live acceptor fires first. On fire, the acceptor runs
//! phase 1 at a fresh ballot; with promises from `f + 1` acceptors
//! (itself included) it re-proposes the highest-ballot accepted value
//! per instance — and **Aborted** for instances with no accepted value
//! (the free choice Gray & Lamport prove safe). Abort is therefore the
//! default a crashed leader's transaction converges to unless a quorum
//! already accepted `Prepared` for every instance, in which case the
//! candidate re-drives the commit to completion.
//!
//! A `Phase1b { forgotten: true }` reply makes the candidate stand down:
//! the leader only sends [`Payload::PaxosForget`] after *every*
//! participant acknowledged the decision, so a forgotten transaction is
//! complete everywhere that matters.

pub mod sim;

use crate::action::{Action, TimerPurpose};
use crate::coordinator::MAX_DECISION_RESENDS;

use acp_acta::ActaEvent;
use acp_types::{CostCounters, LogPayload, Outcome, Payload, SiteId, TxnId, Vote};
use acp_wal::{GcTracker, StableLog};
use std::collections::{BTreeMap, BTreeSet};

/// Ballot numbers are `round * BALLOT_STRIDE + acceptor_rank`, so every
/// candidate draws from a disjoint arithmetic progression and a bumped
/// round always dominates every ballot of the previous one. The initial
/// leader proposes at ballot 0 (round 0, rank 0) without a phase 1.
pub const BALLOT_STRIDE: u64 = 1024;

/// Watchdog re-arms per transaction before an acceptor gives up driving
/// completion (the bound guarantees simulated runs quiesce even when a
/// quorum is permanently dead).
pub const MAX_PAXOS_ATTEMPTS: u32 = 24;

/// The static Paxos Commit cluster shape: `2f + 1` acceptor sites, the
/// first co-located with the initial leader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaxosConfig {
    /// Acceptor sites; `acceptors[0]` is the initial leader's site.
    pub acceptors: Vec<SiteId>,
}

impl PaxosConfig {
    /// Build a configuration. Panics unless the acceptor count is odd
    /// and non-zero (`2f + 1` for some `f >= 0`).
    #[must_use]
    pub fn new(acceptors: Vec<SiteId>) -> Self {
        assert!(
            acceptors.len() % 2 == 1,
            "paxos needs 2f + 1 acceptors, got {}",
            acceptors.len()
        );
        PaxosConfig { acceptors }
    }

    /// The tolerated failure count `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        (self.acceptors.len() - 1) / 2
    }

    /// Quorum size `f + 1`.
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.f() + 1
    }

    /// The initial leader's site (acceptor rank 0).
    #[must_use]
    pub fn leader(&self) -> SiteId {
        self.acceptors[0]
    }

    /// The rank of `site` in the acceptor list, if it is one.
    #[must_use]
    pub fn rank(&self, site: SiteId) -> Option<usize> {
        self.acceptors.iter().position(|&a| a == site)
    }
}

/// Volatile per-transaction role state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Role {
    /// Passive acceptor: watching for completion.
    Idle,
    /// Initial leader collecting votes at ballot 0.
    Voting {
        votes: BTreeMap<SiteId, Vote>,
    },
    /// Failover candidate collecting phase-1b promises at `my_ballot`.
    Phase1 {
        /// Promiser -> accepted `(instance site, ballot, prepared)`.
        promises: BTreeMap<SiteId, Vec<(SiteId, u64, bool)>>,
    },
    /// Proposer (leader or candidate) collecting bundled phase-2b acks.
    Proposing {
        proposal: Vec<(SiteId, bool)>,
        complete: BTreeSet<SiteId>,
    },
    /// Decision fixed; delivering it and collecting participant acks.
    Deciding {
        outcome: Outcome,
        pending: BTreeSet<SiteId>,
        resends: u32,
    },
}

/// Per-transaction state (volatile; the stable part is the log).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct PaxosTxn {
    /// Participant roster (may be empty when learned from a bare
    /// phase 1a; filled in by phase-1b/2a traffic).
    participants: Vec<SiteId>,
    /// Participants excluded from phase two (voted No or ReadOnly).
    excluded: BTreeSet<SiteId>,
    /// Acceptor duty: highest ballot promised.
    promised: u64,
    /// Highest ballot made durable (promise or accepted bundle).
    logged_promise: u64,
    /// Acceptor duty: the accepted bundle `(ballot, instances)`.
    accepted: Option<(u64, Vec<(SiteId, bool)>)>,
    /// Ballot whose bundle is already forced to this site's log.
    forced_ballot: Option<u64>,
    /// Our proposer ballot (0 for the initial leader).
    my_ballot: u64,
    role: Role,
    /// Watchdog arms consumed (doubles as the backoff attempt).
    attempts: u32,
    /// Whether any log record was written (decides whether an end
    /// record is due at completion).
    logged_any: bool,
}

impl PaxosTxn {
    fn fresh(participants: Vec<SiteId>, attempts: u32) -> Self {
        PaxosTxn {
            participants,
            excluded: BTreeSet::new(),
            promised: 0,
            logged_promise: 0,
            accepted: None,
            forced_ballot: None,
            my_ballot: 0,
            role: Role::Idle,
            attempts,
            logged_any: false,
        }
    }

    /// Accepted bundle as phase-1b triples.
    fn accepted_triples(&self) -> Vec<(SiteId, u64, bool)> {
        match &self.accepted {
            Some((b, ins)) => ins.iter().map(|&(s, v)| (s, *b, v)).collect(),
            None => Vec::new(),
        }
    }
}

/// A Paxos Commit node: acceptor always, initial leader at rank 0,
/// failover candidate on watchdog fire. Sans-IO like every other engine
/// in this crate: inputs return [`Action`]s, stable state lives in the
/// owned [`StableLog`].
#[derive(Clone, Debug)]
pub struct PaxosNode<L: StableLog> {
    site: SiteId,
    config: PaxosConfig,
    log: L,
    gc: GcTracker,
    txns: BTreeMap<TxnId, PaxosTxn>,
    /// Transactions known complete (forget received or sent). Volatile —
    /// after a crash the end records still in the log rebuild it, and a
    /// lost memo only downgrades a `forgotten` phase-1b reply to a fresh
    /// promise, which is always safe.
    forgotten: BTreeSet<TxnId>,
    timers: BTreeMap<u64, (TxnId, TimerPurpose)>,
    next_token: u64,
    track_cancellations: bool,
    cancelled: Vec<u64>,
    /// Observational: decisions ever made here (survives crash; used by
    /// tests and inquiry answering, never by the consensus itself).
    decisions: BTreeMap<TxnId, Outcome>,
    /// Observational cost accounting per transaction.
    costs: BTreeMap<TxnId, CostCounters>,
    /// Truncate the log automatically whenever the releasable prefix
    /// grows (on by default).
    pub auto_gc: bool,
}

impl<L: StableLog> PaxosNode<L> {
    /// Create a node for `site` in the given cluster.
    pub fn new(site: SiteId, config: PaxosConfig, log: L) -> Self {
        PaxosNode {
            site,
            config,
            log,
            gc: GcTracker::new(),
            txns: BTreeMap::new(),
            forgotten: BTreeSet::new(),
            timers: BTreeMap::new(),
            next_token: 0,
            track_cancellations: false,
            cancelled: Vec::new(),
            decisions: BTreeMap::new(),
            costs: BTreeMap::new(),
            auto_gc: true,
        }
    }

    /// This node's site id.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The cluster configuration.
    #[must_use]
    pub fn config(&self) -> &PaxosConfig {
        &self.config
    }

    /// Number of transactions with live state on this node.
    #[must_use]
    pub fn protocol_table_size(&self) -> usize {
        self.txns.len()
    }

    /// Is `txn` currently live on this node?
    #[must_use]
    pub fn in_flight(&self, txn: TxnId) -> bool {
        self.txns.contains_key(&txn)
    }

    /// The decision this node made for `txn`, if any (observational).
    #[must_use]
    pub fn decided(&self, txn: TxnId) -> Option<Outcome> {
        self.decisions.get(&txn).copied()
    }

    /// Per-transaction costs measured at this site.
    #[must_use]
    pub fn costs(&self, txn: TxnId) -> CostCounters {
        self.costs.get(&txn).copied().unwrap_or_default()
    }

    /// Borrow the stable log.
    #[must_use]
    pub fn log(&self) -> &L {
        &self.log
    }

    /// Mutable access to the stable log (group-commit ticks only —
    /// protocol records must go through the engine).
    pub fn log_mut(&mut self) -> &mut L {
        &mut self.log
    }

    /// Transactions still pinning the log (no end record).
    #[must_use]
    pub fn log_pinned(&self) -> Vec<TxnId> {
        self.gc.pinned()
    }

    /// Enable eager timer retirement (see
    /// [`crate::coordinator::Coordinator::set_track_cancellations`]).
    pub fn set_track_cancellations(&mut self, on: bool) {
        self.track_cancellations = on;
    }

    /// Drain timer tokens retired since the last call.
    pub fn take_cancelled_timers(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.cancelled)
    }

    /// Canonical rendering of the semantic state (txn table, stable
    /// log, armed timers) for the model checker's dedup map.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut s = format!("paxos:{}:", self.site);
        for (txn, st) in &self.txns {
            s.push_str(&format!(
                "{txn}={:?}/b{}/p{}/a{:?};",
                st.role, st.my_ballot, st.promised, st.accepted
            ));
        }
        s.push('|');
        for rec in self.log.records().expect("records") {
            s.push_str(&format!("{};", rec.payload));
        }
        s.push('|');
        for (tok, (txn, p)) in &self.timers {
            s.push_str(&format!("{tok}:{txn}:{p:?};"));
        }
        s
    }

    /// Hash the same semantic state as [`PaxosNode::fingerprint`]
    /// without allocating (the checker's hot path).
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.site.hash(h);
        for (txn, st) in &self.txns {
            txn.hash(h);
            st.hash(h);
        }
        0xA1u8.hash(h);
        self.log
            .for_each_record(&mut |rec| rec.payload.hash(h))
            .expect("records");
        0xA2u8.hash(h);
        for (tok, (txn, p)) in &self.timers {
            (tok, txn, p).hash(h);
        }
    }

    // -- internals (the Coordinator idiom) ------------------------------

    fn append(&mut self, txn: TxnId, payload: LogPayload, force: bool, out: &mut Vec<Action>) {
        let kind = payload.kind_name();
        let lsn = self.log.next_lsn();
        self.gc.note(lsn, &payload);
        self.log.append(payload, force).expect("paxos log append");
        self.costs.entry(txn).or_default().count_log_write(force);
        out.push(Action::Acta(ActaEvent::LogWrite {
            site: self.site,
            txn,
            kind,
            forced: force,
        }));
    }

    fn send(&mut self, txn: TxnId, to: SiteId, payload: Payload, out: &mut Vec<Action>) {
        self.costs
            .entry(txn)
            .or_default()
            .count_message_kind(payload.kind_name());
        out.push(Action::Send { to, payload });
    }

    fn arm_timer(&mut self, txn: TxnId, purpose: TimerPurpose, attempt: u32, out: &mut Vec<Action>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, (txn, purpose));
        out.push(Action::SetTimer {
            token,
            purpose,
            attempt,
        });
    }

    fn retire_timers(&mut self, txn: TxnId, pred: impl Fn(TimerPurpose) -> bool) {
        if !self.track_cancellations {
            return;
        }
        let tokens: Vec<u64> = self
            .timers
            .iter()
            .filter(|(_, (t, p))| *t == txn && pred(*p))
            .map(|(tok, _)| *tok)
            .collect();
        for tok in tokens {
            self.timers.remove(&tok);
            self.cancelled.push(tok);
        }
    }

    /// Arm the completion watchdog with the per-transaction attempt
    /// counter (rank-staggered at the start, exponentially backed off
    /// thereafter), up to [`MAX_PAXOS_ATTEMPTS`].
    fn arm_watchdog(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        if st.attempts >= MAX_PAXOS_ATTEMPTS {
            return;
        }
        let attempt = st.attempts;
        st.attempts += 1;
        self.arm_timer(txn, TimerPurpose::PaxosCompletion, attempt, out);
    }

    fn maybe_gc(&mut self, out: &mut Vec<Action>) {
        if self.auto_gc {
            let released = self.collect_garbage();
            if released > 0 {
                out.push(Action::Gc {
                    released_up_to: self.log.low_water_mark().0,
                    records_released: released as u64,
                });
            }
        }
    }

    /// Garbage-collect the releasable log prefix. Returns the number of
    /// records reclaimed.
    pub fn collect_garbage(&mut self) -> usize {
        let releasable = self.gc.releasable();
        if releasable > self.log.low_water_mark() {
            self.log.flush().expect("flush before gc");
            let before = self.log.stats().truncated;
            self.log.truncate_prefix(releasable).expect("truncate");
            self.gc.reclaimed(releasable);
            (self.log.stats().truncated - before) as usize
        } else {
            0
        }
    }

    // -- protocol entry points ------------------------------------------

    /// Start commit processing for `txn` (initial leader only): announce
    /// the roster to the remote acceptors and send the prepare requests.
    /// No log write — the leader's durability *is* its acceptor bundle.
    pub fn begin_commit(&mut self, txn: TxnId, participants: &[SiteId]) -> Vec<Action> {
        assert_eq!(
            self.site,
            self.config.leader(),
            "only the initial leader starts transactions"
        );
        assert!(
            !self.txns.contains_key(&txn),
            "transaction {txn} already begun"
        );
        let mut out = Vec::new();
        self.costs.entry(txn).or_default();
        for a in self.config.acceptors.clone() {
            if a != self.site {
                self.send(
                    txn,
                    a,
                    Payload::PaxosBegin {
                        txn,
                        participants: participants.to_vec(),
                    },
                    &mut out,
                );
            }
        }
        for &p in participants {
            self.send(txn, p, Payload::Prepare { txn }, &mut out);
        }
        let mut st = PaxosTxn::fresh(participants.to_vec(), 0);
        st.role = Role::Voting {
            votes: BTreeMap::new(),
        };
        self.txns.insert(txn, st);
        self.arm_timer(txn, TimerPurpose::VoteTimeout, 0, &mut out);
        out
    }

    /// Client-requested abort: if still collecting votes, propose the
    /// all-Aborted bundle (abort, like commit, goes through consensus —
    /// that is what makes a failover candidate reach the same verdict).
    pub fn abort_request(&mut self, txn: TxnId) -> Vec<Action> {
        let mut out = Vec::new();
        if matches!(
            self.txns.get(&txn).map(|s| &s.role),
            Some(Role::Voting { .. })
        ) {
            let st = self.txns.remove(&txn).expect("just matched");
            let proposal: Vec<(SiteId, bool)> =
                st.participants.iter().map(|&p| (p, false)).collect();
            self.propose(txn, st, proposal, &mut out);
        }
        out
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, from: SiteId, payload: &Payload) -> Vec<Action> {
        let mut out = Vec::new();
        match payload {
            Payload::Vote { txn, vote } => self.on_vote(from, *txn, *vote, &mut out),
            Payload::Ack { txn } => self.on_ack(from, *txn, &mut out),
            Payload::Inquiry { txn, .. } => self.on_inquiry(from, *txn, &mut out),
            Payload::PaxosBegin { txn, participants } => {
                self.on_begin(*txn, participants, &mut out);
            }
            Payload::Phase1a { txn, ballot } => self.on_phase1a(from, *txn, *ballot, &mut out),
            Payload::Phase1b {
                txn,
                ballot,
                forgotten,
                participants,
                accepted,
            } => self.on_phase1b(from, *txn, *ballot, *forgotten, participants, accepted, &mut out),
            Payload::Phase2a {
                txn,
                ballot,
                instances,
            } => self.on_phase2a(from, *txn, *ballot, instances, &mut out),
            Payload::Phase2b {
                txn,
                ballot,
                instances: _,
            } => self.on_phase2b(from, *txn, *ballot, &mut out),
            Payload::PaxosForget { txn } => self.on_forget(*txn, &mut out),
            // Participant-side vocabulary: not ours.
            Payload::Prepare { .. }
            | Payload::Decision { .. }
            | Payload::InquiryResponse { .. } => {}
        }
        out
    }

    /// Timer callback.
    pub fn on_timer(&mut self, token: u64) -> Vec<Action> {
        let mut out = Vec::new();
        let Some((txn, purpose)) = self.timers.remove(&token) else {
            return out;
        };
        match purpose {
            TimerPurpose::VoteTimeout => {
                if matches!(
                    self.txns.get(&txn).map(|s| &s.role),
                    Some(Role::Voting { .. })
                ) {
                    // §4.2: failures are detected by timeouts — the
                    // missing votes become Aborted instances.
                    self.propose_from_votes(txn, &mut out);
                }
            }
            TimerPurpose::AckResend => {
                let resend = self.txns.get_mut(&txn).and_then(|st| {
                    if let Role::Deciding {
                        outcome,
                        pending,
                        resends,
                    } = &mut st.role
                    {
                        *resends += 1;
                        Some((*resends, *outcome, pending.iter().copied().collect::<Vec<_>>()))
                    } else {
                        None
                    }
                });
                if let Some((attempts, outcome, targets)) = resend {
                    for to in targets {
                        self.send(txn, to, Payload::Decision { txn, outcome }, &mut out);
                    }
                    if attempts < MAX_DECISION_RESENDS {
                        self.arm_timer(txn, TimerPurpose::AckResend, attempts, &mut out);
                    }
                }
            }
            TimerPurpose::PaxosCompletion => self.on_watchdog(txn, &mut out),
            TimerPurpose::InquiryRetry | TimerPurpose::ApplyRetry => {}
        }
        out
    }

    // -- leader ---------------------------------------------------------

    fn on_vote(&mut self, from: SiteId, txn: TxnId, vote: Vote, out: &mut Vec<Action>) {
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        if !st.participants.contains(&from) {
            return;
        }
        let ready = match &mut st.role {
            Role::Voting { votes } => {
                votes.insert(from, vote);
                if matches!(vote, Vote::No | Vote::ReadOnly) {
                    st.excluded.insert(from);
                }
                vote == Vote::No || votes.len() == st.participants.len()
            }
            // Late or duplicate vote after the proposal went out: the
            // decision already includes this participant (unless it
            // voted No/ReadOnly in time) and FIFO links order the
            // decision behind its prepare.
            _ => false,
        };
        if ready {
            self.propose_from_votes(txn, out);
        }
    }

    /// Build the bundle from the votes seen so far (Yes/ReadOnly →
    /// Prepared, No or missing → Aborted) and propose it.
    fn propose_from_votes(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let st = self.txns.remove(&txn).expect("propose_from_votes on live txn");
        let proposal: Vec<(SiteId, bool)> = match &st.role {
            Role::Voting { votes } => st
                .participants
                .iter()
                .map(|&p| {
                    (
                        p,
                        matches!(votes.get(&p), Some(Vote::Yes) | Some(Vote::ReadOnly)),
                    )
                })
                .collect(),
            _ => unreachable!("propose_from_votes outside Voting"),
        };
        self.propose(txn, st, proposal, out);
    }

    /// Run phase 2 at `st.my_ballot`: accept the bundle locally (one
    /// forced record), relay it to the remote acceptors, and decide as
    /// soon as a quorum of bundles is complete.
    fn propose(
        &mut self,
        txn: TxnId,
        mut st: PaxosTxn,
        proposal: Vec<(SiteId, bool)>,
        out: &mut Vec<Action>,
    ) {
        self.retire_timers(txn, |p| p == TimerPurpose::VoteTimeout);
        let ballot = st.my_ballot;
        let mut complete = BTreeSet::new();
        // Local acceptor duty first: force-before-send by construction.
        if ballot >= st.promised {
            st.promised = ballot;
            st.accepted = Some((ballot, proposal.clone()));
            if st.forced_ballot != Some(ballot) {
                self.append(
                    txn,
                    LogPayload::PaxosAccept {
                        txn,
                        ballot,
                        instances: proposal.clone(),
                    },
                    true,
                    out,
                );
                st.forced_ballot = Some(ballot);
                st.logged_promise = st.logged_promise.max(ballot);
                st.logged_any = true;
            }
            complete.insert(self.site);
        }
        for a in self.config.acceptors.clone() {
            if a != self.site {
                self.send(
                    txn,
                    a,
                    Payload::Phase2a {
                        txn,
                        ballot,
                        instances: proposal.clone(),
                    },
                    out,
                );
            }
        }
        let done = complete.len() >= self.config.quorum();
        st.role = Role::Proposing { proposal, complete };
        self.txns.insert(txn, st);
        if done {
            self.conclude(txn, out);
        } else {
            self.arm_watchdog(txn, out);
        }
    }

    fn on_phase2b(&mut self, from: SiteId, txn: TxnId, ballot: u64, out: &mut Vec<Action>) {
        let quorum = self.config.quorum();
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        let done = match &mut st.role {
            Role::Proposing { complete, .. } if st.my_ballot == ballot => {
                complete.insert(from);
                complete.len() >= quorum
            }
            _ => false,
        };
        if done {
            self.conclude(txn, out);
        }
    }

    /// A quorum accepted every instance: the outcome is fixed. Commit
    /// iff every instance chose Prepared.
    fn conclude(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let mut st = self.txns.remove(&txn).expect("conclude on live txn");
        let outcome = match &st.role {
            Role::Proposing { proposal, .. } => {
                if proposal.iter().all(|&(_, v)| v) {
                    Outcome::Commit
                } else {
                    Outcome::Abort
                }
            }
            _ => unreachable!("conclude outside Proposing"),
        };
        self.decisions.insert(txn, outcome);
        out.push(Action::Acta(ActaEvent::Decide {
            coordinator: self.site,
            txn,
            outcome,
        }));
        self.retire_timers(txn, |p| {
            matches!(p, TimerPurpose::VoteTimeout | TimerPurpose::PaxosCompletion)
        });
        let recipients: Vec<SiteId> = st
            .participants
            .iter()
            .copied()
            .filter(|s| !st.excluded.contains(s))
            .collect();
        for &r in &recipients {
            self.send(txn, r, Payload::Decision { txn, outcome }, out);
        }
        let pending: BTreeSet<SiteId> = recipients.into_iter().collect();
        if pending.is_empty() {
            self.finish(txn, st, out);
        } else {
            st.role = Role::Deciding {
                outcome,
                pending,
                resends: 0,
            };
            self.txns.insert(txn, st);
            self.arm_timer(txn, TimerPurpose::AckResend, 0, out);
        }
    }

    fn on_ack(&mut self, from: SiteId, txn: TxnId, out: &mut Vec<Action>) {
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        let finished = if let Role::Deciding { pending, .. } = &mut st.role {
            pending.remove(&from);
            pending.is_empty()
        } else {
            false
        };
        if finished {
            let st = self.txns.remove(&txn).expect("just matched");
            self.finish(txn, st, out);
        }
    }

    /// Every participant acknowledged: end record, DeletePT, and tell
    /// the other acceptors to forget. The forget-after-all-acks order is
    /// what makes a `forgotten` phase-1b reply safe.
    fn finish(&mut self, txn: TxnId, st: PaxosTxn, out: &mut Vec<Action>) {
        self.retire_timers(txn, |_| true);
        if st.logged_any {
            self.append(txn, LogPayload::End { txn }, false, out);
        }
        out.push(Action::Acta(ActaEvent::DeletePt {
            coordinator: self.site,
            txn,
        }));
        for a in self.config.acceptors.clone() {
            if a != self.site {
                self.send(txn, a, Payload::PaxosForget { txn }, out);
            }
        }
        self.forgotten.insert(txn);
        self.maybe_gc(out);
    }

    // -- acceptor -------------------------------------------------------

    fn on_begin(&mut self, txn: TxnId, participants: &[SiteId], out: &mut Vec<Action>) {
        if self.forgotten.contains(&txn) {
            return;
        }
        if let Some(st) = self.txns.get_mut(&txn) {
            if st.participants.is_empty() {
                st.participants = participants.to_vec();
            }
            return;
        }
        let rank = self
            .config
            .rank(self.site)
            .expect("paxos-begin delivered to a non-acceptor") as u32;
        self.costs.entry(txn).or_default();
        self.txns
            .insert(txn, PaxosTxn::fresh(participants.to_vec(), rank));
        self.arm_watchdog(txn, out);
    }

    fn on_phase2a(
        &mut self,
        from: SiteId,
        txn: TxnId,
        ballot: u64,
        instances: &[(SiteId, bool)],
        out: &mut Vec<Action>,
    ) {
        if self.forgotten.contains(&txn) {
            return;
        }
        let mut st = match self.txns.remove(&txn) {
            Some(st) => st,
            None => {
                // Never saw the begin (lost or crashed away): the bundle
                // itself carries the roster. Arm the watchdog so this
                // acceptor can still drive completion later.
                let rank = self.config.rank(self.site).map_or(0, |r| r as u32);
                self.costs.entry(txn).or_default();
                let st = PaxosTxn::fresh(instances.iter().map(|&(s, _)| s).collect(), rank);
                self.txns.insert(txn, st);
                self.arm_watchdog(txn, out);
                self.txns.remove(&txn).expect("just inserted")
            }
        };
        if st.participants.is_empty() {
            st.participants = instances.iter().map(|&(s, _)| s).collect();
        }
        if ballot >= st.promised {
            st.promised = ballot;
            st.accepted = Some((ballot, instances.to_vec()));
            if st.forced_ballot != Some(ballot) {
                self.append(
                    txn,
                    LogPayload::PaxosAccept {
                        txn,
                        ballot,
                        instances: instances.to_vec(),
                    },
                    true,
                    out,
                );
                st.forced_ballot = Some(ballot);
                st.logged_promise = st.logged_promise.max(ballot);
                st.logged_any = true;
            }
            if from != self.site {
                self.send(
                    txn,
                    from,
                    Payload::Phase2b {
                        txn,
                        ballot,
                        instances: instances.to_vec(),
                    },
                    out,
                );
            }
        }
        self.txns.insert(txn, st);
    }

    fn on_forget(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        self.forgotten.insert(txn);
        let Some(st) = self.txns.remove(&txn) else {
            return;
        };
        self.retire_timers(txn, |_| true);
        if st.logged_any {
            self.append(txn, LogPayload::End { txn }, false, out);
        }
        self.maybe_gc(out);
    }

    // -- failover candidate ---------------------------------------------

    fn on_watchdog(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let Some(st) = self.txns.get(&txn) else {
            return;
        };
        match &st.role {
            // Passive acceptor whose leader went quiet, or a candidate
            // whose phase 1 stalled (competing candidate, loss): run
            // phase 1 at the next ballot.
            Role::Idle | Role::Phase1 { .. } => self.start_phase1(txn, out),
            Role::Proposing { complete, proposal } => {
                if st.my_ballot == 0 {
                    // Initial leader: re-send phase 2a to the laggards.
                    let proposal = proposal.clone();
                    let complete = complete.clone();
                    let targets: Vec<SiteId> = self
                        .config
                        .acceptors
                        .iter()
                        .copied()
                        .filter(|a| *a != self.site && !complete.contains(a))
                        .collect();
                    for to in targets {
                        self.send(
                            txn,
                            to,
                            Payload::Phase2a {
                                txn,
                                ballot: 0,
                                instances: proposal.clone(),
                            },
                            out,
                        );
                    }
                    self.arm_watchdog(txn, out);
                } else {
                    // Candidate: escalate past whoever outbid us.
                    self.start_phase1(txn, out);
                }
            }
            // Vote collection and ack collection have their own timers.
            Role::Voting { .. } | Role::Deciding { .. } => {}
        }
    }

    /// Become (or continue as) the failover candidate: pick a fresh
    /// ballot above everything seen, promise it to ourselves durably,
    /// and ask the other acceptors for their promises.
    fn start_phase1(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let Some(rank) = self.config.rank(self.site) else {
            return;
        };
        let mut st = self.txns.remove(&txn).expect("start_phase1 on live txn");
        let round = st.promised.max(st.my_ballot) / BALLOT_STRIDE + 1;
        let ballot = round * BALLOT_STRIDE + rank as u64;
        st.my_ballot = ballot;
        st.promised = ballot;
        // Phase-1 safety: our own promise must survive a crash before
        // anyone may act on it.
        if st.logged_promise < ballot {
            self.append(
                txn,
                LogPayload::PaxosAccept {
                    txn,
                    ballot,
                    instances: Vec::new(),
                },
                true,
                out,
            );
            st.logged_promise = ballot;
            st.logged_any = true;
        }
        let mut promises = BTreeMap::new();
        promises.insert(self.site, st.accepted_triples());
        st.role = Role::Phase1 { promises };
        self.txns.insert(txn, st);
        for a in self.config.acceptors.clone() {
            if a != self.site {
                self.send(txn, a, Payload::Phase1a { txn, ballot }, out);
            }
        }
        self.arm_watchdog(txn, out);
        self.maybe_resolve_phase1(txn, out);
    }

    fn on_phase1a(&mut self, from: SiteId, txn: TxnId, ballot: u64, out: &mut Vec<Action>) {
        if self.forgotten.contains(&txn) {
            // Complete everywhere that matters (forget is only sent
            // after all participant acks): tell the candidate to stand
            // down.
            self.costs.entry(txn).or_default();
            self.send(
                txn,
                from,
                Payload::Phase1b {
                    txn,
                    ballot,
                    forgotten: true,
                    participants: Vec::new(),
                    accepted: Vec::new(),
                },
                out,
            );
            return;
        }
        let mut st = match self.txns.remove(&txn) {
            Some(st) => st,
            None => {
                // Genuinely unknown (never began here, or crashed away
                // after GC): a fresh promise with no accepted values is
                // always safe. No watchdog — we have no roster to drive.
                self.costs.entry(txn).or_default();
                PaxosTxn::fresh(Vec::new(), MAX_PAXOS_ATTEMPTS)
            }
        };
        if ballot > st.promised {
            st.promised = ballot;
            if st.logged_promise < ballot {
                self.append(
                    txn,
                    LogPayload::PaxosAccept {
                        txn,
                        ballot,
                        instances: Vec::new(),
                    },
                    true,
                    out,
                );
                st.logged_promise = ballot;
                st.logged_any = true;
            }
        }
        if ballot >= st.promised {
            let accepted = st.accepted_triples();
            let participants = st.participants.clone();
            self.send(
                txn,
                from,
                Payload::Phase1b {
                    txn,
                    ballot,
                    forgotten: false,
                    participants,
                    accepted,
                },
                out,
            );
        }
        self.txns.insert(txn, st);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_phase1b(
        &mut self,
        from: SiteId,
        txn: TxnId,
        ballot: u64,
        forgotten: bool,
        participants: &[SiteId],
        accepted: &[(SiteId, u64, bool)],
        out: &mut Vec<Action>,
    ) {
        if forgotten {
            // Stand down quietly: no Decide, no DeletePT — the
            // transaction completed under someone else's leadership.
            self.forgotten.insert(txn);
            if let Some(st) = self.txns.remove(&txn) {
                self.retire_timers(txn, |_| true);
                if st.logged_any {
                    self.append(txn, LogPayload::End { txn }, false, out);
                }
                self.maybe_gc(out);
            }
            return;
        }
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        if st.my_ballot != ballot {
            return;
        }
        let Role::Phase1 { promises } = &mut st.role else {
            return;
        };
        promises.insert(from, accepted.to_vec());
        for &p in participants {
            if !st.participants.contains(&p) {
                st.participants.push(p);
            }
        }
        st.participants.sort();
        self.maybe_resolve_phase1(txn, out);
    }

    /// With `f + 1` promises, re-propose the highest-ballot accepted
    /// value per instance; instances nobody accepted become Aborted
    /// (the free choice).
    fn maybe_resolve_phase1(&mut self, txn: TxnId, out: &mut Vec<Action>) {
        let quorum = self.config.quorum();
        let Some(st) = self.txns.get(&txn) else {
            return;
        };
        let Role::Phase1 { promises } = &st.role else {
            return;
        };
        if promises.len() < quorum || st.participants.is_empty() {
            return;
        }
        let proposal: Vec<(SiteId, bool)> = st
            .participants
            .iter()
            .map(|&p| {
                let mut best: Option<(u64, bool)> = None;
                for acc in promises.values() {
                    for &(s, b, v) in acc {
                        if s == p && best.map_or(true, |(bb, _)| b > bb) {
                            best = Some((b, v));
                        }
                    }
                }
                (p, best.map_or(false, |(_, v)| v))
            })
            .collect();
        let st = self.txns.remove(&txn).expect("resolve on live txn");
        self.propose(txn, st, proposal, out);
    }

    // -- inquiries ------------------------------------------------------

    fn on_inquiry(&mut self, from: SiteId, txn: TxnId, out: &mut Vec<Action>) {
        let outcome = if let Some(st) = self.txns.get(&txn) {
            match &st.role {
                Role::Deciding { outcome, .. } => Some((*outcome, false)),
                // In flight and undecided: stay silent, the participant
                // retries and the watchdog (or vote timeout) resolves it.
                _ => None,
            }
        } else if let Some(&o) = self.decisions.get(&txn) {
            Some((o, false))
        } else if self.config.acceptors.len() == 1 {
            // Never decided here and no live state: PrN's hidden abort
            // presumption. With a single acceptor the Theorem 3 argument
            // carries over verbatim — acks and inquiries share one FIFO
            // link, so a forgotten *committed* transaction was
            // acknowledged by every participant, which then cannot have
            // an inquiry still in flight.
            Some((Outcome::Abort, true))
        } else {
            // Replicated cluster: stay silent. After a failover the
            // participant acks the *deciding* acceptor, whose
            // `PaxosForget` races any stale inquiry to *this* acceptor
            // on a different link — FIFO no longer orders
            // inquiry-before-ack-before-forget, so a presumed-abort
            // answer here could contradict a committed decision.
            // Silence is safe and live: forget only follows every
            // participant's ack, so an inquiry arriving post-forget is
            // necessarily stale and its sender has already enforced.
            None
        };
        if let Some((outcome, by_presumption)) = outcome {
            out.push(Action::Acta(ActaEvent::Respond {
                coordinator: self.site,
                txn,
                participant: from,
                outcome,
                by_presumption,
            }));
            self.send(txn, from, Payload::InquiryResponse { txn, outcome }, out);
        }
    }

    // -- crash / recovery -----------------------------------------------

    /// The site fail-stops: volatile state and unflushed records are
    /// lost; the forced log survives.
    pub fn crash(&mut self) {
        self.txns.clear();
        self.forgotten.clear();
        self.timers.clear();
        self.cancelled.clear();
        self.log.lose_unflushed().expect("log crash");
        self.gc = GcTracker::from_records(&self.log.records().expect("records"));
    }

    /// Rebuild acceptor state from the log's `paxos-accept` records and
    /// re-arm the completion watchdog for every unresolved transaction —
    /// recovery is just failover with ourselves as a candidate.
    pub fn recover(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        let records = self.log.records().expect("records");
        let summaries = acp_wal::scan::analyze(&records);
        let rank = self.config.rank(self.site).map_or(0, |r| r as u32);
        for (txn, s) in &summaries {
            if s.ended {
                self.forgotten.insert(*txn);
                continue;
            }
            if s.paxos_accepts.is_empty() {
                continue;
            }
            let logged_promise = s
                .paxos_accepts
                .iter()
                .map(|(b, _)| *b)
                .max()
                .expect("non-empty");
            let accepted = s
                .paxos_accepts
                .iter()
                .rev()
                .find(|(_, ins)| !ins.is_empty())
                .cloned();
            let participants: Vec<SiteId> = accepted
                .as_ref()
                .map(|(_, ins)| ins.iter().map(|&(s, _)| s).collect())
                .unwrap_or_default();
            let st = PaxosTxn {
                participants,
                excluded: BTreeSet::new(),
                promised: logged_promise,
                logged_promise,
                forced_ballot: accepted.as_ref().map(|(b, _)| *b),
                accepted,
                my_ballot: 0,
                role: Role::Idle,
                attempts: rank,
                logged_any: true,
            };
            self.txns.insert(*txn, st);
            self.costs.entry(*txn).or_default();
            self.arm_watchdog(*txn, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests;
