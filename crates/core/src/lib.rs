//! # acp-core
//!
//! The paper's contribution: sans-IO engines for every atomic commit
//! protocol the paper discusses.
//!
//! * [`participant::Participant`] — the participant-side state machine
//!   for PrN, PrA and PrC (plus the read-only optimization the paper
//!   names as an integration target in §5).
//! * [`coordinator::Coordinator`] — a unified coordinator engine whose
//!   behaviour is derived per transaction from a [`coordinator::plan::CommitPlan`]:
//!   - single-protocol PrN / PrA / PrC coordination (Figures 2–4),
//!   - **U2PC** (§2), the union coordinator that ignores protocol
//!     violations and forgets as soon as every participant that *will*
//!     acknowledge has done so — provably atomicity-violating
//!     (Theorem 1),
//!   - **C2PC** (§3), the conservative coordinator that never forgets a
//!     transaction until all participants acknowledge and never answers
//!     by presumption — functionally correct but not operationally
//!     correct (Theorem 2),
//!   - **PrAny** (§4), the paper's protocol: per-transaction mode
//!     selection from the participants' commit protocols (PCP/APP
//!     tables), an initiation record carrying each participant's
//!     protocol, outcome-dependent acknowledgment sets, and dynamic
//!     adoption of the *inquirer's* presumption after the coordinator
//!     has forgotten a transaction.
//! * [`gateway::GatewayParticipant`] — the *non-externalized* branch of
//!   Figure 5's taxonomy: a gateway that simulates a prepared state for
//!   a legacy system with no commit protocol at all, via exclusive
//!   right reservations and redo-until-success.
//! * [`paxos::PaxosNode`] — Paxos Commit (Gray & Lamport): a
//!   non-blocking replicated coordinator with `2f + 1` acceptors that
//!   degenerates to 2PC/PrN at `f = 0` and survives a `kill -9` of the
//!   leader at `f >= 1` via watchdog-triggered leader failover.
//! * [`cost`] — the analytic cost model (forced writes, log records,
//!   messages) per protocol × outcome × participant population, checked
//!   against measured executions in experiment E8; extended with
//!   [`cost::predict_paxos`] for the Paxos Commit rows of the table.
//! * [`harness`] — glue that runs the engines inside the deterministic
//!   simulator (`acp-sim`) and produces ACTA histories (`acp-acta`),
//!   execution traces and final GC states for the correctness checkers.
//!
//! ## Engine model
//!
//! Engines are pure state machines: each input (a message, a timer, a
//! commit request, recovery) returns a list of [`Action`]s — messages to
//! send, local enforcements, timers to arm, and ACTA events to record.
//! All stable state lives in an owned [`acp_wal::StableLog`]; all other
//! state is volatile and cleared by `crash()`. This is what lets the
//! same code run under the simulator, the bounded model checker and the
//! threaded runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod coordinator;
pub mod cost;
pub mod gateway;
pub mod harness;
pub mod participant;
pub mod paxos;

pub use action::{Action, TimerPurpose};
pub use coordinator::plan::CommitPlan;
pub use coordinator::select::select_mode;
pub use coordinator::table::{shard_of, ShardedTable, TABLE_SHARDS};
pub use coordinator::Coordinator;
pub use gateway::{GatewayParticipant, LegacyStore};
pub use participant::Participant;
pub use paxos::{PaxosConfig, PaxosNode};
