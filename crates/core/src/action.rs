//! Engine outputs.

use acp_acta::ActaEvent;
use acp_types::{Outcome, Payload, SiteId, TxnId};
use std::fmt;

/// Why a timer was set — the host maps each purpose to a concrete delay.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TimerPurpose {
    /// Coordinator: abort the transaction if votes are still outstanding
    /// when this fires ("communication and site failures are detected by
    /// timeouts", §4.2).
    VoteTimeout,
    /// Coordinator: re-send the decision to participants whose
    /// acknowledgment is still outstanding.
    AckResend,
    /// Participant: re-send the recovery inquiry for an in-doubt
    /// transaction.
    InquiryRetry,
    /// Gateway: retry applying a committed write set to a temporarily
    /// unavailable legacy system (the redo technique of Figure 5).
    ApplyRetry,
    /// Paxos acceptor: the transaction it learned about has not
    /// completed; when this fires the acceptor starts (or retries)
    /// leader failover with a fresh ballot. Armings are staggered by
    /// acceptor rank so the lowest live acceptor takes over first.
    PaxosCompletion,
}

impl TimerPurpose {
    /// Stable display name (also the retry-event vocabulary of
    /// `acp-obs`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TimerPurpose::VoteTimeout => "vote-timeout",
            TimerPurpose::AckResend => "ack-resend",
            TimerPurpose::InquiryRetry => "inquiry-retry",
            TimerPurpose::ApplyRetry => "apply-retry",
            TimerPurpose::PaxosCompletion => "paxos-completion",
        }
    }
}

impl fmt::Display for TimerPurpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An effect requested by a protocol engine.
///
/// The host (simulator harness, model checker, threaded runtime)
/// executes these in order. Log writes are *not* actions — engines own
/// their stable log and append inline, so force-before-send orderings
/// are enforced by construction; each log write additionally surfaces as
/// an [`ActaEvent::LogWrite`] for the history.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// Send a coordination message.
    Send {
        /// Destination site.
        to: SiteId,
        /// Message payload.
        payload: Payload,
    },
    /// Enforce the decision on the local subtransaction (apply commit or
    /// roll back in the site's storage engine).
    Enforce {
        /// The transaction.
        txn: TxnId,
        /// The outcome to enforce.
        outcome: Outcome,
    },
    /// Arm a volatile timer. The engine will be called back with `token`.
    SetTimer {
        /// Opaque token, returned verbatim to the engine.
        token: u64,
        /// What the timer is for (host picks the delay).
        purpose: TimerPurpose,
        /// How many times this timer has already fired for its purpose
        /// (0 for the first arming). Hosts scale the base delay
        /// exponentially in `attempt`, bounded — so retries under
        /// message loss back off instead of hammering a lossy link.
        attempt: u32,
    },
    /// Record a significant event in the global ACTA history.
    Acta(ActaEvent),
    /// The engine garbage-collected a prefix of its stable log (the
    /// observable form of Definition 1's "can, eventually, garbage
    /// collect"). Purely observational: hosts surface it as a `LogGc`
    /// protocol event; it carries no obligation.
    Gc {
        /// New low-water mark — records below this LSN are gone.
        released_up_to: u64,
        /// How many records the collection reclaimed.
        records_released: u64,
    },
}

impl Action {
    /// Convenience constructor for a send.
    #[must_use]
    pub fn send(to: SiteId, payload: Payload) -> Self {
        Action::Send { to, payload }
    }
}

/// Extract only the sent payloads (test helper used across the suite).
#[must_use]
pub fn sent_payloads(actions: &[Action]) -> Vec<(SiteId, Payload)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send { to, payload } => Some((*to, payload.clone())),
            _ => None,
        })
        .collect()
}

/// Extract only the ACTA events (test helper).
#[must_use]
pub fn acta_events(actions: &[Action]) -> Vec<ActaEvent> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Acta(e) => Some(e.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_filter_correctly() {
        let t = TxnId::new(1);
        let actions = vec![
            Action::send(SiteId::new(1), Payload::Prepare { txn: t }),
            Action::Enforce {
                txn: t,
                outcome: Outcome::Commit,
            },
            Action::Acta(ActaEvent::Crash {
                site: SiteId::new(0),
            }),
            Action::SetTimer {
                token: 3,
                purpose: TimerPurpose::VoteTimeout,
                attempt: 0,
            },
        ];
        assert_eq!(sent_payloads(&actions).len(), 1);
        assert_eq!(acta_events(&actions).len(), 1);
    }

    #[test]
    fn purposes_display() {
        assert_eq!(TimerPurpose::AckResend.to_string(), "ack-resend");
    }
}
